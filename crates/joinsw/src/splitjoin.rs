//! Multithreaded uni-flow stream join (SplitJoin) — the software system
//! measured in Figs. 14d and 16 of the paper.
//!
//! Architecture (mirroring the hardware design of Fig. 9 in threads):
//!
//! ```text
//!            caller thread (distribution network)
//!           /         |          \
//!      join core   join core   join core      (N worker threads)
//!           \         |          /
//!             collector thread (result gathering network)
//! ```
//!
//! Each worker owns one sub-window per stream and receives *every* tuple:
//! it probes the tuple against its share of the opposite window and stores
//! it round-robin ("each join core independently counts the number of
//! tuples received and, based on its position among other join cores,
//! determines its turn to store") — no central coordination.
//!
//! # The batched data path
//!
//! The paper observes that in software "the distribution and result
//! gathering network also consume a portion of the processors' capacity";
//! naïvely that cost is one cross-thread channel message *per tuple per
//! worker* on the way in and one *per match* on the way out, which
//! dominates the short per-tuple probe. This implementation batches both
//! directions:
//!
//! * **Distribution** — [`SplitJoin::process`] accumulates tuples in a
//!   caller-side buffer and ships one [`Arc`]-shared batch message per
//!   [`JoinConfig::batch_size`](crate::config::JoinConfig::batch_size)
//!   tuples to every worker (one allocation per batch, N reference-count
//!   bumps — not N copies).
//! * **Collection** — workers buffer matches locally and emit them to the
//!   collector in chunks; in counting-only mode
//!   ([`JoinConfig::counting_only`](crate::config::JoinConfig::counting_only))
//!   no collector thread exists at all and matches are folded from
//!   per-worker counters at shutdown.
//!
//! Batching never changes results: [`SplitJoin::flush`] and
//! [`SplitJoin::shutdown`] both drain the partial batch first, so
//! `batch_size = 1` reproduces the unbatched message-per-tuple path
//! exactly and every batch size yields the same result multiset.
//!
//! # Transports
//!
//! Both directions run over one of two interchangeable transports
//! ([`JoinConfig::transport`], overridable process-wide with
//! `ACCEL_SW_TRANSPORT`):
//!
//! * **`channel`** — the vendored MPSC channels: one mutex + condvar
//!   handoff per message, one `Arc`-boxed copy of each batch shared by
//!   reference count. The original path, kept as the semantic
//!   reference.
//! * **`ring`** (default) — lock-free SPSC rings
//!   ([`streamcore::ring`]): one ring per worker for distribution, one
//!   per worker for results, and a shared [batch
//!   arena](streamcore::ring::batch_arena) so a broadcast ships one
//!   sequence number per worker while every join core probes the
//!   arena-resident batch *in place* — zero-copy from router to probe.
//!   Supervision is unchanged in spirit: the heartbeat/saturation
//!   checks simply move from the channel `send_timeout` loop to the
//!   ring's claim-retry path, and [`FaultPlan`] kill/stall/drop
//!   semantics are preserved bit-for-bit because batch message
//!   boundaries are identical on both transports (the cross-transport
//!   equivalence suite pins exactly this).
//!
//! Workers can optionally be pinned to cores
//! ([`JoinConfig::pin_workers`]) so each ring's two hot cache lines
//! stay put — the software analogue of the hardware design's
//! hard-wired point-to-point links.
//!
//! # Partitioned dispatch (PanJoin mode)
//!
//! Broadcast distribution sends every tuple to every worker — each probe
//! pays O(window) regardless of core count. With
//! [`Partitioning::Hash`]
//! ([`JoinConfig::partitioning`], overridable process-wide with
//! `ACCEL_SW_PARTITIONING`) the window is instead *content-partitioned*
//! by join key, PanJoin-style: rendezvous hashing
//! ([`PartitionMap::key_owner`]) assigns each key an owning worker, the
//! router ships each tuple only to its owner as a keyed sub-batch
//! (tuple + global stream coordinates), and the owner
//! probes a per-key chain ([`streamcore::PartitionedWindow`]) instead of
//! scanning a sub-window. Eviction uses the router-stamped global
//! sequence watermarks — never local counts — so the union of the shards
//! equals the broadcast window at every probe and the result multiset is
//! identical to broadcast mode (the cross-impl equivalence suite pins
//! this, uniform and zipf, healthy and under kills).
//!
//! Skew is handled online: a Misra–Gries sketch ([`FreqSketch`]) watches
//! routed keys, and a key that exceeds
//! [`SplitJoinConfig::hot_key_factor`] fair shares of the traffic is
//! *split* — its stores rotate round-robin over all live workers while
//! its probes broadcast, so one hot key no longer pins a whole stream to
//! one core. Old data stays where it was stored; probes reach everyone,
//! so the transition loses nothing. Per-worker shard occupancy, split
//! counts, and routing fan-out surface as
//! [`PartitionStats`] (`splitjoin.partition.*` in the registry).
//! Recovery keeps working — a dead position's ledger is its exact orphan
//! count, and rendezvous hashing re-homes only the dead worker's keys —
//! but replication is rejected at spawn, and non-equi predicates cannot
//! be content-partitioned. See `docs/PARTITIONING.md` for a measured
//! walkthrough.
//!
//! # Fault tolerance
//!
//! Every data-path operation is fallible ([`accel_error::JoinError`])
//! instead of `.expect`-ing channel peers alive, and the distribution
//! side is a supervised *router*:
//!
//! * channel sends use bounded exponential backoff
//!   (`send_timeout`, 1 ms doubling to 64 ms) and watch each worker's
//!   heartbeat counter — back-pressure with progress waits forever, a
//!   frozen heartbeat with a full channel for the whole supervision
//!   deadline reports [`JoinError::Saturated`];
//! * a worker found dead (scripted kill from the
//!   [`FaultPlan`], scripted panic, or organic
//!   death) is *recovered*: the router retires its position from the
//!   shared [`PartitionMap`], broadcasts the new map so survivors
//!   re-partition future storage turns at the same message boundary, and
//!   records the exact completeness loss — the tuples orphaned inside the
//!   dead worker's sub-window — in the outcome's
//!   [`FaultReport`];
//! * with [`SplitJoinConfig::with_replication`], the router additionally
//!   keeps a replica ring of the last `effective_window` tuples per
//!   stream and re-inserts the orphans into survivor sub-windows on
//!   recovery.
//!
//! Scripted kills are recovered *proactively* at the exact batch boundary
//! the plan names, which is what makes the orphan accounting exact: the
//! dead worker's occupancy is the closed-form round-robin share of the
//! streams sent so far, clamped to the sub-window size. With an empty
//! plan none of this machinery runs per tuple: the router counts stream
//! tags per batch and nothing else.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use accel_error::JoinError;
pub use accel_error::WorkerStats;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use streamcore::kernel::{self, KernelStats, MIN_BLOCK_PROBES};
use streamcore::ring::{self, ArenaReader, ArenaWriter, PopError, RingConsumer, RingProducer};
use streamcore::{
    FlatWindow, FreqSketch, HashIndexWindow, JoinPredicate, MatchPair, PartitionMap,
    PartitionedWindow, StreamTag, Tuple,
};

use crate::config::{JoinConfig, JoinParams, Kernel, Partitioning, Transport};
use crate::fault::{round_robin_share, FaultPlan, FaultReport};
use crate::supervise::{
    supervised_push, supervised_send, AliveGuard, SendStatus, SendSupervisor, WorkerCell,
    CLAIM_SPIN_YIELDS, SATURATION_DEADLINE,
};

/// Per-worker result-ring capacity (individual [`MatchPair`]s, not
/// chunks) on the ring transport. Generous enough that a draining
/// collector never back-pressures the probe loop in practice.
const RESULT_RING_CAPACITY: usize = 8_192;

/// How long an idle ring-transport thread sleeps between polls once
/// spinning and yielding have not produced work.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

pub use crate::config::{default_batch_size, DEFAULT_BATCH_SIZE};

/// Default hot-key promotion factor (see
/// [`SplitJoinConfig::hot_key_factor`]): a key is split once it exceeds
/// half a fair share of the routed traffic.
pub const DEFAULT_HOT_KEY_FACTOR: f64 = 0.5;

/// Default minimum routed-tuple sample before any hot-key promotion
/// (see [`SplitJoinConfig::hot_min_sample`]).
pub const DEFAULT_HOT_MIN_SAMPLE: u64 = 1_024;

/// Tracked-key capacity of the router's Misra–Gries sketch
/// ([`FreqSketch`]) in partitioned mode. Any key above a
/// `1/(capacity+1)` traffic share is guaranteed tracked, far below the
/// promotion threshold for any plausible core count.
const SKETCH_CAPACITY: usize = 64;

/// Join algorithm inside each worker (mirrors `joinhw::JoinAlgorithm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwJoinAlgorithm {
    /// Scan the whole opposite sub-window per probe — any predicate.
    /// Backed by [`FlatWindow`]: the scan walks a dense `u32` key array.
    NestedLoop,
    /// Probe a per-key hash index — equi-joins only, O(matches) probes.
    /// Backed by [`HashIndexWindow`]: a flat ring plus an
    /// open-addressing key index.
    Hash,
}

/// Configuration of a [`SplitJoin`] instance: the shared
/// [`JoinConfig`] plus the SplitJoin-specific extensions. Derefs to
/// [`JoinConfig`], so the shared fields and `&self` helpers
/// (`config.window_size`, `config.sub_window()`) read and write exactly
/// as before the convergence.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitJoinConfig {
    /// The engine-independent configuration fields.
    pub common: JoinConfig,
    /// Join algorithm (default nested-loop, as the paper measures).
    pub algorithm: SwJoinAlgorithm,
    /// Keep a coordinator-side replica ring of the last
    /// `effective_window` tuples per stream and re-insert a dead
    /// worker's orphans into survivor sub-windows on recovery. Costs a
    /// per-tuple copy on the router thread; off by default.
    pub replicate_on_loss: bool,
    /// Hot-key promotion threshold in partitioned mode
    /// ([`Partitioning::Hash`]): a key is split across all live workers
    /// once its sketched frequency reaches `hot_key_factor` fair shares
    /// of the routed traffic (`estimate ≥ hot_key_factor × total /
    /// live_workers`). Default [`DEFAULT_HOT_KEY_FACTOR`]; must be
    /// positive. Set it absurdly high (e.g. `1e9`) to disable splitting.
    pub hot_key_factor: f64,
    /// Minimum routed tuples (prefill included) before any hot-key
    /// promotion — keeps early sketch noise from splitting cold keys.
    /// Default [`DEFAULT_HOT_MIN_SAMPLE`].
    pub hot_min_sample: u64,
}

impl Deref for SplitJoinConfig {
    type Target = JoinConfig;
    fn deref(&self) -> &JoinConfig {
        &self.common
    }
}

impl DerefMut for SplitJoinConfig {
    fn deref_mut(&mut self) -> &mut JoinConfig {
        &mut self.common
    }
}

impl JoinParams for SplitJoinConfig {
    fn common(&self) -> &JoinConfig {
        &self.common
    }
    fn common_mut(&mut self) -> &mut JoinConfig {
        &mut self.common
    }
}

impl SplitJoinConfig {
    /// An equi-join configuration with default channel and batch sizing
    /// (see [`default_batch_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` or `window_size` is zero.
    pub fn new(num_cores: usize, window_size: usize) -> Self {
        Self {
            common: JoinConfig::new(num_cores, window_size),
            algorithm: SwJoinAlgorithm::NestedLoop,
            replicate_on_loss: false,
            hot_key_factor: DEFAULT_HOT_KEY_FACTOR,
            hot_min_sample: DEFAULT_HOT_MIN_SAMPLE,
        }
    }

    /// Replaces the join predicate.
    #[must_use]
    pub fn with_predicate(mut self, predicate: JoinPredicate) -> Self {
        self.common = self.common.with_predicate(predicate);
        self
    }

    /// Selects the join algorithm.
    ///
    /// # Panics
    ///
    /// Panics if [`SwJoinAlgorithm::Hash`] is combined with a non-equi
    /// predicate.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: SwJoinAlgorithm) -> Self {
        assert!(
            algorithm != SwJoinAlgorithm::Hash || self.predicate == JoinPredicate::Equi,
            "hash join requires an equi-join predicate"
        );
        self.algorithm = algorithm;
        self
    }

    /// Sets the distribution batch size (see
    /// [`JoinConfig::batch_size`] for the semantics and the interaction
    /// with `channel_capacity`).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.common = self.common.with_batch_size(batch_size);
        self
    }

    /// Sets the per-worker channel capacity (in batch messages; see
    /// [`JoinConfig::channel_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_channel_capacity(mut self, capacity: usize) -> Self {
        self.common = self.common.with_channel_capacity(capacity);
        self
    }

    /// Disables result retention and collection (counting only).
    #[must_use]
    pub fn counting_only(mut self) -> Self {
        self.common = self.common.counting_only();
        self
    }

    /// Installs a fault plan (validated against the core count).
    ///
    /// # Panics
    ///
    /// Panics if the plan targets a worker `>= num_cores`.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.common = self.common.with_fault_plan(plan);
        self
    }

    /// Enables sub-window re-replication on worker loss (see
    /// [`SplitJoinConfig::replicate_on_loss`]).
    #[must_use]
    pub fn with_replication(mut self) -> Self {
        self.replicate_on_loss = true;
        self
    }

    /// Selects the data-path transport (see [`Transport`]).
    #[must_use]
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.common = self.common.with_transport(transport);
        self
    }

    /// Selects the dispatch discipline (see [`Partitioning`]).
    /// [`Partitioning::Hash`] requires an equi-join predicate and no
    /// replication, checked at spawn.
    #[must_use]
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.common = self.common.with_partitioning(partitioning);
        self
    }

    /// Selects the probe kernel (see [`Kernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.common = self.common.with_kernel(kernel);
        self
    }

    /// Sets the hot-key promotion factor (see
    /// [`SplitJoinConfig::hot_key_factor`]).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn with_hot_key_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "hot-key factor must be positive");
        self.hot_key_factor = factor;
        self
    }

    /// Sets the minimum sample before hot-key promotion (see
    /// [`SplitJoinConfig::hot_min_sample`]).
    #[must_use]
    pub fn with_hot_sample(mut self, min_sample: u64) -> Self {
        self.hot_min_sample = min_sample;
        self
    }

    /// Pins each join core to a CPU (see [`JoinConfig::pin_workers`]).
    #[must_use]
    pub fn with_pinning(mut self) -> Self {
        self.common = self.common.with_pinning();
        self
    }
}

enum Msg {
    /// One distribution batch, shared across all workers
    /// (channel transport: `Arc` reference-count bumps, not copies).
    Batch(Arc<[(StreamTag, Tuple)]>),
    /// One distribution batch resident in the shared
    /// [`batch arena`](streamcore::ring::batch_arena) (ring transport):
    /// the worker probes arena slot `seq % slots` in place — zero-copy —
    /// and releases it afterwards so the slot can be reused.
    ArenaBatch {
        /// Arena sequence number identifying the batch.
        seq: u64,
    },
    /// One keyed-dispatch sub-batch (partitioned mode): only the
    /// entries this worker owns or must probe, each stamped with the
    /// global stream coordinates that keep its shard window-equivalent
    /// to the broadcast realization.
    Part(Arc<[PartEntry]>),
    /// Window pre-fill (no probing), shared across all workers.
    Prefill(StreamTag, Arc<[Tuple]>),
    /// Re-replicated orphans of a dead worker: insert directly into this
    /// worker's own sub-window, without probing or advancing the
    /// round-robin counters.
    Adopt(StreamTag, Arc<[Tuple]>),
    /// A worker died: switch to this partition map for future storage
    /// turns. All survivors see it at the same position in their FIFO
    /// queues, so they switch at an identical tuple boundary.
    Reconfigure(Arc<PartitionMap>),
    /// Barrier token: drain local result buffers, then acknowledge.
    Flush(FlushToken),
    Stop,
}

/// One keyed-dispatch entry: a tuple plus the global stream coordinates
/// the receiving worker needs to evict its shard by exactly the
/// watermarks the broadcast window realizes.
#[derive(Debug, Clone, Copy)]
struct PartEntry {
    tag: StreamTag,
    tuple: Tuple,
    /// Global per-stream sequence number of this tuple (0-based).
    seq: u64,
    /// Opposite-stream tuple count at this tuple's arrival — the probe
    /// watermark: the shard evicts below `opp - window` before probing.
    opp: u64,
    /// Store into the own-stream shard (the key's owner, or the hot
    /// round-robin turn).
    store: bool,
    /// Probe the opposite-stream shard (`false` for prefill).
    probe: bool,
}

/// How a worker acknowledges a [`Msg::Flush`] barrier.
enum FlushToken {
    /// Channel transport: send on the ack channel.
    Ack(Sender<()>),
    /// Ring transport: publish this token to [`WorkerCell::flushed`];
    /// the router polls the cells instead of blocking on a channel.
    Seq(u64),
}

/// One worker's distribution link, as held by the router.
#[derive(Debug)]
enum Lane {
    Channel(Sender<Msg>),
    Ring(RingProducer<Msg>),
}

/// One worker's distribution link, as held by the worker.
enum WorkerFeed {
    Channel(Receiver<Msg>),
    /// Message ring plus this worker's reader handle into the shared
    /// batch arena ([`Msg::ArenaBatch`] payloads live there). The
    /// reader is `None` in partitioned mode, which ships keyed
    /// sub-batches ([`Msg::Part`]) instead of arena broadcasts.
    Ring(RingConsumer<Msg>, Option<ArenaReader<(StreamTag, Tuple)>>),
}

impl WorkerFeed {
    /// Blocking receive. `None` means the router is gone and the queue
    /// is fully drained — identical to a disconnected channel. The ring
    /// side spins briefly, then yields, then parks in short sleeps: the
    /// latency-critical wakeups (next batch in a loaded run) are caught
    /// by the spin/yield phases.
    fn recv(&mut self) -> Option<Msg> {
        match self {
            WorkerFeed::Channel(rx) => rx.recv().ok(),
            WorkerFeed::Ring(rx, _) => {
                let mut spins = 0u32;
                loop {
                    match rx.try_pop() {
                        Ok(msg) => return Some(msg),
                        Err(PopError::Disconnected) => return None,
                        Err(PopError::Empty) => {
                            if spins < 64 {
                                spins += 1;
                                std::hint::spin_loop();
                            } else if spins < 192 {
                                spins += 1;
                                std::thread::yield_now();
                            } else {
                                std::thread::sleep(IDLE_SLEEP);
                            }
                        }
                    }
                }
            }
        }
    }

    fn arena_reader(&mut self) -> &mut ArenaReader<(StreamTag, Tuple)> {
        match self {
            WorkerFeed::Ring(_, Some(reader)) => reader,
            _ => unreachable!("arena batches only arrive on the broadcast ring transport"),
        }
    }
}

/// One worker's result link toward the collector.
enum ResultsLane {
    /// Shared MPSC channel carrying whole chunks.
    Channel(Sender<Vec<MatchPair>>),
    /// Dedicated SPSC ring carrying individual [`MatchPair`]s.
    Ring(RingProducer<MatchPair>),
}

/// Ring-transport telemetry, attached to the outcome when the run used
/// [`Transport::Ring`].
#[derive(Debug, Default)]
pub struct RingStats {
    /// Distribution-ring occupancy (queued messages) sampled at every
    /// router send.
    pub occupancy: obs::Histogram,
    /// Peak of the occupancy samples — the high-water gauge.
    pub peak_occupancy: obs::Gauge,
    /// Nanoseconds the router waited for ring or arena space, one sample
    /// per send/publish that could not complete on the fast path.
    pub claim_wait_ns: obs::Histogram,
}

impl Clone for RingStats {
    fn clone(&self) -> Self {
        // `obs::Gauge` is deliberately not `Clone` (it is a live cell);
        // cloning the stats copies its reading into a fresh gauge.
        let peak_occupancy = obs::Gauge::new();
        peak_occupancy.set(self.peak_occupancy.get());
        Self {
            occupancy: self.occupancy.clone(),
            peak_occupancy,
            claim_wait_ns: self.claim_wait_ns.clone(),
        }
    }
}

/// Partitioned-dispatch telemetry, attached to the outcome when the run
/// used [`Partitioning::Hash`].
#[derive(Debug, Clone, Default)]
pub struct PartitionStats {
    /// Live (unexpired) stored tuples per worker position at shutdown,
    /// both streams combined, from the router's exact ledger. Retired
    /// positions report zero.
    pub occupancy: Vec<u64>,
    /// Worker positions still live at shutdown.
    pub live: Vec<usize>,
    /// Keys the frequency sketch promoted to hot (split across all live
    /// workers) during the run.
    pub hot_splits: u64,
    /// Total dispatch entries shipped; a hot-key tuple counts once per
    /// worker reached, so `routed / tuples` is the effective fan-out.
    pub routed: u64,
}

impl PartitionStats {
    /// Max-over-mean occupancy across the live positions — the
    /// load-balance figure the skew sweep gates on (`1.0` is perfectly
    /// even; broadcast-free skew pathologies push it toward the live
    /// worker count). `0.0` when nothing is stored.
    #[must_use]
    pub fn balance(&self) -> f64 {
        let live: Vec<u64> = self.live.iter().map(|&w| self.occupancy[w]).collect();
        if live.is_empty() {
            return 0.0;
        }
        let max = live.iter().copied().max().unwrap_or(0) as f64;
        let mean = live.iter().sum::<u64>() as f64 / live.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Everything a [`SplitJoin`] leaves behind at shutdown.
#[derive(Debug, Clone, Default)]
pub struct JoinOutcome {
    /// Collected results no mid-run [`SplitJoin::drain_results`] call
    /// harvested (all of them when nothing drained; empty when
    /// configured counting-only).
    pub results: Vec<MatchPair>,
    /// Total matches ever collected — including drained ones — or the
    /// per-worker counters folded together when counting-only.
    pub result_count: u64,
    /// Per-worker statistics, indexed by core position. A lost worker's
    /// entry is its last published snapshot.
    pub worker_stats: Vec<WorkerStats>,
    /// Distribution batch sizes (tuples per batch message), as recorded
    /// by the distributor: `total()` is the number of batch messages
    /// sent per worker.
    pub batch_sizes: obs::Histogram,
    /// Wall-clock span rings, one per worker (`sw.worker.<position>`):
    /// receive waits and per-batch probe/prefill/flush work. A run that
    /// recovered workers also carries a `sw.router` ring with one
    /// `recover` span per loss. Empty unless tracing was enabled when
    /// the workers were spawned (see `obs::trace`).
    pub trace: Vec<obs::trace::TraceRing>,
    /// What went wrong, if anything: lost workers, orphaned tuples,
    /// recovery latency. All-zero (and [`FaultReport::degraded`] is
    /// `false`) for a healthy run.
    pub fault: FaultReport,
    /// Ring-transport telemetry; `None` on the channel transport, so
    /// channel-run manifests keep their exact pre-ring shape.
    pub ring_stats: Option<RingStats>,
    /// Partitioned-dispatch telemetry; `None` in broadcast mode, so
    /// broadcast manifests keep their exact pre-partitioning shape.
    pub partition_stats: Option<PartitionStats>,
    /// Blocked-kernel telemetry, folded across workers; `None` on
    /// [`Kernel::Scalar`] runs, so scalar manifests keep their exact
    /// pre-kernel shape.
    pub kernel_stats: Option<KernelStats>,
}

impl JoinOutcome {
    /// Publishes the run's counters under stable dotted names
    /// (`splitjoin.worker<i>.probes`, `.stored`, `.matches`,
    /// `splitjoin.batches`, …) for a
    /// [`RunManifest`](obs::RunManifest). Degraded runs additionally
    /// publish the `fault.*` namespace; healthy runs do **not**, so
    /// manifests keep their exact pre-fault-model shape.
    pub fn registry(&self) -> obs::Registry {
        let mut reg = obs::Registry::new();
        reg.record("splitjoin.batches", self.batch_sizes.total());
        reg.record("splitjoin.matches", self.result_count);
        for (i, ws) in self.worker_stats.iter().enumerate() {
            reg.record(format!("splitjoin.worker{i}.probes"), ws.comparisons);
            reg.record(format!("splitjoin.worker{i}.stored"), ws.stored);
            reg.record(format!("splitjoin.worker{i}.matches"), ws.matches);
        }
        if self.fault.degraded() {
            self.fault.publish(&mut reg);
        }
        if let Some(rs) = &self.ring_stats {
            reg.record("splitjoin.ring.occupancy_peak", rs.peak_occupancy.get());
            reg.record("splitjoin.ring.claim_waits", rs.claim_wait_ns.total());
        }
        if let Some(ps) = &self.partition_stats {
            reg.record("splitjoin.partition.hot_splits", ps.hot_splits);
            reg.record("splitjoin.partition.routed", ps.routed);
            let mut max = 0u64;
            for (i, &occ) in ps.occupancy.iter().enumerate() {
                reg.record(format!("splitjoin.partition.worker{i}.occupancy"), occ);
                max = max.max(occ);
            }
            reg.record("splitjoin.partition.occupancy_max", max);
            // Fixed-point (×1000) so the integer registry carries it.
            reg.record(
                "splitjoin.partition.balance_x1000",
                (ps.balance() * 1_000.0).round() as u64,
            );
        }
        if let Some(ks) = &self.kernel_stats {
            reg.record("splitjoin.kernel.tiles", ks.tiles);
            reg.record("splitjoin.kernel.lanes", ks.lanes);
            reg.record("splitjoin.kernel.match_density_x1000", ks.density_x1000());
            reg.record("splitjoin.kernel.scalar_fallbacks", ks.scalar_fallbacks);
        }
        reg
    }
}

/// Coordinator-side replica ring: the last `cap` tuples of one stream,
/// each tagged with the worker that owned its storage turn when it was
/// sent.
#[derive(Debug)]
struct ReplicaBuf {
    cap: usize,
    buf: VecDeque<(u8, Tuple)>,
}

impl ReplicaBuf {
    fn new(cap: usize) -> Self {
        Self { cap, buf: VecDeque::with_capacity(cap) }
    }

    fn push(&mut self, owner: usize, tuple: Tuple) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((owner as u8, tuple));
    }

    /// The last `limit` tuples owned by `worker`, oldest first — exactly
    /// the content of its sub-window ring at this moment.
    fn orphans_of(&self, worker: usize, limit: usize) -> Vec<Tuple> {
        let mut found: Vec<Tuple> = self
            .buf
            .iter()
            .rev()
            .filter(|&&(o, _)| o as usize == worker)
            .take(limit)
            .map(|&(_, t)| t)
            .collect();
        found.reverse();
        found
    }
}

/// Router-side state of the keyed dispatch ([`Partitioning::Hash`]):
/// the frequency sketch, the hot-key set, the per-worker outboxes, and
/// the exact storage ledger that replaces broadcast's closed-form
/// round-robin accounting.
#[derive(Debug)]
struct PartRouter {
    /// Effective global window size — the count-based expiry horizon
    /// stamped into every dispatch entry's eviction watermark.
    window: u64,
    /// Misra–Gries heavy-hitter summary over routed keys.
    sketch: FreqSketch,
    /// Promoted keys → round-robin store cursor over the live workers.
    /// Promotion is sticky: data already spread never re-concentrates.
    hot: HashMap<u32, u64>,
    hot_factor: f64,
    min_sample: u64,
    /// Per-worker FIFO of stored R-stream sequence numbers, expired by
    /// the same watermark the workers use — exact live occupancy, and
    /// exact orphan counts when a worker dies.
    ledger_r: Vec<VecDeque<u64>>,
    /// As `ledger_r`, for the S stream.
    ledger_s: Vec<VecDeque<u64>>,
    /// Per-worker sub-batches being assembled for the current caller
    /// batch; flushed as one [`Msg::Part`] each.
    outbox: Vec<Vec<PartEntry>>,
    hot_splits: u64,
    routed: u64,
}

/// Router-side handles into the process-global live telemetry plane
/// (`obs::live`), created at spawn only when the plane was armed
/// (`obs::live::set_active(true)` *before* [`SplitJoin::spawn`]). Every
/// update is a relaxed atomic at per-batch granularity — an armed plane
/// costs a handful of stores per *batch*, an unarmed one a single
/// relaxed load at spawn.
#[derive(Debug)]
struct LiveRouter {
    /// `splitjoin.batches` — caller batches routed.
    batches: obs::live::SharedCounter,
    /// `splitjoin.tuples` — stream tuples routed through batches.
    tuples: obs::live::SharedCounter,
    /// `splitjoin.partition.routed` — keyed-dispatch tuples routed
    /// (stays 0 in broadcast mode).
    routed: obs::live::SharedCounter,
    /// `splitjoin.ring.occupancy` — queued messages on the lane most
    /// recently pushed to (ring transport; instantaneous, the sampler
    /// turns it into a trajectory).
    ring_occupancy: obs::live::SharedGauge,
    /// `splitjoin.arena.lag` — published sequence minus the slowest
    /// reader's release watermark while the router waits on arena reuse.
    arena_lag: obs::live::SharedGauge,
    /// `splitjoin.workers.live` — live positions in the partition map.
    workers_live: obs::live::SharedGauge,
    /// `fault.workers_lost` / `fault.orphaned_tuples` — degradation as
    /// it happens (the post-mortem `fault.*` registry only exists after
    /// shutdown).
    workers_lost: obs::live::SharedCounter,
    orphaned: obs::live::SharedCounter,
    /// `splitjoin.worker.<i>.heartbeat_age_ns` — nanoseconds since each
    /// live worker's last heartbeat, refreshed once per routed batch (and
    /// for the laggard while the router waits on the arena), so a
    /// stalling worker is scrape-visible long before the 10 s
    /// saturation deadline.
    heartbeat_age: Vec<obs::live::SharedGauge>,
}

impl LiveRouter {
    fn new(config: &SplitJoinConfig) -> Self {
        let reg = obs::live::global();
        let this = Self {
            batches: reg.counter("splitjoin.batches"),
            tuples: reg.counter("splitjoin.tuples"),
            routed: reg.counter("splitjoin.partition.routed"),
            ring_occupancy: reg.gauge("splitjoin.ring.occupancy"),
            arena_lag: reg.gauge("splitjoin.arena.lag"),
            workers_live: reg.gauge("splitjoin.workers.live"),
            workers_lost: reg.counter("fault.workers_lost"),
            orphaned: reg.counter("fault.orphaned_tuples"),
            heartbeat_age: (0..config.num_cores)
                .map(|i| reg.gauge(&format!("splitjoin.worker.{i}.heartbeat_age_ns")))
                .collect(),
        };
        this.workers_live.set(config.num_cores as u64);
        // Lane capacity is a constant of the run; exporting it lets
        // `obs::health` turn occupancy into a pressure fraction.
        reg.gauge("splitjoin.ring.capacity")
            .set(config.channel_capacity as u64);
        this
    }

    /// Per-batch router-side refresh: throughput counters plus the
    /// heartbeat-age gauge of every live worker (one clock read).
    fn on_batch(&self, len: usize, cells: &[Arc<WorkerCell>], live: &[usize]) {
        self.batches.incr();
        self.tuples.add(len as u64);
        let now = obs::trace::now_ns();
        for &w in live {
            if let Some(age) = cells[w].heartbeat_age_ns(now) {
                self.heartbeat_age[w].set(age);
            }
        }
    }

    /// A retired worker must stop alarming: its age gauge pins to zero
    /// and the loss shows up in `fault.workers_lost` instead.
    fn on_worker_lost(&self, worker: usize, orphans: u64, live_count: usize) {
        self.workers_lost.incr();
        self.orphaned.add(orphans);
        self.workers_live.set(live_count as u64);
        self.heartbeat_age[worker].set(0);
    }
}

/// Worker-side live handles (`splitjoin.worker.<i>.*`), updated once per
/// processed message from the worker thread itself. The deltas against
/// the last publication keep every exported counter monotone.
#[derive(Debug)]
struct LiveWorker {
    batches: obs::live::SharedCounter,
    tuples: obs::live::SharedCounter,
    matches: obs::live::SharedCounter,
    /// `splitjoin.matches` — pool-wide match total. Each match is found
    /// by exactly one worker, so the per-worker deltas sum exactly.
    matches_total: obs::live::SharedCounter,
    busy_ns: obs::live::SharedCounter,
    wait_ns: obs::live::SharedCounter,
    last_tuples: u64,
    last_matches: u64,
}

impl LiveWorker {
    fn new(position: usize) -> Self {
        let reg = obs::live::global();
        let name = |suffix: &str| format!("splitjoin.worker.{position}.{suffix}");
        Self {
            batches: reg.counter(&name("batches")),
            tuples: reg.counter(&name("tuples")),
            matches: reg.counter(&name("matches")),
            matches_total: reg.counter("splitjoin.matches"),
            busy_ns: reg.counter(&name("busy_ns")),
            wait_ns: reg.counter(&name("wait_ns")),
            last_tuples: 0,
            last_matches: 0,
        }
    }

    /// One processed message: service time plus stat deltas.
    fn after_msg(&mut self, stats: &WorkerStats, busy_start_ns: u64) {
        self.busy_ns
            .add(obs::trace::now_ns().saturating_sub(busy_start_ns));
        self.batches.incr();
        self.tuples.add(stats.tuples_seen - self.last_tuples);
        self.last_tuples = stats.tuples_seen;
        let dm = stats.matches - self.last_matches;
        self.last_matches = stats.matches;
        if dm > 0 {
            self.matches.add(dm);
            self.matches_total.add(dm);
        }
    }
}

/// The supervised distribution side: senders, supervision cells, the
/// live partition map, and the bookkeeping that makes loss accounting
/// exact.
#[derive(Debug)]
struct Router {
    /// Per-position distribution lane; `None` once the position is
    /// retired (the drop disconnects the link and frees queued messages
    /// once the worker's receiving side is gone too).
    senders: Vec<Option<Lane>>,
    cells: Vec<Arc<WorkerCell>>,
    map: PartitionMap,
    plan: FaultPlan,
    sub_window: usize,
    batches_sent: u64,
    batch_hist: obs::Histogram,
    /// Tuples sent per stream (prefill included) — each healthy worker's
    /// local per-stream count equals these.
    r_sent: u64,
    s_sent: u64,
    /// Exact per-worker storage-turn counts `(R, S)`. `None` while the
    /// map is full (the closed form reproduces them on demand); kept
    /// incrementally once degraded.
    owned: Option<(Vec<u64>, Vec<u64>)>,
    /// Replica rings `(R, S)`, only with `replicate_on_loss`.
    replicas: Option<(ReplicaBuf, ReplicaBuf)>,
    report: FaultReport,
    /// `sw.router` span ring (`recover` spans); attached to the outcome
    /// trace only when non-empty, so healthy traced runs are unchanged.
    ring: Option<obs::trace::TraceRing>,
    /// Ring transport only: writer side of the shared batch arena.
    arena: Option<ArenaWriter<(StreamTag, Tuple)>>,
    /// Ring transport only: occupancy / claim-wait telemetry.
    ring_stats: Option<RingStats>,
    /// Flush tokens issued so far (ring-transport barrier; see
    /// [`FlushToken::Seq`]).
    flush_seq: u64,
    /// Keyed-dispatch state; `None` in broadcast mode.
    part: Option<PartRouter>,
    /// Live-telemetry handles; `None` unless the plane was armed at
    /// spawn ([`obs::live::set_active`]).
    live: Option<LiveRouter>,
}

impl Router {
    /// Sends one message down worker `w`'s lane under supervision,
    /// recording ring telemetry on the way. A retired lane reports
    /// [`SendStatus::Lost`].
    fn send_msg(&mut self, w: usize, msg: Msg) -> Result<SendStatus, JoinError> {
        // Split borrows: the lane is &mut while cells/stats are read.
        let Router { senders, cells, ring_stats, live, .. } = self;
        match senders[w].as_mut() {
            None => Ok(SendStatus::Lost),
            Some(Lane::Channel(tx)) => supervised_send(tx, &cells[w], w, msg),
            Some(Lane::Ring(prod)) => {
                let depth = prod.len() as u64;
                if let Some(stats) = ring_stats.as_mut() {
                    stats.occupancy.record_value(depth);
                    stats.peak_occupancy.max(depth);
                }
                if let Some(lv) = live.as_ref() {
                    lv.ring_occupancy.set(depth);
                }
                let (status, waited_ns) = supervised_push(prod, &cells[w], w, msg)?;
                if waited_ns > 0 {
                    if let Some(stats) = ring_stats.as_mut() {
                        stats.claim_wait_ns.record_value(waited_ns);
                    }
                }
                Ok(status)
            }
        }
    }

    /// Publishes one batch into the shared arena, waiting (supervised)
    /// for slot reuse when the slowest reader is behind. This is where
    /// the channel transport's `send_timeout` heartbeat supervision
    /// lives on the ring transport: a laggard that keeps beating is
    /// back-pressure and waits forever; a frozen laggard holding the
    /// arena full for the whole deadline is [`JoinError::Saturated`].
    fn publish_to_arena(&mut self, batch: &[(StreamTag, Tuple)]) -> Result<u64, JoinError> {
        let mut sup = SendSupervisor::new();
        let mut spins = 0u32;
        let mut wait_started: Option<Instant> = None;
        loop {
            let arena = self.arena.as_mut().expect("ring transport has an arena");
            match arena.try_publish(batch) {
                Ok(seq) => {
                    if let (Some(t0), Some(stats)) = (wait_started, self.ring_stats.as_mut()) {
                        stats
                            .claim_wait_ns
                            .record_value(t0.elapsed().as_nanos().max(1) as u64);
                    }
                    return Ok(seq);
                }
                Err(ring::ArenaFull) => {
                    wait_started.get_or_insert_with(Instant::now);
                    // No active readers left: deactivation freed every
                    // slot, so the retry succeeds (or AllWorkersLost
                    // surfaces at the caller's live-count check).
                    let Some(laggard) = arena.laggard() else { continue };
                    if self.cells[laggard].is_dead() {
                        // The slot hog died — recover it (which also
                        // deactivates its arena reader) and retry.
                        self.reap_dead()?;
                        if self.map.live_count() == 0 {
                            return Err(JoinError::AllWorkersLost);
                        }
                        continue;
                    }
                    if spins < CLAIM_SPIN_YIELDS {
                        spins += 1;
                        std::thread::yield_now();
                    } else {
                        // Slow path only: export how far behind the
                        // slowest reader is and refresh its heartbeat
                        // age, so an armed scrape shows *which* worker
                        // is holding the arena and for how long.
                        if let Some(lv) = self.live.as_ref() {
                            let (seq, min) = {
                                let a = self.arena.as_ref().expect("ring transport has an arena");
                                (a.seq(), a.min_released())
                            };
                            lv.arena_lag.set(seq.saturating_sub(min));
                            let now = obs::trace::now_ns();
                            if let Some(age) = self.cells[laggard].heartbeat_age_ns(now) {
                                lv.heartbeat_age[laggard].set(age);
                            }
                        }
                        let beat = self.cells[laggard].heartbeat.load(Ordering::Relaxed);
                        let wait = sup.next_wait(Instant::now(), laggard, beat)?;
                        std::thread::sleep(wait);
                    }
                }
            }
        }
    }

    /// Per-stream accounting for an outgoing batch. Healthy fast path:
    /// one tag-count pass. Degraded or replicating: per-tuple ownership
    /// tracking.
    fn note_batch(&mut self, batch: &[(StreamTag, Tuple)]) {
        if self.owned.is_some() || self.replicas.is_some() {
            for &(tag, tuple) in batch {
                self.note_tuple(tag, tuple);
            }
        } else {
            let r = batch.iter().filter(|&&(tag, _)| tag == StreamTag::R).count() as u64;
            self.r_sent += r;
            self.s_sent += batch.len() as u64 - r;
        }
    }

    fn note_prefill(&mut self, tag: StreamTag, tuples: &[Tuple]) {
        if self.owned.is_some() || self.replicas.is_some() {
            for &t in tuples {
                self.note_tuple(tag, t);
            }
        } else {
            match tag {
                StreamTag::R => self.r_sent += tuples.len() as u64,
                StreamTag::S => self.s_sent += tuples.len() as u64,
            }
        }
    }

    fn note_tuple(&mut self, tag: StreamTag, tuple: Tuple) {
        let seq = match tag {
            StreamTag::R => self.r_sent,
            StreamTag::S => self.s_sent,
        };
        let owner = self.map.owner(seq);
        if let Some((owned_r, owned_s)) = &mut self.owned {
            match tag {
                StreamTag::R => owned_r[owner] += 1,
                StreamTag::S => owned_s[owner] += 1,
            }
        }
        if let Some((rep_r, rep_s)) = &mut self.replicas {
            match tag {
                StreamTag::R => rep_r.push(owner, tuple),
                StreamTag::S => rep_s.push(owner, tuple),
            }
        }
        match tag {
            StreamTag::R => self.r_sent += 1,
            StreamTag::S => self.s_sent += 1,
        }
    }

    /// Sends `make()` to every live worker; workers found dead are
    /// recovered and the broadcast continues over the survivors.
    fn broadcast(&mut self, make: impl Fn() -> Msg) -> Result<(), JoinError> {
        let mut lost = Vec::new();
        for w in self.map.live().to_vec() {
            if self.senders[w].is_none() {
                continue;
            }
            match self.send_msg(w, make())? {
                SendStatus::Sent => {}
                SendStatus::Lost => lost.push(w),
            }
        }
        self.recover_all(lost)?;
        if self.map.live_count() == 0 {
            return Err(JoinError::AllWorkersLost);
        }
        Ok(())
    }

    /// Routes one tuple under keyed dispatch: stamp its global stream
    /// coordinates, feed the sketch (promoting the key if it crossed
    /// the hot threshold), expire the ledgers, then append dispatch
    /// entries to the owner's outbox — or, for a hot key, a probe entry
    /// to every live worker with the store turn rotating round-robin.
    fn route_tuple(&mut self, tag: StreamTag, tuple: Tuple, probe: bool) {
        let key = tuple.key();
        let (seq, opp) = match tag {
            StreamTag::R => (self.r_sent, self.s_sent),
            StreamTag::S => (self.s_sent, self.r_sent),
        };
        match tag {
            StreamTag::R => self.r_sent += 1,
            StreamTag::S => self.s_sent += 1,
        }
        let live_count = self.map.live_count();
        let part = self.part.as_mut().expect("route_tuple is partitioned-mode only");
        part.sketch.observe(key);
        // Promote once the key's sketched share reaches `hot_factor`
        // fair shares of the routed traffic. Splitting on a single
        // worker would be a no-op, so wait for company.
        if live_count > 1
            && !part.hot.contains_key(&key)
            && part.sketch.total() >= part.min_sample
            && part.sketch.estimate(key) as f64 * live_count as f64
                >= part.hot_factor * part.sketch.total() as f64
        {
            part.hot.insert(key, 0);
            part.hot_splits += 1;
        }
        // Expire this stream's ledgers by the same watermark the
        // workers evict with, so occupancy and orphan counts stay
        // exact. Amortized O(1): each stored seq is popped once.
        {
            let min_live = (seq + 1).saturating_sub(part.window);
            let ledger = match tag {
                StreamTag::R => &mut part.ledger_r,
                StreamTag::S => &mut part.ledger_s,
            };
            for stored in ledger.iter_mut() {
                while stored.front().is_some_and(|&s| s < min_live) {
                    stored.pop_front();
                }
            }
        }
        let store_at = if part.hot.contains_key(&key) {
            let live = self.map.live();
            let rr = part.hot.get_mut(&key).expect("just checked");
            let store_at = live[(*rr % live.len() as u64) as usize];
            *rr += 1;
            for &w in live {
                // Probe everywhere (any worker may hold this key's
                // spread-out opposite data); store on the rr turn.
                part.outbox[w].push(PartEntry {
                    tag,
                    tuple,
                    seq,
                    opp,
                    store: w == store_at,
                    probe,
                });
            }
            part.routed += live.len() as u64;
            store_at
        } else {
            let w = self.map.key_owner(key);
            part.outbox[w].push(PartEntry { tag, tuple, seq, opp, store: true, probe });
            part.routed += 1;
            w
        };
        match tag {
            StreamTag::R => part.ledger_r[store_at].push_back(seq),
            StreamTag::S => part.ledger_s[store_at].push_back(seq),
        }
    }

    /// Ships every non-empty per-worker sub-batch as one [`Msg::Part`].
    /// A worker found dead mid-send is recovered and its sub-batch dies
    /// with it: the ledger already counts those tuples as stored there,
    /// so the loss surfaces as exact orphan accounting, and the dead
    /// position's keys re-home to survivors from the next tuple on
    /// (rendezvous hashing moves only its keys).
    fn flush_outboxes(&mut self) -> Result<(), JoinError> {
        let n = self.senders.len();
        let mut lost = Vec::new();
        for w in 0..n {
            let entries = {
                let part = self.part.as_mut().expect("partitioned mode");
                if part.outbox[w].is_empty() {
                    continue;
                }
                std::mem::take(&mut part.outbox[w])
            };
            if self.senders[w].is_none() {
                continue;
            }
            let shared: Arc<[PartEntry]> = entries.into();
            match self.send_msg(w, Msg::Part(shared))? {
                SendStatus::Sent => {}
                SendStatus::Lost => lost.push(w),
            }
        }
        self.recover_all(lost)?;
        if self.map.live_count() == 0 {
            return Err(JoinError::AllWorkersLost);
        }
        Ok(())
    }

    /// Keyed dispatch of one caller batch (partitioned mode): route
    /// every tuple, then flush at most one message per worker.
    fn send_part_batch(&mut self, batch: &[(StreamTag, Tuple)]) -> Result<(), JoinError> {
        self.batch_hist.record_value(batch.len() as u64);
        self.batches_sent += 1;
        if let Some(lv) = self.live.as_ref() {
            lv.on_batch(batch.len(), &self.cells, self.map.live());
            lv.routed.add(batch.len() as u64);
        }
        let boundary = self.batches_sent;
        for &(tag, tuple) in batch {
            self.route_tuple(tag, tuple, true);
        }
        self.flush_outboxes()?;
        // Proactive recovery at the scripted kill boundary, as in
        // broadcast mode: the victim's lane closes here, it drains what
        // was already queued and exits, and the ledger is exactly its
        // live occupancy.
        let kills: Vec<usize> = self.plan.kills_after(boundary).collect();
        if !kills.is_empty() {
            self.recover_all(kills)?;
            if self.map.live_count() == 0 {
                return Err(JoinError::AllWorkersLost);
            }
        }
        Ok(())
    }

    fn send_batch(&mut self, batch: &[(StreamTag, Tuple)]) -> Result<(), JoinError> {
        if batch.is_empty() {
            return Ok(());
        }
        if self.map.live_count() == 0 {
            return Err(JoinError::AllWorkersLost);
        }
        if self.part.is_some() {
            return self.send_part_batch(batch);
        }
        self.batch_hist.record_value(batch.len() as u64);
        self.batches_sent += 1;
        if let Some(lv) = self.live.as_ref() {
            lv.on_batch(batch.len(), &self.cells, self.map.live());
        }
        let boundary = self.batches_sent;
        self.note_batch(batch);
        if self.arena.is_some() {
            // Zero-copy broadcast: one arena publish, N sequence numbers.
            let seq = self.publish_to_arena(batch)?;
            self.broadcast(|| Msg::ArenaBatch { seq })?;
        } else {
            let shared: Arc<[(StreamTag, Tuple)]> = batch.to_vec().into();
            self.broadcast(|| Msg::Batch(shared.clone()))?;
        }
        // Proactive recovery at the scripted kill boundary: the victim
        // processes this batch and no more, so the ownership model above
        // is exactly its occupancy at death.
        let kills: Vec<usize> = self.plan.kills_after(boundary).collect();
        if !kills.is_empty() {
            self.recover_all(kills)?;
            if self.map.live_count() == 0 {
                return Err(JoinError::AllWorkersLost);
            }
        }
        Ok(())
    }

    fn send_prefill(&mut self, tag: StreamTag, tuples: &[Tuple]) -> Result<(), JoinError> {
        if tuples.is_empty() {
            return Ok(());
        }
        if self.map.live_count() == 0 {
            return Err(JoinError::AllWorkersLost);
        }
        if self.part.is_some() {
            // Same keyed routing path, probing disabled — prefill still
            // advances the stream counters and the sketch.
            for &t in tuples {
                self.route_tuple(tag, t, false);
            }
            return self.flush_outboxes();
        }
        self.note_prefill(tag, tuples);
        let shared: Arc<[Tuple]> = tuples.to_vec().into();
        self.broadcast(|| Msg::Prefill(tag, shared.clone()))
    }

    fn recover_all(&mut self, mut pending: Vec<usize>) -> Result<(), JoinError> {
        while let Some(w) = pending.pop() {
            pending.extend(self.recover_one(w)?);
        }
        Ok(())
    }

    /// Retires one dead worker: exact orphan accounting, partition-map
    /// broadcast, optional re-replication. Returns any further workers
    /// discovered dead while notifying the survivors.
    fn recover_one(&mut self, worker: usize) -> Result<Vec<usize>, JoinError> {
        if !self.map.is_live(worker) {
            return Ok(Vec::new());
        }
        if self.part.is_some() {
            return self.recover_one_part(worker);
        }
        let t0 = Instant::now();
        let span_start = obs::trace::now_ns();
        let sub = self.sub_window as u64;
        // Materialize exact per-worker turn counts before mutating the
        // map: while it is still full the closed form reproduces them
        // from the two stream counters alone.
        if self.owned.is_none() {
            let n = self.map.total();
            let owned_r = (0..n).map(|w| round_robin_share(&self.map, w, self.r_sent)).collect();
            let owned_s = (0..n).map(|w| round_robin_share(&self.map, w, self.s_sent)).collect();
            self.owned = Some((owned_r, owned_s));
        }
        let (owned_r, owned_s) = self.owned.as_ref().expect("just materialized");
        let orphans = owned_r[worker].min(sub) + owned_s[worker].min(sub);
        self.map.retire(worker);
        self.senders[worker] = None;
        if self.arena.is_some() {
            self.retire_reader(worker)?;
        }
        self.report.workers_lost.push(worker);
        self.report.orphaned_tuples += orphans;
        if let Some(lv) = self.live.as_ref() {
            lv.on_worker_lost(worker, orphans, self.map.live_count());
        }

        let mut lost = Vec::new();
        if self.map.live_count() > 0 {
            let shared = Arc::new(self.map.clone());
            for w in self.map.live().to_vec() {
                if self.senders[w].is_none() {
                    continue;
                }
                match self.send_msg(w, Msg::Reconfigure(Arc::clone(&shared)))? {
                    SendStatus::Sent => {}
                    SendStatus::Lost => lost.push(w),
                }
            }
            let adoptable = self.replicas.as_ref().map(|(rep_r, rep_s)| {
                (
                    rep_r.orphans_of(worker, sub as usize),
                    rep_s.orphans_of(worker, sub as usize),
                )
            });
            if let Some((adopt_r, adopt_s)) = adoptable {
                for (tag, adoptees) in [(StreamTag::R, adopt_r), (StreamTag::S, adopt_s)] {
                    if adoptees.is_empty() {
                        continue;
                    }
                    self.report.readopted_tuples += adoptees.len() as u64;
                    let live = self.map.live().to_vec();
                    let mut per_worker: Vec<Vec<Tuple>> = vec![Vec::new(); live.len()];
                    for (i, t) in adoptees.into_iter().enumerate() {
                        per_worker[i % live.len()].push(t);
                    }
                    for (slot, tuples) in per_worker.into_iter().enumerate() {
                        let w = live[slot];
                        if tuples.is_empty() || lost.contains(&w) || self.senders[w].is_none() {
                            continue;
                        }
                        let shared: Arc<[Tuple]> = tuples.into();
                        if let SendStatus::Lost = self.send_msg(w, Msg::Adopt(tag, shared))? {
                            lost.push(w);
                        }
                    }
                }
            }
        }
        self.report
            .recovery_ns
            .record_value(t0.elapsed().as_nanos().max(1) as u64);
        if let Some(r) = self.ring.as_mut() {
            let now = obs::trace::now_ns();
            r.record_arg("recover", span_start, now.saturating_sub(span_start), worker as u64);
        }
        Ok(lost)
    }

    /// Partitioned-mode recovery: retire the position and count its
    /// ledger occupancy as orphans. No partition-map broadcast is
    /// needed — partitioned workers are ownership-free (they store what
    /// the router stamps `store` on), future keys re-home through
    /// rendezvous hashing the moment the map retires the position, and
    /// replication is rejected at spawn. No arena reader to retire
    /// either: partitioned mode never creates the arena.
    fn recover_one_part(&mut self, worker: usize) -> Result<Vec<usize>, JoinError> {
        let t0 = Instant::now();
        let span_start = obs::trace::now_ns();
        let part = self.part.as_mut().expect("partitioned mode");
        let orphans = (part.ledger_r[worker].len() + part.ledger_s[worker].len()) as u64;
        part.ledger_r[worker].clear();
        part.ledger_s[worker].clear();
        part.outbox[worker].clear();
        self.map.retire(worker);
        self.senders[worker] = None;
        self.report.workers_lost.push(worker);
        self.report.orphaned_tuples += orphans;
        if let Some(lv) = self.live.as_ref() {
            lv.on_worker_lost(worker, orphans, self.map.live_count());
        }
        self.report.recovery_ns.record_value(t0.elapsed().as_nanos().max(1) as u64);
        if let Some(r) = self.ring.as_mut() {
            let now = obs::trace::now_ns();
            r.record_arg("recover", span_start, now.saturating_sub(span_start), worker as u64);
        }
        Ok(Vec::new())
    }

    /// Ring transport: drops a retired worker from the arena's reuse
    /// watermark. The arena contract requires that the reader never
    /// reads again, so this waits — bounded by the supervision deadline
    /// — for the worker thread to actually exit (its `AliveGuard` flips
    /// the cell dead on the way out, scripted kills and panics alike);
    /// a scripted-kill victim may still be probing its final arena
    /// batch when the router recovers it proactively.
    fn retire_reader(&mut self, worker: usize) -> Result<(), JoinError> {
        let t0 = Instant::now();
        let mut spins = 0u32;
        while !self.cells[worker].is_dead() {
            if t0.elapsed() >= SATURATION_DEADLINE {
                return Err(JoinError::Saturated {
                    worker,
                    waited_ms: t0.elapsed().as_millis() as u64,
                });
            }
            if spins < 1_024 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        if let Some(arena) = self.arena.as_mut() {
            arena.deactivate(worker);
        }
        Ok(())
    }

    /// Recovers any live-mapped worker whose cell reports it dead
    /// (reactive detection: scripted panics and organic deaths).
    fn reap_dead(&mut self) -> Result<(), JoinError> {
        let dead: Vec<usize> = self
            .map
            .live()
            .iter()
            .copied()
            .filter(|&w| self.cells[w].is_dead())
            .collect();
        self.recover_all(dead)
    }

    /// Flush barrier over the survivors. A worker that dies mid-flush
    /// simply never acknowledges: recovering it drops its lane, which
    /// (with its receiving side already gone) frees the queued token and
    /// lets the barrier cover the survivors instead of deadlocking.
    ///
    /// Channel transport: workers acknowledge on a dedicated ack
    /// channel. Ring transport: workers publish the flush token to
    /// their cell ([`WorkerCell::flushed`]) and the router polls —
    /// no reverse channel needed.
    fn flush(&mut self) -> Result<(), JoinError> {
        if self.map.live_count() == 0 {
            return Err(JoinError::AllWorkersLost);
        }
        if self.arena.is_some() {
            self.flush_ring()
        } else {
            self.flush_channel()
        }
    }

    fn flush_channel(&mut self) -> Result<(), JoinError> {
        let (ack_tx, ack_rx) = bounded::<()>(self.map.total());
        let mut sent = 0usize;
        let mut lost = Vec::new();
        for w in self.map.live().to_vec() {
            if self.senders[w].is_none() {
                continue;
            }
            match self.send_msg(w, Msg::Flush(FlushToken::Ack(ack_tx.clone())))? {
                SendStatus::Sent => sent += 1,
                SendStatus::Lost => lost.push(w),
            }
        }
        drop(ack_tx);
        self.recover_all(lost)?;
        let mut acks = 0usize;
        while acks < sent {
            match ack_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(()) => acks += 1,
                Err(RecvTimeoutError::Disconnected) => break,
                Err(RecvTimeoutError::Timeout) => self.reap_dead()?,
            }
        }
        if self.map.live_count() == 0 {
            return Err(JoinError::AllWorkersLost);
        }
        Ok(())
    }

    fn flush_ring(&mut self) -> Result<(), JoinError> {
        self.flush_seq += 1;
        let token = self.flush_seq;
        let mut waiting = Vec::new();
        let mut lost = Vec::new();
        for w in self.map.live().to_vec() {
            if self.senders[w].is_none() {
                continue;
            }
            match self.send_msg(w, Msg::Flush(FlushToken::Seq(token)))? {
                SendStatus::Sent => waiting.push(w),
                SendStatus::Lost => lost.push(w),
            }
        }
        self.recover_all(lost)?;
        let mut spins = 0u32;
        loop {
            // Acquire pairs with the worker's Release store: once we see
            // the token, everything the worker did before acknowledging
            // (probes, stores, result sends) is visible.
            waiting.retain(|&w| {
                self.map.is_live(w) && self.cells[w].flushed.load(Ordering::Acquire) < token
            });
            if waiting.is_empty() {
                break;
            }
            if waiting.iter().any(|&w| self.cells[w].is_dead()) {
                self.reap_dead()?;
                continue;
            }
            if spins < 1_024 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
        if self.map.live_count() == 0 {
            return Err(JoinError::AllWorkersLost);
        }
        Ok(())
    }
}

/// What each worker thread leaves behind at exit.
type WorkerExit = (WorkerStats, KernelStats, Option<obs::trace::TraceRing>);

/// A running SplitJoin: N join-core threads plus (when collecting) a
/// collector thread.
///
/// See the [crate-level example](crate) for basic usage.
#[derive(Debug)]
pub struct SplitJoin {
    router: RefCell<Router>,
    workers: Vec<JoinHandle<WorkerExit>>,
    collector: Option<JoinHandle<()>>,
    /// Shared deposit point the collector thread feeds and
    /// [`SplitJoin::drain_results`] harvests; `None` when counting-only.
    sink: Option<Arc<crate::collect::ResultSink>>,
    batch_size: usize,
    /// Which probe kernel the workers run — decides whether the outcome
    /// carries [`JoinOutcome::kernel_stats`].
    kernel: Kernel,
    /// Caller-side distribution buffer; drained on flush/shutdown so a
    /// partial batch is never lost.
    pending: RefCell<Vec<(StreamTag, Tuple)>>,
}

impl SplitJoin {
    /// Spawns the worker (and, unless counting-only, collector) threads.
    ///
    /// # Panics
    ///
    /// Panics if `config.channel_capacity` or `config.batch_size` is
    /// zero, or the fault plan targets a worker out of range (the
    /// builder methods reject these, but the fields are public).
    pub fn spawn(config: SplitJoinConfig) -> Self {
        config.common.validate();
        let transport = config.transport;
        let partitioned = config.partitioning == Partitioning::Hash;
        if partitioned {
            // Checked here rather than in `JoinConfig::validate` so a
            // process-wide `ACCEL_SW_PARTITIONING=hash` override does
            // not panic engines that ignore the knob (the handshake
            // chain validates the same shared config).
            assert!(
                config.predicate == JoinPredicate::Equi,
                "hash partitioning requires an equi-join predicate"
            );
            assert!(
                !config.replicate_on_loss,
                "replication is not supported with hash partitioning: orphan \
                 re-adoption would need out-of-order shard inserts; use broadcast mode"
            );
            assert!(config.hot_key_factor > 0.0, "hot-key factor must be positive");
        }

        // Result path: one shared MPSC channel (channel transport) or
        // one dedicated SPSC ring per worker (ring transport).
        let mut collector = None;
        let mut sink = None;
        let mut chan_results: Option<Sender<Vec<MatchPair>>> = None;
        let mut ring_results: Vec<Option<ResultsLane>> = Vec::new();
        if config.collect_results {
            let shared = Arc::new(crate::collect::ResultSink::default());
            match transport {
                Transport::Channel => {
                    let (tx, rx) = bounded::<Vec<MatchPair>>(1_024);
                    chan_results = Some(tx);
                    let dst = Arc::clone(&shared);
                    collector = Some(std::thread::spawn(move || collector_loop(&rx, &dst)));
                }
                Transport::Ring => {
                    let mut consumers = Vec::with_capacity(config.num_cores);
                    for _ in 0..config.num_cores {
                        let (tx, rx) = ring::spsc::<MatchPair>(RESULT_RING_CAPACITY);
                        ring_results.push(Some(ResultsLane::Ring(tx)));
                        consumers.push(rx);
                    }
                    let dst = Arc::clone(&shared);
                    collector =
                        Some(std::thread::spawn(move || ring_collector_loop(consumers, &dst)));
                }
            }
            sink = Some(shared);
        }

        // Distribution path. The arena holds `channel_capacity + 2`
        // batch slots: every batch a worker can have queued, plus the
        // one it is probing, plus the one being published — so arena
        // reuse only ever waits when a ring is itself saturated.
        let (arena, mut readers) = match transport {
            // Partitioned mode ships per-worker keyed sub-batches, not
            // broadcasts — the shared arena would be pure overhead, so
            // it is never created and recovery never retires readers.
            Transport::Ring if !partitioned => {
                let (writer, readers) = ring::batch_arena::<(StreamTag, Tuple)>(
                    config.channel_capacity + 2,
                    config.num_cores,
                );
                (Some(writer), readers.into_iter().map(Some).collect::<Vec<_>>())
            }
            _ => (None, Vec::new()),
        };

        let mut senders = Vec::with_capacity(config.num_cores);
        let mut cells = Vec::with_capacity(config.num_cores);
        let mut workers = Vec::with_capacity(config.num_cores);
        for position in 0..config.num_cores {
            let cell = Arc::new(WorkerCell::default());
            cells.push(Arc::clone(&cell));
            let results = match transport {
                Transport::Channel => chan_results.clone().map(ResultsLane::Channel),
                Transport::Ring => {
                    ring_results.get_mut(position).and_then(Option::take)
                }
            };
            let feed = match transport {
                Transport::Channel => {
                    let (tx, rx) = bounded::<Msg>(config.channel_capacity);
                    senders.push(Some(Lane::Channel(tx)));
                    WorkerFeed::Channel(rx)
                }
                Transport::Ring => {
                    let (tx, rx) = ring::spsc::<Msg>(config.channel_capacity);
                    senders.push(Some(Lane::Ring(tx)));
                    let reader = readers.get_mut(position).and_then(Option::take);
                    debug_assert_eq!(
                        reader.is_some(),
                        !partitioned,
                        "one arena reader per broadcast ring worker"
                    );
                    WorkerFeed::Ring(rx, reader)
                }
            };
            let cfg = config.clone();
            let live = obs::live::active().then(|| LiveWorker::new(position));
            workers.push(std::thread::spawn(move || {
                worker_loop(position, &cfg, feed, results, &cell, live)
            }));
        }
        drop(chan_results); // collector exits once every worker has stopped
        let ring_stats = (transport == Transport::Ring).then(RingStats::default);
        let replicas = config.replicate_on_loss.then(|| {
            let cap = config.effective_window();
            (ReplicaBuf::new(cap), ReplicaBuf::new(cap))
        });
        let ring = obs::trace::enabled().then(|| {
            obs::trace::TraceRing::new("sw.router".to_string(), obs::trace::TimeDomain::Wall)
        });
        let part = partitioned.then(|| PartRouter {
            window: config.effective_window() as u64,
            sketch: FreqSketch::new(SKETCH_CAPACITY),
            hot: HashMap::new(),
            hot_factor: config.hot_key_factor,
            min_sample: config.hot_min_sample,
            ledger_r: vec![VecDeque::new(); config.num_cores],
            ledger_s: vec![VecDeque::new(); config.num_cores],
            outbox: vec![Vec::new(); config.num_cores],
            hot_splits: 0,
            routed: 0,
        });
        Self {
            router: RefCell::new(Router {
                senders,
                cells,
                map: PartitionMap::identity(config.num_cores),
                plan: config.fault_plan.clone(),
                sub_window: config.sub_window(),
                batches_sent: 0,
                batch_hist: obs::Histogram::new(),
                r_sent: 0,
                s_sent: 0,
                owned: None,
                replicas,
                report: FaultReport::default(),
                ring,
                arena,
                ring_stats,
                flush_seq: 0,
                part,
                live: obs::live::active().then(|| LiveRouter::new(&config)),
            }),
            workers,
            collector,
            sink,
            batch_size: config.batch_size,
            kernel: config.kernel,
            pending: RefCell::new(Vec::with_capacity(config.batch_size)),
        }
    }

    /// Submits one tuple to the distribution network. The tuple is
    /// buffered; every `batch_size` tuples, one batch message is
    /// broadcast to all live join cores. Blocks (with supervision) when
    /// worker queues are full — natural back-pressure.
    ///
    /// # Errors
    ///
    /// [`JoinError::AllWorkersLost`] when no live worker remains;
    /// [`JoinError::Saturated`] when a worker's channel stays full with
    /// a frozen heartbeat past the supervision deadline. Losing *some*
    /// workers is not an error — the router re-partitions over the
    /// survivors and reports the damage in [`JoinOutcome::fault`].
    pub fn process(&self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError> {
        let mut pending = self.pending.borrow_mut();
        pending.push((tag, tuple));
        if pending.len() >= self.batch_size {
            let result = self.router.borrow_mut().send_batch(&pending);
            pending.clear();
            return result;
        }
        Ok(())
    }

    /// Broadcasts a pre-assembled batch as a single message per worker
    /// (after draining any partial [`SplitJoin::process`] buffer, so
    /// submission order is preserved).
    ///
    /// # Errors
    ///
    /// See [`SplitJoin::process`].
    pub fn process_batch(&self, batch: &[(StreamTag, Tuple)]) -> Result<(), JoinError> {
        self.drain_pending()?;
        self.router.borrow_mut().send_batch(batch)
    }

    fn drain_pending(&self) -> Result<(), JoinError> {
        let mut pending = self.pending.borrow_mut();
        if pending.is_empty() {
            return Ok(());
        }
        let result = self.router.borrow_mut().send_batch(&pending);
        pending.clear();
        result
    }

    /// Number of batch messages broadcast so far (per worker).
    pub fn batches_sent(&self) -> u64 {
        self.router.borrow().batches_sent
    }

    /// Loads `tuples` directly into the sliding windows without probing —
    /// measurement setup, mirroring the hardware pre-fill path. Drains
    /// the pending batch first so earlier `process` calls stay ordered.
    ///
    /// # Errors
    ///
    /// See [`SplitJoin::process`].
    pub fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) -> Result<(), JoinError> {
        self.drain_pending()?;
        self.router.borrow_mut().send_prefill(tag, tuples)
    }

    /// Blocks until every live worker has drained its queue and processed
    /// everything submitted before this call (including the partial
    /// batch, which is flushed first), and has handed any buffered
    /// results to the collector.
    ///
    /// # Errors
    ///
    /// See [`SplitJoin::process`]. A worker dying *during* the flush is
    /// recovered, not an error: the barrier then covers the survivors.
    pub fn flush(&self) -> Result<(), JoinError> {
        self.drain_pending()?;
        self.router.borrow_mut().flush()
    }

    /// Flushes, then removes and returns every match produced so far
    /// and not yet drained — see
    /// [`StreamJoin::drain_results`](crate::streamjoin::StreamJoin::drain_results).
    /// Counting-only runs return an empty vector.
    ///
    /// # Errors
    ///
    /// See [`SplitJoin::flush`]; additionally
    /// [`JoinError::DrainStalled`] if the collector fails to catch up
    /// with the workers' successful result handoffs.
    pub fn drain_results(&self) -> Result<Vec<MatchPair>, JoinError> {
        self.flush()?;
        let Some(sink) = &self.sink else { return Ok(Vec::new()) };
        // The flush barrier guarantees every live worker has handed its
        // buffered results to its lane; killed workers already accounted
        // their unflushed buffers as `results_dropped`, never as sent.
        // So the summed successful handoffs are exactly what must reach
        // the sink.
        let sent: u64 = {
            let router = self.router.borrow();
            router
                .cells
                .iter()
                .map(|c| c.results_sent.load(Ordering::Acquire))
                .sum()
        };
        sink.await_received(sent)?;
        Ok(sink.take())
    }

    /// Stops all threads and returns the accumulated outcome. Any
    /// buffered partial batch is drained first — workers never observe
    /// channel close with submitted-but-unsent tuples outstanding, so an
    /// explicit [`SplitJoin::flush`] before shutdown is not required for
    /// completeness.
    ///
    /// # Errors
    ///
    /// [`JoinError::WorkerPanicked`] if a worker thread panicked (with
    /// its last published statistics snapshot — the stats the
    /// pre-fault-model shutdown used to lose by re-panicking);
    /// [`JoinError::CollectorPanicked`] if the collector died. Workers
    /// lost to *scripted kills* exit cleanly and do not error: their
    /// damage is in [`JoinOutcome::fault`].
    pub fn shutdown(self) -> Result<JoinOutcome, JoinError> {
        // Best-effort drain: during shutdown a failed drain (e.g. every
        // worker already dead) degrades to dropping the buffered batch,
        // which the fault report already accounts as worker loss.
        let _ = self.drain_pending();
        let mut router = self.router.into_inner();
        for w in router.map.live().to_vec() {
            match router.senders[w].as_mut() {
                Some(Lane::Channel(tx)) => {
                    let _ = tx.send(Msg::Stop);
                }
                // Best effort: a full ring skips the Stop, and the
                // producer drop below closes the ring — the worker
                // drains what is queued and exits on disconnect, which
                // is the same exit path.
                Some(Lane::Ring(prod)) => {
                    let _ = prod.try_push(Msg::Stop);
                }
                None => {}
            }
        }
        router.senders.clear();
        let mut worker_stats = Vec::with_capacity(self.workers.len());
        let mut trace = Vec::new();
        let mut panicked: Option<usize> = None;
        let mut kernel_stats =
            (self.kernel == Kernel::Blocked).then(KernelStats::default);
        for (i, w) in self.workers.into_iter().enumerate() {
            match w.join() {
                Ok((stats, kstats, ring)) => {
                    worker_stats.push(stats);
                    if let Some(ks) = kernel_stats.as_mut() {
                        ks.merge(&kstats);
                    }
                    trace.extend(ring);
                }
                Err(_) => {
                    if panicked.is_none() {
                        panicked = Some(i);
                    }
                    worker_stats.push(router.cells[i].snapshot());
                }
            }
        }
        let collected = self.collector.map(|c| c.join());
        for cell in &router.cells {
            router.report.injected_stalls += cell.stalls.load(Ordering::Relaxed);
            router.report.injected_drops += cell.drops.load(Ordering::Relaxed);
            router.report.results_dropped += cell.results_dropped.load(Ordering::Relaxed);
        }
        if let Some(worker) = panicked {
            return Err(JoinError::WorkerPanicked {
                worker,
                stats_so_far: router.cells[worker].snapshot(),
            });
        }
        let (results, result_count) = match (collected, self.sink) {
            (Some(Ok(())), Some(sink)) => {
                // `results` holds only what no mid-run drain harvested;
                // the sink's running total is every match ever
                // collected, so the count survives draining.
                let count = sink.received();
                (sink.take(), count)
            }
            (Some(Err(_)), _) => return Err(JoinError::CollectorPanicked),
            // Counting-only: fold the per-worker match counters.
            _ => (Vec::new(), worker_stats.iter().map(|w| w.matches).sum()),
        };
        if let Some(ring) = router.ring.take() {
            if !ring.is_empty() {
                trace.push(ring);
            }
        }
        let partition_stats = router.part.take().map(|part| PartitionStats {
            occupancy: part
                .ledger_r
                .iter()
                .zip(&part.ledger_s)
                .map(|(r, s)| (r.len() + s.len()) as u64)
                .collect(),
            live: router.map.live().to_vec(),
            hot_splits: part.hot_splits,
            routed: part.routed,
        });
        Ok(JoinOutcome {
            results,
            result_count,
            worker_stats,
            batch_sizes: router.batch_hist,
            trace,
            fault: router.report,
            ring_stats: router.ring_stats.take(),
            partition_stats,
            kernel_stats,
        })
    }
}

impl crate::streamjoin::StreamJoin for SplitJoin {
    type Config = SplitJoinConfig;
    type Outcome = JoinOutcome;

    fn spawn(config: SplitJoinConfig) -> Self {
        SplitJoin::spawn(config)
    }
    fn process(&self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError> {
        SplitJoin::process(self, tag, tuple)
    }
    fn process_batch(&self, batch: &[(StreamTag, Tuple)]) -> Result<(), JoinError> {
        SplitJoin::process_batch(self, batch)
    }
    fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) -> Result<(), JoinError> {
        SplitJoin::prefill(self, tag, tuples)
    }
    fn flush(&self) -> Result<(), JoinError> {
        SplitJoin::flush(self)
    }
    fn drain_results(&self) -> Result<Vec<MatchPair>, JoinError> {
        SplitJoin::drain_results(self)
    }
    fn shutdown(self) -> Result<JoinOutcome, JoinError> {
        SplitJoin::shutdown(self)
    }
}

impl crate::streamjoin::JoinSummary for JoinOutcome {
    fn result_count(&self) -> u64 {
        self.result_count
    }
    fn results(&self) -> &[MatchPair] {
        &self.results
    }
    fn batch_sizes(&self) -> &obs::Histogram {
        &self.batch_sizes
    }
    fn trace(&self) -> &[obs::trace::TraceRing] {
        &self.trace
    }
    fn fault(&self) -> &FaultReport {
        &self.fault
    }
}

fn collector_loop(rx: &Receiver<Vec<MatchPair>>, sink: &crate::collect::ResultSink) {
    for chunk in rx.iter() {
        sink.deposit(chunk);
    }
}

/// Ring-transport result gathering: drains every worker's SPSC result
/// ring round-robin until all of them disconnect (their producers drop
/// when the workers exit). Each sweep's harvest is deposited into the
/// shared sink as one chunk, so a concurrent drain sees results land
/// in batches, not one at a time.
fn ring_collector_loop(mut rxs: Vec<RingConsumer<MatchPair>>, sink: &crate::collect::ResultSink) {
    let mut scratch = Vec::new();
    let mut spins = 0u32;
    loop {
        let mut drained = 0usize;
        let mut open = false;
        for rx in &mut rxs {
            match rx.pop_batch(&mut scratch, usize::MAX) {
                Ok(n) => {
                    drained += n;
                    open = true;
                }
                Err(PopError::Empty) => open = true,
                Err(PopError::Disconnected) => {}
            }
        }
        if drained > 0 {
            sink.deposit(std::mem::take(&mut scratch));
        }
        if !open {
            return;
        }
        if drained == 0 {
            if spins < 256 {
                spins += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        } else {
            spins = 0;
        }
    }
}

/// Worker-local sub-window storage, specialized per algorithm. Both
/// variants are flat ring buffers (see `streamcore::window`).
#[derive(Debug, Clone)]
enum SwWindow {
    Nested(FlatWindow),
    Hash(HashIndexWindow),
}

impl SwWindow {
    fn new(algorithm: SwJoinAlgorithm, capacity: usize) -> Self {
        match algorithm {
            SwJoinAlgorithm::NestedLoop => SwWindow::Nested(FlatWindow::new(capacity)),
            SwJoinAlgorithm::Hash => SwWindow::Hash(HashIndexWindow::new(capacity)),
        }
    }

    fn insert(&mut self, tuple: Tuple) {
        match self {
            SwWindow::Nested(w) => {
                w.insert(tuple);
            }
            SwWindow::Hash(w) => {
                w.insert(tuple);
            }
        }
    }
}

/// Worker-side state of the keyed dispatch: one key-sharded window per
/// stream, evicted by the router-stamped global sequence watermarks
/// (never local counts — that is what keeps the shard union exactly
/// equal to the broadcast window at every probe).
struct PartState {
    window_r: PartitionedWindow,
    window_s: PartitionedWindow,
    /// Effective global window size.
    horizon: u64,
}

/// One probe of the blocked batch path: the tuple plus the index spans
/// describing exactly which stored tuples were visible to it at its
/// position in the batch (the windows themselves are only mutated after
/// the whole batch is probed).
#[derive(Debug, Clone, Copy)]
struct BlockedProbe {
    tuple: Tuple,
    /// Opposite-side intra-batch stores made before this probe ran.
    j: u32,
    /// First snapshot index still in the ring when this probe ran
    /// (earlier entries were overwritten by intra-batch stores).
    sn_start: u32,
    /// First intra-batch store still in the ring when this probe ran.
    new_lo: u32,
}

/// Reused per-batch buffers of the blocked path. Arrays are indexed by
/// window side (`0` = R, `1` = S, see [`tag_side`]); capacity persists
/// across batches so steady state allocates nothing.
#[derive(Debug, Default)]
struct BlockedScratch {
    /// Oldest-first copy of each sub-window's keys.
    snap_keys: [Vec<u32>; 2],
    /// Payloads parallel to `snap_keys`; filled only when materializing.
    snap_pays: [Vec<u32>; 2],
    /// Tuples this worker stores into each window during the batch.
    news: [Vec<Tuple>; 2],
    /// Keys parallel to `news` — counting-mode corrections scan this
    /// contiguous slice instead of walking `news` pair by pair.
    news_keys: [Vec<u32>; 2],
    /// Probes against each window, in batch order.
    probes: [Vec<BlockedProbe>; 2],
    /// Keys parallel to `probes` — the contiguous slice the kernel scans.
    probe_keys: [Vec<u32>; 2],
}

/// Scratch-array index of a stream side (R = 0, S = 1).
fn tag_side(tag: StreamTag) -> usize {
    match tag {
        StreamTag::R => 0,
        StreamTag::S => 1,
    }
}

struct WorkerState {
    position: u64,
    n: u64,
    predicate: JoinPredicate,
    kernel: Kernel,
    window_r: SwWindow,
    window_s: SwWindow,
    r_count: u64,
    s_count: u64,
    stats: WorkerStats,
    kstats: KernelStats,
    /// Re-partitioned ownership after a sibling died; `None` means the
    /// original `count % n == position` discipline.
    map: Option<Arc<PartitionMap>>,
    /// Locally buffered matches awaiting a chunked send (empty when
    /// counting-only).
    out: Vec<MatchPair>,
    out_chunk: usize,
    /// Dropped (set to `None`) on the first failed send — a dead
    /// collector degrades result delivery, it doesn't kill the worker.
    results: Option<ResultsLane>,
    cell: Arc<WorkerCell>,
    /// Keyed-dispatch shards; `None` in broadcast mode.
    part: Option<PartState>,
    /// Blocked-kernel batch buffers; idle on the scalar kernel.
    scratch: BlockedScratch,
}

/// Hands one buffered chunk to the collector; a dead collector degrades
/// to counting (`results_dropped` accounting), it doesn't kill the
/// worker. Free function so the probe loop can call it while the
/// opposite window is borrowed.
fn send_result_chunk(
    results: &mut Option<ResultsLane>,
    cell: &WorkerCell,
    out: &mut Vec<MatchPair>,
) {
    let Some(lane) = results else { return };
    match lane {
        ResultsLane::Channel(tx) => {
            let chunk = std::mem::take(out);
            let n = chunk.len() as u64;
            if tx.send(chunk).is_err() {
                cell.results_dropped.fetch_add(n, Ordering::Relaxed);
                *results = None;
            } else {
                cell.results_sent.fetch_add(n, Ordering::Release);
            }
        }
        ResultsLane::Ring(tx) => {
            let mut sent = 0usize;
            let mut spins = 0u32;
            while sent < out.len() {
                match tx.push_batch(&out[sent..]) {
                    Ok(0) => {
                        // Collector back-pressure: wait for ring space.
                        if spins < 256 {
                            spins += 1;
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(IDLE_SLEEP);
                        }
                    }
                    Ok(n) => {
                        cell.results_sent.fetch_add(n as u64, Ordering::Release);
                        sent += n;
                        spins = 0;
                    }
                    Err(_) => {
                        cell.results_dropped
                            .fetch_add((out.len() - sent) as u64, Ordering::Relaxed);
                        *results = None;
                        break;
                    }
                }
            }
            out.clear();
        }
    }
}

impl WorkerState {
    /// One distribution batch. The blocked kernel applies only where it
    /// pays: nested-loop windows with enough probes to fill compare
    /// tiles ([`MIN_BLOCK_PROBES`]). Everything else — the scalar
    /// kernel, hash windows (whose chain walks are pointer-chasing, not
    /// scannable), undersized batches — runs the per-tuple path.
    fn handle_batch(&mut self, batch: &[(StreamTag, Tuple)]) {
        let nested = matches!(self.window_r, SwWindow::Nested(_));
        if self.kernel == Kernel::Blocked && nested {
            if batch.len() >= MIN_BLOCK_PROBES {
                self.handle_batch_blocked(batch);
                return;
            }
            self.kstats.scalar_fallbacks += batch.len() as u64;
        }
        for &(tag, tuple) in batch {
            self.handle_tuple(tag, tuple);
        }
    }

    /// The blocked probe path: snapshot both sub-windows once, probe the
    /// whole batch against the snapshots in cache-sized compare tiles
    /// ([`kernel::count_block`] / [`kernel::emit_block`]), then apply the
    /// deferred stores.
    ///
    /// Deferring stores is exact, not approximate. Per probe we record
    /// `j` — how many opposite-side tuples this worker had stored so far
    /// in the batch — so the window it *would* have seen is: snapshot
    /// entries `[sn_start..len)` plus intra-batch stores `[new_lo..j)`,
    /// where the two lower bounds come from the flat ring's overwrite
    /// rule (at most `capacity` newest entries survive). The kernel
    /// probes the full snapshot; per-probe scalar corrections subtract
    /// the evicted prefix and add the intra-batch span, reproducing the
    /// scalar path's `comparisons`/`matches`/`stored` bit for bit.
    fn handle_batch_blocked(&mut self, batch: &[(StreamTag, Tuple)]) {
        let materialize = self.results.is_some();
        let mut lens = [0usize; 2];
        let mut caps = [0usize; 2];
        {
            let WorkerState { window_r, window_s, scratch, .. } = self;
            for (side, w) in [(0, &*window_r), (1, &*window_s)] {
                let SwWindow::Nested(f) = w else {
                    unreachable!("blocked batch path requires nested-loop windows")
                };
                f.snapshot_into(
                    &mut scratch.snap_keys[side],
                    &mut scratch.snap_pays[side],
                    materialize,
                );
                lens[side] = f.len();
                caps[side] = f.capacity();
                scratch.news[side].clear();
                scratch.news_keys[side].clear();
                scratch.probes[side].clear();
                scratch.probe_keys[side].clear();
            }
        }
        self.stats.tuples_seen += batch.len() as u64;
        // Phase 1: walk the batch in arrival order, recording each
        // probe's visibility span and making the round-robin store
        // decision exactly as [`WorkerState::store`] would — but
        // deferring the inserts themselves.
        for &(tag, tuple) in batch {
            let side = tag_side(tag);
            let g = 1 - side; // the window this tuple probes
            let j = self.scratch.news[g].len();
            let (l, cap) = (lens[g], caps[g]);
            self.stats.comparisons += (l + j).min(cap) as u64;
            let start = (l + j).saturating_sub(cap);
            self.scratch.probes[g].push(BlockedProbe {
                tuple,
                j: j as u32,
                sn_start: start.min(l) as u32,
                new_lo: start.saturating_sub(l) as u32,
            });
            self.scratch.probe_keys[g].push(tuple.key());
            let count = match tag {
                StreamTag::R => &mut self.r_count,
                StreamTag::S => &mut self.s_count,
            };
            let turn = *count;
            *count += 1;
            let my_turn = match &self.map {
                None => turn % self.n == self.position,
                Some(map) => map.owner(turn) == self.position as usize,
            };
            if my_turn {
                self.stats.stored += 1;
                self.scratch.news[side].push(tuple);
                self.scratch.news_keys[side].push(tuple.key());
            }
        }
        // Phase 2: blocked probe per window, plus per-probe scalar
        // corrections (each correction is tallied as a fallback lane).
        let WorkerState {
            predicate,
            stats,
            kstats,
            out,
            out_chunk,
            results,
            cell,
            scratch,
            ..
        } = self;
        for g in 0..2 {
            let probes = &scratch.probes[g];
            if probes.is_empty() {
                continue;
            }
            // Probes against the S window (`g == 1`) carry R tuples.
            let probe_is_r = g == 1;
            let tag = if probe_is_r { StreamTag::R } else { StreamTag::S };
            let snap_keys = &scratch.snap_keys[g];
            let news = &scratch.news[g];
            if !materialize {
                let mut matched = kernel::count_block(
                    *predicate,
                    probe_is_r,
                    &scratch.probe_keys[g],
                    snap_keys,
                    kstats,
                );
                let news_keys = &scratch.news_keys[g];
                for p in probes {
                    let span = &news_keys[p.new_lo as usize..p.j as usize];
                    if p.sn_start > 0 || !span.is_empty() {
                        kstats.scalar_fallbacks += 1;
                    }
                    if p.sn_start > 0 {
                        matched -= predicate.count_matches(
                            p.tuple.key(),
                            probe_is_r,
                            &snap_keys[..p.sn_start as usize],
                        ) as u64;
                    }
                    // The intra-batch span is a contiguous key slice, so
                    // the correction vectorizes like a window sweep.
                    matched += predicate.count_matches(p.tuple.key(), probe_is_r, span) as u64;
                }
                stats.matches += matched;
            } else {
                let snap_pays = &scratch.snap_pays[g];
                kernel::emit_block(
                    *predicate,
                    probe_is_r,
                    &scratch.probe_keys[g],
                    snap_keys,
                    kstats,
                    |pi, ki| {
                        let p = &probes[pi];
                        if (ki as u32) < p.sn_start {
                            return;
                        }
                        stats.matches += 1;
                        if results.is_some() {
                            out.push(MatchPair::oriented(
                                tag,
                                p.tuple,
                                Tuple::new(snap_keys[ki], snap_pays[ki]),
                            ));
                            if out.len() >= *out_chunk {
                                send_result_chunk(results, cell, out);
                            }
                        }
                    },
                );
                for p in probes {
                    let span = &news[p.new_lo as usize..p.j as usize];
                    if p.sn_start > 0 || !span.is_empty() {
                        kstats.scalar_fallbacks += 1;
                    }
                    for t in span {
                        if predicate.matches_oriented(p.tuple.key(), probe_is_r, t.key()) {
                            stats.matches += 1;
                            if results.is_some() {
                                out.push(MatchPair::oriented(tag, p.tuple, *t));
                                if out.len() >= *out_chunk {
                                    send_result_chunk(results, cell, out);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Phase 3: the deferred stores, in arrival order per side (the
        // two windows are independent, so side-major application lands
        // the same final ring state as the interleaved scalar path).
        for side in 0..2 {
            let window = if side == 0 { &mut self.window_r } else { &mut self.window_s };
            for &t in &self.scratch.news[side] {
                window.insert(t);
            }
        }
    }

    fn handle_tuple(&mut self, tag: StreamTag, tuple: Tuple) {
        self.stats.tuples_seen += 1;
        // Probe the opposite sub-window. The nested-loop path scans the
        // contiguous key segments of the flat window and touches a
        // payload only when the key predicate holds. Disjoint field
        // borrows: the window stays shared while stats/out/results
        // mutate.
        let WorkerState {
            predicate,
            kernel,
            window_r,
            window_s,
            stats,
            kstats,
            out,
            out_chunk,
            results,
            cell,
            ..
        } = self;
        let opposite = match tag {
            StreamTag::R => &*window_s,
            StreamTag::S => &*window_r,
        };
        let probe_key = tuple.key();
        match opposite {
            SwWindow::Nested(w) => {
                if results.is_none() {
                    // Counting-only: no pair materialization, so each
                    // segment reduces to one predicate sweep over the
                    // contiguous key array that the compiler can
                    // vectorize (`count_matches` hoists the dispatch).
                    let probe_is_r = tag == StreamTag::R;
                    for (keys, _) in w.segments() {
                        stats.comparisons += keys.len() as u64;
                        stats.matches +=
                            predicate.count_matches(probe_key, probe_is_r, keys) as u64;
                    }
                } else {
                    for (keys, payloads) in w.segments() {
                        // One comparison per stored key, counted per
                        // segment so the scan itself stays branch-light.
                        stats.comparisons += keys.len() as u64;
                        for (i, &key) in keys.iter().enumerate() {
                            let key_match = match tag {
                                StreamTag::R => predicate.matches_keys(probe_key, key),
                                StreamTag::S => predicate.matches_keys(key, probe_key),
                            };
                            if key_match {
                                stats.matches += 1;
                                out.push(MatchPair::oriented(
                                    tag,
                                    tuple,
                                    Tuple::new(key, payloads[i]),
                                ));
                                if out.len() >= *out_chunk {
                                    send_result_chunk(results, cell, out);
                                }
                            }
                        }
                    }
                }
            }
            SwWindow::Hash(w) => {
                // The blocked kernel can't tile a hash chain walk, but it
                // hides the walk's latency: prefetch the next chain node
                // while evaluating the current one.
                let hits = if *kernel == Kernel::Blocked {
                    w.probe_prefetch(probe_key)
                } else {
                    w.probe(probe_key)
                };
                let mut matched = 0u64;
                for stored in hits {
                    stats.comparisons += 1;
                    stats.matches += 1;
                    matched += 1;
                    if results.is_some() {
                        out.push(MatchPair::oriented(tag, tuple, stored));
                        if out.len() >= *out_chunk {
                            send_result_chunk(results, cell, out);
                        }
                    }
                }
                if *kernel == Kernel::Blocked {
                    kstats.lanes += matched;
                    kstats.match_bits += matched;
                }
            }
        }
        self.store(tag, tuple, true);
    }

    /// One keyed-dispatch entry ([`Msg::Part`]): probe the opposite
    /// shard inside its eviction watermark, then store into the own
    /// shard when the router stamped this worker as the storage site.
    /// Probes are per-key chain walks (equi-join only), so comparisons
    /// equal matches, as in [`SwJoinAlgorithm::Hash`].
    fn handle_part_entry(&mut self, e: PartEntry) {
        if e.probe {
            // Prefill entries are uncounted, as in broadcast mode.
            self.stats.tuples_seen += 1;
        }
        // Disjoint field borrows, as in `handle_tuple`.
        let WorkerState { part, kernel, stats, kstats, out, out_chunk, results, cell, .. } = self;
        let ps = part.as_mut().expect("keyed dispatch needs shard state");
        let horizon = ps.horizon;
        let (own, opposite) = match e.tag {
            StreamTag::R => (&mut ps.window_r, &mut ps.window_s),
            StreamTag::S => (&mut ps.window_s, &mut ps.window_r),
        };
        if e.probe {
            opposite.evict_below(e.opp.saturating_sub(horizon));
            if *kernel == Kernel::Blocked && results.is_none() {
                // Keyed shards chain by exact key, so every chain entry
                // matches: counting-only probes collapse to the O(1)
                // chain length instead of walking it.
                let n = opposite.probe_len(e.tuple.key()) as u64;
                stats.comparisons += n;
                stats.matches += n;
                kstats.lanes += n;
                kstats.match_bits += n;
            } else {
                for stored in opposite.probe(e.tuple.key()) {
                    stats.comparisons += 1;
                    stats.matches += 1;
                    if results.is_some() {
                        out.push(MatchPair::oriented(e.tag, e.tuple, stored));
                        if out.len() >= *out_chunk {
                            send_result_chunk(results, cell, out);
                        }
                    }
                }
            }
        }
        if e.store {
            own.evict_below((e.seq + 1).saturating_sub(horizon));
            own.insert(e.seq, e.tuple);
            if e.probe {
                // Prefill stores are uncounted, as in broadcast mode.
                stats.stored += 1;
            }
        }
    }

    /// Round-robin storage without central coordination; after a
    /// reconfigure, the broadcast partition map replaces the modulo.
    fn store(&mut self, tag: StreamTag, tuple: Tuple, count_stat: bool) {
        let count = match tag {
            StreamTag::R => &mut self.r_count,
            StreamTag::S => &mut self.s_count,
        };
        let turn = *count;
        *count += 1;
        let my_turn = match &self.map {
            None => turn % self.n == self.position,
            Some(map) => map.owner(turn) == self.position as usize,
        };
        if my_turn {
            if count_stat {
                self.stats.stored += 1;
            }
            match tag {
                StreamTag::R => self.window_r.insert(tuple),
                StreamTag::S => self.window_s.insert(tuple),
            };
        }
    }

    /// Hands any buffered matches to the collector (barrier points and
    /// shutdown); degrades to counting on a dead collector.
    fn flush_results(&mut self) {
        if !self.out.is_empty() {
            send_result_chunk(&mut self.results, &self.cell, &mut self.out);
        }
    }

    /// Publishes the statistics snapshot and advances the heartbeat —
    /// once per processed message. With the live plane armed this also
    /// timestamps the beat, which the router exports as
    /// `splitjoin.worker.<i>.heartbeat_age_ns`.
    fn publish(&self) {
        self.cell.tuples_seen.store(self.stats.tuples_seen, Ordering::Relaxed);
        self.cell.stored.store(self.stats.stored, Ordering::Relaxed);
        self.cell.comparisons.store(self.stats.comparisons, Ordering::Relaxed);
        self.cell.matches.store(self.stats.matches, Ordering::Relaxed);
        self.cell.heartbeat.fetch_add(1, Ordering::Relaxed);
        self.cell.stamp_beat();
    }
}

/// What a scripted batch told the worker to do next.
enum BatchOutcome {
    Continue,
    /// Scripted kill: exit the thread abruptly.
    Kill,
}

/// One distribution batch through the fault script: stall, drop-or-
/// probe, scripted panic, scripted kill — shared verbatim by the
/// channel ([`Msg::Batch`]) and ring ([`Msg::ArenaBatch`]) paths so the
/// two transports keep bit-for-bit identical fault semantics.
fn run_scripted_batch(
    w: &mut WorkerState,
    plan: &FaultPlan,
    position: usize,
    batch_no: u64,
    batch: &[(StreamTag, Tuple)],
    ring: &mut Option<obs::trace::TraceRing>,
) -> BatchOutcome {
    let stall = plan.stall_ms(position, batch_no);
    if stall > 0 {
        w.cell.stalls.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(stall));
    }
    if plan.drops(position, batch_no) {
        // The batch is lost in transit: no probes, no stores, and this
        // worker's round-robin counters silently fall behind its
        // siblings' — deliberate corruption.
        w.cell.drops.fetch_add(1, Ordering::Relaxed);
    } else {
        let t0 = obs::trace::now_ns();
        w.handle_batch(batch);
        if let Some(r) = ring.as_mut() {
            let t1 = obs::trace::now_ns();
            r.record_arg("probe", t0, t1.saturating_sub(t0), batch.len() as u64);
        }
    }
    if plan.panics(position, batch_no) {
        w.publish();
        panic!("fault injection: worker {position} scripted panic at batch {batch_no}");
    }
    if plan.kills(position, batch_no) {
        // Abrupt exit: buffered un-flushed results die here.
        w.cell
            .results_dropped
            .fetch_add(w.out.len() as u64, Ordering::Relaxed);
        w.publish();
        return BatchOutcome::Kill;
    }
    BatchOutcome::Continue
}

/// [`run_scripted_batch`] for keyed-dispatch sub-batches
/// ([`Msg::Part`]): identical stall / drop-or-probe / panic / kill
/// script hooks, keyed on this worker's own received-message count
/// (which, unlike broadcast mode, can lag the router's batch count —
/// a worker only gets a message when a key routes to it).
fn run_scripted_part_batch(
    w: &mut WorkerState,
    plan: &FaultPlan,
    position: usize,
    batch_no: u64,
    entries: &[PartEntry],
    ring: &mut Option<obs::trace::TraceRing>,
) -> BatchOutcome {
    let stall = plan.stall_ms(position, batch_no);
    if stall > 0 {
        w.cell.stalls.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(stall));
    }
    if plan.drops(position, batch_no) {
        w.cell.drops.fetch_add(1, Ordering::Relaxed);
    } else {
        let t0 = obs::trace::now_ns();
        for &e in entries {
            w.handle_part_entry(e);
        }
        if let Some(r) = ring.as_mut() {
            let t1 = obs::trace::now_ns();
            r.record_arg("probe", t0, t1.saturating_sub(t0), entries.len() as u64);
        }
    }
    if plan.panics(position, batch_no) {
        w.publish();
        panic!("fault injection: worker {position} scripted panic at batch {batch_no}");
    }
    if plan.kills(position, batch_no) {
        w.cell
            .results_dropped
            .fetch_add(w.out.len() as u64, Ordering::Relaxed);
        w.publish();
        return BatchOutcome::Kill;
    }
    BatchOutcome::Continue
}

fn worker_loop(
    position: usize,
    config: &SplitJoinConfig,
    mut feed: WorkerFeed,
    results: Option<ResultsLane>,
    cell: &Arc<WorkerCell>,
    mut live: Option<LiveWorker>,
) -> WorkerExit {
    let _guard = AliveGuard(Arc::clone(cell));
    if config.pin_workers {
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        // Best effort: a refused pin just runs unpinned.
        let _ = streamcore::affinity::pin_to_core(position % cpus);
    }
    let partitioned = config.partitioning == Partitioning::Hash;
    // Partitioned mode never touches the round-robin windows; capacity
    // 1 keeps their allocation negligible without a zero-capacity edge.
    let sub = if partitioned { 1 } else { config.sub_window() };
    let plan = &config.fault_plan;
    let mut w = WorkerState {
        position: position as u64,
        n: config.num_cores as u64,
        predicate: config.predicate,
        kernel: config.kernel,
        window_r: SwWindow::new(config.algorithm, sub),
        window_s: SwWindow::new(config.algorithm, sub),
        r_count: 0,
        s_count: 0,
        stats: WorkerStats::default(),
        kstats: KernelStats::default(),
        map: None,
        out: Vec::new(),
        out_chunk: config.batch_size.max(1),
        results,
        cell: Arc::clone(cell),
        part: partitioned.then(|| PartState {
            window_r: PartitionedWindow::new(),
            window_s: PartitionedWindow::new(),
            horizon: config.effective_window() as u64,
        }),
        scratch: BlockedScratch::default(),
    };

    let mut ring = obs::trace::enabled().then(|| {
        obs::trace::TraceRing::new(
            format!("sw.worker.{position}"),
            obs::trace::TimeDomain::Wall,
        )
    });
    let mut idle_since = obs::trace::now_ns();
    let mut batch_no: u64 = 0;

    loop {
        // With the live plane armed, time spent blocked in `recv` is
        // exported as `.wait_ns` and the rest of the iteration as
        // `.busy_ns`; unarmed, neither clock is read.
        let wait_start = live.as_ref().map(|_| obs::trace::now_ns());
        let Some(msg) = feed.recv() else { break };
        let busy_start = wait_start.map(|t0| {
            let now = obs::trace::now_ns();
            if let Some(lv) = live.as_ref() {
                lv.wait_ns.add(now.saturating_sub(t0));
            }
            now
        });
        if let Some(r) = ring.as_mut() {
            let t = obs::trace::now_ns();
            r.record("recv", idle_since, t.saturating_sub(idle_since));
        }
        match msg {
            Msg::Batch(batch) => {
                batch_no += 1;
                if let BatchOutcome::Kill =
                    run_scripted_batch(&mut w, plan, position, batch_no, &batch, &mut ring)
                {
                    return (w.stats, w.kstats, ring);
                }
            }
            Msg::ArenaBatch { seq } => {
                batch_no += 1;
                // Probe the arena slot in place; release it only after
                // the whole batch is processed (a scripted panic unwinds
                // without releasing — recovery then waits for this
                // thread to die before retiring the reader).
                let reader = feed.arena_reader();
                let outcome =
                    run_scripted_batch(&mut w, plan, position, batch_no, reader.read(seq), &mut ring);
                reader.release(seq);
                if let BatchOutcome::Kill = outcome {
                    return (w.stats, w.kstats, ring);
                }
            }
            Msg::Part(entries) => {
                batch_no += 1;
                if let BatchOutcome::Kill =
                    run_scripted_part_batch(&mut w, plan, position, batch_no, &entries, &mut ring)
                {
                    return (w.stats, w.kstats, ring);
                }
            }
            Msg::Prefill(tag, tuples) => {
                // Same round-robin discipline, no probing.
                let t0 = obs::trace::now_ns();
                for &t in tuples.iter() {
                    w.store(tag, t, false);
                }
                if let Some(r) = ring.as_mut() {
                    let t1 = obs::trace::now_ns();
                    r.record_arg("insert", t0, t1.saturating_sub(t0), tuples.len() as u64);
                }
            }
            Msg::Adopt(tag, tuples) => {
                // A dead sibling's orphans, re-homed here: straight into
                // our own window, no probing, no counter advance.
                for &t in tuples.iter() {
                    match tag {
                        StreamTag::R => w.window_r.insert(t),
                        StreamTag::S => w.window_s.insert(t),
                    }
                }
                w.cell.adopted.fetch_add(tuples.len() as u64, Ordering::Relaxed);
            }
            Msg::Reconfigure(map) => {
                w.map = Some(map);
            }
            Msg::Flush(token) => {
                let t0 = obs::trace::now_ns();
                w.flush_results();
                if let Some(r) = ring.as_mut() {
                    let t1 = obs::trace::now_ns();
                    r.record("send", t0, t1.saturating_sub(t0));
                }
                match token {
                    FlushToken::Ack(ack) => {
                        let _ = ack.send(());
                    }
                    // Release pairs with the router's Acquire poll: the
                    // token becomes visible only after the result flush
                    // above.
                    FlushToken::Seq(seq) => w.cell.flushed.store(seq, Ordering::Release),
                }
            }
            Msg::Stop => break,
        }
        if let (Some(lv), Some(t0)) = (live.as_mut(), busy_start) {
            lv.after_msg(&w.stats, t0);
        }
        w.publish();
        idle_since = obs::trace::now_ns();
    }
    w.flush_results();
    w.publish();
    (w.stats, w.kstats, ring)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::reference_join;
    use crate::fault::FaultEvent;
    use std::collections::HashMap;
    use streamcore::workload::{KeyDist, WorkloadSpec};

    fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
        let mut m = HashMap::new();
        for p in results {
            *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
        }
        m
    }

    fn run_workload(config: SplitJoinConfig, inputs: &[(StreamTag, Tuple)]) -> JoinOutcome {
        let join = SplitJoin::spawn(config);
        for &(tag, t) in inputs {
            join.process(tag, t).unwrap();
        }
        join.flush().unwrap();
        join.shutdown().unwrap()
    }

    #[test]
    fn matches_reference_exactly() {
        let inputs: Vec<_> = WorkloadSpec::new(500, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        // Core counts dividing the window: the effective window equals the
        // nominal one (see `effective_window`).
        for cores in [1usize, 2, 4, 8] {
            let outcome = run_workload(SplitJoinConfig::new(cores, 64), &inputs);
            let want = reference_join(&inputs, 64, JoinPredicate::Equi);
            assert_eq!(
                as_multiset(&outcome.results),
                as_multiset(&want),
                "mismatch with {cores} cores"
            );
            assert!(!want.is_empty());
            assert!(!outcome.fault.degraded(), "healthy run must not degrade");
        }
    }

    #[test]
    fn every_batch_size_yields_identical_results() {
        let inputs: Vec<_> = WorkloadSpec::new(700, KeyDist::Uniform { domain: 12 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 48, JoinPredicate::Equi));
        assert!(!want.is_empty());
        for batch in [1usize, 2, 7, 64, 256, 4_096] {
            let outcome = run_workload(
                SplitJoinConfig::new(3, 48).with_batch_size(batch),
                &inputs,
            );
            assert_eq!(
                as_multiset(&outcome.results),
                want,
                "mismatch at batch size {batch}"
            );
        }
    }

    #[test]
    fn shutdown_drains_partial_batches() {
        // Regression: with `batch_size` larger than the whole stream, no
        // batch is ever full — shutdown (without an explicit flush) must
        // still deliver every buffered tuple before workers see channel
        // close.
        let inputs: Vec<_> = WorkloadSpec::new(40, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let want = reference_join(&inputs, 16, JoinPredicate::Equi);
        assert!(!want.is_empty());
        let join = SplitJoin::spawn(SplitJoinConfig::new(2, 16).with_batch_size(1_024));
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        let outcome = join.shutdown().unwrap(); // no flush
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
        assert_eq!(outcome.batch_sizes.total(), 1, "one partial batch");
        assert_eq!(outcome.batch_sizes.max(), Some(40));
    }

    #[test]
    fn uneven_core_count_rounds_the_window_up() {
        let config = SplitJoinConfig::new(7, 64);
        assert_eq!(config.sub_window(), 10);
        assert_eq!(config.effective_window(), 70);
        // Against a reference with the *effective* window, results match.
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let outcome = run_workload(config, &inputs);
        let want = reference_join(&inputs, 70, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn batch_processing_matches_per_tuple_processing() {
        let inputs: Vec<_> = WorkloadSpec::new(300, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let per_tuple = run_workload(
            SplitJoinConfig::new(4, 32).with_batch_size(1),
            &inputs,
        );
        let join = SplitJoin::spawn(SplitJoinConfig::new(4, 32));
        for chunk in inputs.chunks(37) {
            join.process_batch(chunk).unwrap();
        }
        join.flush().unwrap();
        let batched = join.shutdown().unwrap();
        assert_eq!(
            as_multiset(&batched.results),
            as_multiset(&per_tuple.results)
        );
    }

    #[test]
    fn matches_reference_with_expiry() {
        let inputs: Vec<_> = WorkloadSpec::new(2_000, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let outcome = run_workload(SplitJoinConfig::new(4, 32), &inputs);
        let want = reference_join(&inputs, 32, JoinPredicate::Equi);
        assert_eq!(as_multiset(&outcome.results), as_multiset(&want));
    }

    #[test]
    fn every_worker_sees_every_tuple_but_stores_its_share() {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 1 << 20 })
            .generate()
            .collect();
        let outcome = run_workload(SplitJoinConfig::new(4, 80), &inputs);
        for (i, ws) in outcome.worker_stats.iter().enumerate() {
            assert_eq!(ws.tuples_seen, 400, "worker {i}");
            assert_eq!(ws.stored, 100, "worker {i}");
        }
    }

    #[test]
    fn prefill_skips_probing_but_keeps_rotation() {
        let config = SplitJoinConfig::new(2, 8);
        let join = SplitJoin::spawn(config);
        let fill: Vec<Tuple> = (0..4u32).map(|i| Tuple::new(i, i)).collect();
        join.prefill(StreamTag::S, &fill).unwrap();
        // Probe matches exactly one prefilled tuple.
        join.process(StreamTag::R, Tuple::new(2, 99)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 1);
        let total_comparisons: u64 =
            outcome.worker_stats.iter().map(|w| w.comparisons).sum();
        assert_eq!(total_comparisons, 4, "prefill must not probe");
    }

    #[test]
    fn counting_only_discards_results() {
        let config = SplitJoinConfig::new(2, 16).counting_only();
        let join = SplitJoin::spawn(config);
        join.process(StreamTag::S, Tuple::new(1, 0)).unwrap();
        join.process(StreamTag::R, Tuple::new(1, 1)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 1);
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn counting_only_agrees_with_collection_at_every_batch_size() {
        let inputs: Vec<_> = WorkloadSpec::new(900, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let collected = run_workload(SplitJoinConfig::new(3, 24), &inputs);
        for batch in [1usize, 5, 256] {
            let counted = run_workload(
                SplitJoinConfig::new(3, 24).with_batch_size(batch).counting_only(),
                &inputs,
            );
            assert_eq!(counted.result_count, collected.result_count);
            assert!(counted.results.is_empty());
        }
    }

    #[test]
    fn band_predicate_propagates_to_workers() {
        let config =
            SplitJoinConfig::new(3, 9).with_predicate(JoinPredicate::Band { delta: 5 });
        let join = SplitJoin::spawn(config);
        join.process(StreamTag::S, Tuple::new(100, 0)).unwrap();
        join.process(StreamTag::R, Tuple::new(104, 1)).unwrap();
        join.process(StreamTag::R, Tuple::new(106, 2)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 1);
    }

    #[test]
    fn hash_algorithm_matches_nested_loop_exactly() {
        let inputs: Vec<_> = WorkloadSpec::new(800, KeyDist::Uniform { domain: 12 })
            .generate()
            .collect();
        let nested = run_workload(SplitJoinConfig::new(4, 32), &inputs);
        let hashed = run_workload(
            SplitJoinConfig::new(4, 32).with_algorithm(SwJoinAlgorithm::Hash),
            &inputs,
        );
        assert_eq!(
            as_multiset(&hashed.results),
            as_multiset(&nested.results)
        );
        // Hash workers compare only matching tuples.
        let nested_cmp: u64 = nested.worker_stats.iter().map(|w| w.comparisons).sum();
        let hashed_cmp: u64 = hashed.worker_stats.iter().map(|w| w.comparisons).sum();
        let matches: u64 = hashed.worker_stats.iter().map(|w| w.matches).sum();
        assert_eq!(hashed_cmp, matches);
        assert!(nested_cmp > 2 * hashed_cmp);
    }

    #[test]
    #[should_panic(expected = "hash join requires an equi-join")]
    fn hash_with_band_predicate_is_rejected() {
        let _ = SplitJoinConfig::new(2, 8)
            .with_predicate(JoinPredicate::Band { delta: 2 })
            .with_algorithm(SwJoinAlgorithm::Hash);
    }

    #[test]
    #[should_panic(expected = "channel capacity must be positive")]
    fn zero_channel_capacity_is_rejected() {
        let _ = SplitJoinConfig::new(2, 8).with_channel_capacity(0);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_is_rejected() {
        let _ = SplitJoinConfig::new(2, 8).with_batch_size(0);
    }

    #[test]
    #[should_panic(expected = "channel capacity must be positive")]
    fn spawn_validates_direct_field_writes() {
        let mut config = SplitJoinConfig::new(2, 8);
        config.channel_capacity = 0;
        let _ = SplitJoin::spawn(config);
    }

    #[test]
    #[should_panic(expected = "targets worker 9")]
    fn spawn_validates_fault_plan_targets() {
        let mut config = SplitJoinConfig::new(2, 8);
        config.common.fault_plan =
            crate::fault::FaultPlan::parse("kill9").unwrap();
        let _ = SplitJoin::spawn(config);
    }

    #[test]
    fn flush_is_a_real_barrier() {
        let config = SplitJoinConfig::new(4, 4_096);
        let join = SplitJoin::spawn(config);
        let fill: Vec<Tuple> = (0..4_096u32).map(|i| Tuple::new(i, i)).collect();
        join.prefill(StreamTag::S, &fill).unwrap();
        for i in 0..64u32 {
            join.process(StreamTag::R, Tuple::new(i, 1 << 20 | i)).unwrap();
        }
        join.flush().unwrap();
        // After flush all probes are done: every R probed its key once.
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 64);
    }

    #[test]
    fn batch_histogram_records_distribution_shape() {
        let join = SplitJoin::spawn(SplitJoinConfig::new(2, 8).with_batch_size(4));
        for i in 0..10u32 {
            join.process(StreamTag::R, Tuple::new(i, i)).unwrap();
        }
        join.flush().unwrap(); // two full batches of 4, one partial of 2
        assert_eq!(join.batches_sent(), 3);
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.batch_sizes.total(), 3);
        assert_eq!(outcome.batch_sizes.max(), Some(4));
        assert_eq!(outcome.batch_sizes.min(), Some(2));
        let reg = outcome.registry();
        assert_eq!(reg.get("splitjoin.batches"), Some(3));
        assert!(reg.get("splitjoin.worker0.probes").is_some());
        // Healthy run: the fault namespace must be absent.
        assert_eq!(reg.get("fault.workers_lost"), None);
    }

    #[test]
    fn fallible_surface_round_trips_a_match() {
        let join = SplitJoin::spawn(SplitJoinConfig::new(2, 8));
        join.process(StreamTag::S, Tuple::new(3, 0)).unwrap();
        join.process(StreamTag::R, Tuple::new(3, 1)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 1);
    }

    /// The per-worker stat fields that must be bit-identical across
    /// kernels, folded over all workers.
    fn folded_stats(outcome: &JoinOutcome) -> [u64; 4] {
        let mut t = [0u64; 4];
        for w in &outcome.worker_stats {
            t[0] += w.tuples_seen;
            t[1] += w.stored;
            t[2] += w.comparisons;
            t[3] += w.matches;
        }
        t
    }

    #[test]
    fn blocked_kernel_is_bit_identical_to_scalar() {
        let inputs: Vec<_> = WorkloadSpec::new(900, KeyDist::Uniform { domain: 24 })
            .generate()
            .collect();
        for pred in [
            JoinPredicate::Equi,
            JoinPredicate::Band { delta: 3 },
            JoinPredicate::LessThan,
            JoinPredicate::All,
        ] {
            for batch in [8usize, 64, 256] {
                let mk = |kernel| {
                    SplitJoinConfig::new(3, 48)
                        .with_predicate(pred)
                        .with_batch_size(batch)
                        .with_kernel(kernel)
                };
                let scalar = run_workload(mk(Kernel::Scalar), &inputs);
                let blocked = run_workload(mk(Kernel::Blocked), &inputs);
                assert_eq!(
                    as_multiset(&scalar.results),
                    as_multiset(&blocked.results),
                    "result mismatch: {pred:?} batch {batch}"
                );
                assert_eq!(
                    folded_stats(&scalar),
                    folded_stats(&blocked),
                    "stat mismatch: {pred:?} batch {batch}"
                );
                assert!(scalar.kernel_stats.is_none());
                let ks = blocked.kernel_stats.expect("blocked runs carry kernel stats");
                if batch >= MIN_BLOCK_PROBES && pred != JoinPredicate::All {
                    assert!(ks.tiles > 0, "{pred:?} batch {batch} never tiled");
                }
            }
        }
    }

    #[test]
    fn blocked_kernel_survives_intra_batch_window_wrap() {
        // Window far smaller than the batch: most probes see snapshot
        // entries evicted mid-batch plus freshly stored siblings, so the
        // correction spans do all the work.
        let inputs: Vec<_> = WorkloadSpec::new(800, KeyDist::Uniform { domain: 6 })
            .generate()
            .collect();
        for cores in [1usize, 2, 3] {
            let mk = |kernel| {
                SplitJoinConfig::new(cores, 8).with_batch_size(512).with_kernel(kernel)
            };
            let scalar = run_workload(mk(Kernel::Scalar), &inputs);
            let blocked = run_workload(mk(Kernel::Blocked), &inputs);
            assert_eq!(as_multiset(&scalar.results), as_multiset(&blocked.results));
            assert_eq!(folded_stats(&scalar), folded_stats(&blocked), "{cores} cores");
            let want =
                reference_join(&inputs, mk(Kernel::Blocked).effective_window(), JoinPredicate::Equi);
            assert_eq!(as_multiset(&blocked.results), as_multiset(&want));
            assert!(
                blocked.kernel_stats.unwrap().scalar_fallbacks > 0,
                "wrap corrections must be accounted"
            );
        }
    }

    #[test]
    fn blocked_counting_matches_scalar_counting() {
        let inputs: Vec<_> = WorkloadSpec::new(1_000, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let mk = |kernel| {
            SplitJoinConfig::new(3, 24).with_batch_size(128).with_kernel(kernel).counting_only()
        };
        let scalar = run_workload(mk(Kernel::Scalar), &inputs);
        let blocked = run_workload(mk(Kernel::Blocked), &inputs);
        assert_eq!(scalar.result_count, blocked.result_count);
        assert_eq!(folded_stats(&scalar), folded_stats(&blocked));
        let ks = blocked.kernel_stats.unwrap();
        assert!(ks.tiles > 0 && ks.lanes > 0);
    }

    #[test]
    fn blocked_hash_algorithm_agrees_with_scalar() {
        // Hash windows take the prefetched chain walk, not the tiles:
        // identical results, zero tiles, lanes mirroring the hits.
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 12 })
            .generate()
            .collect();
        let mk = |kernel| {
            SplitJoinConfig::new(2, 32)
                .with_algorithm(SwJoinAlgorithm::Hash)
                .with_batch_size(64)
                .with_kernel(kernel)
        };
        let scalar = run_workload(mk(Kernel::Scalar), &inputs);
        let blocked = run_workload(mk(Kernel::Blocked), &inputs);
        assert_eq!(as_multiset(&scalar.results), as_multiset(&blocked.results));
        assert_eq!(folded_stats(&scalar), folded_stats(&blocked));
        let ks = blocked.kernel_stats.unwrap();
        assert_eq!(ks.tiles, 0, "hash probing never tiles");
        assert_eq!(ks.lanes, folded_stats(&blocked)[3], "one lane per chain hit");
    }

    #[test]
    fn kernel_stats_surface_in_registry() {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let blocked = run_workload(
            SplitJoinConfig::new(2, 16).with_batch_size(64).with_kernel(Kernel::Blocked),
            &inputs,
        );
        let reg = blocked.registry();
        assert!(reg.get("splitjoin.kernel.tiles").is_some());
        assert!(reg.get("splitjoin.kernel.lanes").is_some());
        assert!(reg.get("splitjoin.kernel.match_density_x1000").is_some());
        assert!(reg.get("splitjoin.kernel.scalar_fallbacks").is_some());
        let scalar = run_workload(
            SplitJoinConfig::new(2, 16).with_batch_size(64).with_kernel(Kernel::Scalar),
            &inputs,
        );
        assert_eq!(scalar.registry().get("splitjoin.kernel.tiles"), None);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn tracing_records_worker_spans_without_changing_results() {
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let prefill: Vec<Tuple> = (0..32u32).map(|i| Tuple::new(i, i)).collect();
        let config = || SplitJoinConfig::new(3, 64).with_batch_size(32);

        let run = |traced: bool| {
            if traced {
                obs::trace::enable(1);
            }
            let join = SplitJoin::spawn(config());
            join.prefill(StreamTag::S, &prefill).unwrap();
            for &(tag, t) in &inputs {
                join.process(tag, t).unwrap();
            }
            join.flush().unwrap();
            let outcome = join.shutdown().unwrap();
            if traced {
                obs::trace::disable();
            }
            outcome
        };

        let plain = run(false);
        assert!(plain.trace.is_empty());
        let traced = run(true);

        assert_eq!(as_multiset(&plain.results), as_multiset(&traced.results));
        assert_eq!(plain.worker_stats, traced.worker_stats);

        // Healthy run: the router ring stays empty and is not attached.
        assert_eq!(traced.trace.len(), 3);
        let mut tracks: Vec<_> = traced.trace.iter().map(|r| r.track().to_string()).collect();
        tracks.sort();
        assert_eq!(tracks, ["sw.worker.0", "sw.worker.1", "sw.worker.2"]);
        for ring in &traced.trace {
            assert_eq!(ring.domain(), obs::trace::TimeDomain::Wall);
            assert!(!ring.is_empty(), "worker ring {} is empty", ring.track());
            let names: HashMap<&str, u32> =
                ring.events().iter().fold(HashMap::new(), |mut m, e| {
                    *m.entry(e.name).or_insert(0) += 1;
                    m
                });
            for name in names.keys() {
                assert!(
                    ["recv", "probe", "insert", "send"].contains(name),
                    "unexpected span name {name}"
                );
            }
            assert!(names.contains_key("probe"), "no probe spans on {}", ring.track());
            assert!(names.contains_key("insert"), "no insert spans on {}", ring.track());
        }
    }

    // ---- partitioned (keyed) dispatch ----

    fn part_config(cores: usize, window: usize) -> SplitJoinConfig {
        SplitJoinConfig::new(cores, window).with_partitioning(Partitioning::Hash)
    }

    #[test]
    fn partitioned_blocked_counting_matches_scalar() {
        // Keyed dispatch + blocked + counting-only takes the O(1)
        // chain-length shortcut; the tallies must not move.
        let inputs: Vec<_> = WorkloadSpec::new(800, KeyDist::Zipf { domain: 64, s: 1.2 })
            .generate()
            .collect();
        let mk = |kernel| part_config(4, 32).with_kernel(kernel).counting_only();
        let scalar = run_workload(mk(Kernel::Scalar), &inputs);
        let blocked = run_workload(mk(Kernel::Blocked), &inputs);
        assert_eq!(scalar.result_count, blocked.result_count);
        assert_eq!(folded_stats(&scalar), folded_stats(&blocked));
        let ks = blocked.kernel_stats.unwrap();
        assert_eq!(ks.tiles, 0, "keyed dispatch never tiles");
        assert_eq!(ks.lanes, blocked.result_count, "one lane per chain entry");
    }

    #[test]
    fn partitioned_matches_reference_exactly() {
        let inputs: Vec<_> = WorkloadSpec::new(500, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 64, JoinPredicate::Equi));
        assert!(!want.is_empty());
        for cores in [1usize, 2, 4, 8] {
            let outcome = run_workload(part_config(cores, 64), &inputs);
            assert_eq!(
                as_multiset(&outcome.results),
                want,
                "partitioned mismatch with {cores} cores"
            );
            assert!(!outcome.fault.degraded(), "healthy run must not degrade");
            let ps = outcome.partition_stats.expect("partitioned runs carry stats");
            assert_eq!(ps.live.len(), cores);
            // Steady state: the shards together hold exactly one window
            // per stream (the streams alternate, 250 tuples each > 64).
            assert_eq!(ps.occupancy.iter().sum::<u64>(), 128);
        }
    }

    #[test]
    fn partitioned_matches_broadcast_on_both_transports() {
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Zipf { domain: 12, s: 0.8 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 48, JoinPredicate::Equi));
        assert!(!want.is_empty());
        for transport in [Transport::Channel, Transport::Ring] {
            let outcome =
                run_workload(part_config(3, 48).with_transport(transport), &inputs);
            assert_eq!(
                as_multiset(&outcome.results),
                want,
                "partitioned mismatch on {transport:?}"
            );
        }
    }

    #[test]
    fn partitioned_hot_split_keeps_results_and_rebalances() {
        // Heavy skew on a tiny domain: key 0 takes ~45% of the traffic.
        // With the sample floor lowered the router must split it, and
        // splitting must not change the result multiset.
        let inputs: Vec<_> = WorkloadSpec::new(4_000, KeyDist::Zipf { domain: 8, s: 1.2 })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, 64, JoinPredicate::Equi));
        let split = run_workload(part_config(4, 64).with_hot_sample(64), &inputs);
        let nosplit =
            run_workload(part_config(4, 64).with_hot_key_factor(1e9), &inputs);
        assert_eq!(as_multiset(&split.results), want, "hot-split broke the join");
        assert_eq!(as_multiset(&nosplit.results), want, "nosplit broke the join");
        let split_stats = split.partition_stats.unwrap();
        let nosplit_stats = nosplit.partition_stats.unwrap();
        assert!(split_stats.hot_splits >= 1, "skewed run must promote a key");
        assert_eq!(nosplit_stats.hot_splits, 0);
        assert!(
            split_stats.balance() < nosplit_stats.balance(),
            "splitting must improve occupancy balance: split {:.2} vs nosplit {:.2}",
            split_stats.balance(),
            nosplit_stats.balance()
        );
    }

    #[test]
    fn partitioned_counting_only_agrees_with_collected() {
        let inputs: Vec<_> = WorkloadSpec::new(800, KeyDist::Zipf { domain: 10, s: 1.0 })
            .generate()
            .collect();
        let collected = run_workload(part_config(4, 32), &inputs);
        let counted = run_workload(part_config(4, 32).counting_only(), &inputs);
        assert!(collected.result_count > 0);
        assert_eq!(counted.result_count, collected.result_count);
        assert!(counted.results.is_empty());
    }

    #[test]
    fn partitioned_prefill_loads_without_probing() {
        let join = SplitJoin::spawn(part_config(2, 16));
        let warm: Vec<Tuple> = (0..8).map(|k| Tuple::new(k, 100 + u32::from(k as u8))).collect();
        join.prefill(StreamTag::S, &warm).unwrap();
        // One probe against the warmed S shard: exactly one match, and
        // the prefill itself produced none.
        join.process(StreamTag::R, Tuple::new(3, 7)).unwrap();
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        assert_eq!(outcome.result_count, 1);
        assert_eq!(outcome.results[0].r.raw(), Tuple::new(3, 7).raw());
        // Keyed probes only touch the matching chain: comparisons ==
        // matches, like the hash algorithm.
        let comparisons: u64 = outcome.worker_stats.iter().map(|w| w.comparisons).sum();
        assert_eq!(comparisons, 1);
    }

    #[test]
    fn partitioned_kill_is_recovered_with_exact_orphans() {
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let victim = 1usize;
        let config = part_config(4, 64)
            .with_batch_size(50)
            .with_fault_plan(FaultPlan::none().with(FaultEvent::Kill {
                worker: victim,
                after_batch: 4,
            }));
        let outcome = run_workload(config, &inputs);
        assert!(outcome.fault.degraded());
        assert_eq!(outcome.fault.workers_lost, vec![victim]);
        // The victim owned a share of a full two-stream window when it
        // died (4 batches of 50 ≫ 2×64 window).
        assert!(outcome.fault.orphaned_tuples > 0);
        assert!(outcome.fault.orphaned_tuples <= 128);
        let ps = outcome.partition_stats.unwrap();
        assert!(!ps.live.contains(&victim));
        assert_eq!(ps.occupancy[victim], 0, "retired ledger must be cleared");
        // Results from the healthy run form a superset: losing a shard
        // only ever loses matches.
        let healthy = run_workload(part_config(4, 64).with_batch_size(50), &inputs);
        let lossy = as_multiset(&outcome.results);
        let full = as_multiset(&healthy.results);
        for (pair, n) in &lossy {
            assert!(full.get(pair).is_some_and(|m| m >= n), "degraded run invented {pair:?}");
        }
        assert!(outcome.result_count < healthy.result_count);
    }

    #[test]
    #[should_panic(expected = "equi-join predicate")]
    fn partitioned_rejects_non_equi_predicates() {
        let _ = SplitJoin::spawn(
            part_config(2, 16).with_predicate(JoinPredicate::Band { delta: 2 }),
        );
    }

    #[test]
    #[should_panic(expected = "replication is not supported")]
    fn partitioned_rejects_replication() {
        let _ = SplitJoin::spawn(part_config(2, 16).with_replication());
    }

    #[test]
    fn partitioned_registry_publishes_partition_counters() {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 8 })
            .generate()
            .collect();
        let outcome = run_workload(part_config(2, 32), &inputs);
        let reg = outcome.registry();
        assert!(reg.get("splitjoin.partition.routed").is_some_and(|v| v > 0));
        assert!(reg.get("splitjoin.partition.hot_splits").is_some());
        assert!(reg.get("splitjoin.partition.occupancy_max").is_some_and(|v| v > 0));
        assert!(reg.get("splitjoin.partition.balance_x1000").is_some_and(|v| v > 0));
        assert!(reg.get("splitjoin.partition.worker0.occupancy").is_some());
        assert!(reg.get("splitjoin.partition.worker1.occupancy").is_some());
        // Broadcast runs must keep their exact pre-partitioning shape.
        let broadcast = run_workload(SplitJoinConfig::new(2, 32), &inputs);
        assert!(broadcast.partition_stats.is_none());
        assert!(!broadcast
            .registry()
            .iter()
            .any(|(n, _)| n.starts_with("splitjoin.partition.")));
    }

    #[test]
    #[cfg(feature = "obs")]
    fn live_plane_exports_router_and_worker_metrics() {
        // The live registry is process-global: arm the plane, run one
        // ring-transport engine, then check the global snapshot for
        // every exported key family. Sibling tests running concurrently
        // can only *add* to the shared counters, so the floor
        // assertions below stay race-free.
        obs::live::set_active(true);
        let inputs: Vec<_> = WorkloadSpec::new(600, KeyDist::Uniform { domain: 16 })
            .generate()
            .collect();
        let config = SplitJoinConfig::new(2, 32)
            .with_batch_size(64)
            .with_transport(Transport::Ring);
        let outcome = run_workload(config, &inputs);
        obs::live::set_active(false);
        assert!(!outcome.results.is_empty());

        let snap = obs::live::global().snapshot();
        for key in [
            "splitjoin.batches",
            "splitjoin.tuples",
            "splitjoin.matches",
            "splitjoin.partition.routed",
            "splitjoin.ring.occupancy",
            "splitjoin.ring.capacity",
            "splitjoin.arena.lag",
            "splitjoin.workers.live",
            "fault.workers_lost",
            "fault.orphaned_tuples",
            "splitjoin.worker.0.batches",
            "splitjoin.worker.0.tuples",
            "splitjoin.worker.0.matches",
            "splitjoin.worker.0.busy_ns",
            "splitjoin.worker.0.wait_ns",
            "splitjoin.worker.0.heartbeat_age_ns",
            "splitjoin.worker.1.heartbeat_age_ns",
        ] {
            assert!(snap.get(key).is_some(), "missing live key {key}");
        }
        assert!(snap.get("splitjoin.tuples").unwrap() >= 600);
        assert!(snap.get("splitjoin.batches").unwrap() >= 600 / 64);
        assert!(snap.get("splitjoin.matches").unwrap() > 0);
        assert!(snap.get("splitjoin.ring.capacity").unwrap() > 0);
        assert!(snap.get("splitjoin.worker.0.busy_ns").unwrap() > 0);
    }

    #[test]
    #[cfg(feature = "obs")]
    fn unarmed_live_plane_registers_nothing_new() {
        // Spawning without `obs::live::set_active(true)` must not touch
        // the global registry — the engine's `live` field stays `None`.
        obs::live::set_active(false);
        let inputs: Vec<_> = WorkloadSpec::new(50, KeyDist::Uniform { domain: 4 })
            .generate()
            .collect();
        let outcome = run_workload(SplitJoinConfig::new(2, 16), &inputs);
        assert!(!outcome.results.is_empty());
        // No assertion on registry size (armed sibling tests may be
        // interleaved); instead prove the cheap-path predicate directly.
        assert!(!obs::live::active());
    }
}
