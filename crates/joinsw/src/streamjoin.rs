//! The unified software-join surface: one trait over every engine.
//!
//! [`StreamJoin`] is the API redesign that lets the measurement harness,
//! the figure binaries, and the fault-injection sweeps drive the
//! [`SplitJoin`](crate::splitjoin::SplitJoin) router, the
//! [`HandshakeJoin`](crate::handshake::HandshakeJoin) chain, and the
//! single-threaded [`BaselineJoin`](crate::baseline::BaselineJoin)
//! through the same five verbs — spawn, process, prefill, flush,
//! shutdown — all fallible ([`JoinError`]) instead of panicking on a
//! dead peer. [`JoinSummary`] is the matching outcome surface: result
//! counts, batch-size and trace instrumentation, and the
//! [`FaultReport`] describing any degradation.
//!
//! Engine-internal disciplines stay out of this trait on purpose: the
//! SplitJoin transport ([`Transport`](crate::config::Transport)) and
//! dispatch mode ([`Partitioning`](crate::config::Partitioning)) are
//! config knobs, not API surface, which is what lets one generic
//! harness A/B broadcast against partitioned dispatch (or channel
//! against ring) without a line of engine-specific code — the
//! cross-impl equivalence suite drives all engines and all knob
//! combinations through exactly this trait.
//!
//! ```
//! use joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
//! use joinsw::streamjoin::{JoinSummary, StreamJoin};
//! use streamcore::{StreamTag, Tuple};
//!
//! fn count_one<J: StreamJoin>(config: J::Config) -> u64 {
//!     let join = J::spawn(config);
//!     join.process(StreamTag::S, Tuple::new(7, 0)).unwrap();
//!     join.process(StreamTag::R, Tuple::new(7, 1)).unwrap();
//!     join.flush().unwrap();
//!     join.shutdown().unwrap().result_count()
//! }
//!
//! assert_eq!(count_one::<SplitJoin>(SplitJoinConfig::new(2, 8)), 1);
//! ```

use accel_error::JoinError;
use streamcore::{MatchPair, StreamTag, Tuple};

use crate::config::JoinParams;
use crate::fault::FaultReport;

/// What every engine's shutdown outcome can report.
pub trait JoinSummary {
    /// Total matches observed.
    fn result_count(&self) -> u64;
    /// The collected results (empty when counting-only).
    fn results(&self) -> &[MatchPair];
    /// Sizes of the batch messages injected into the engine.
    fn batch_sizes(&self) -> &obs::Histogram;
    /// Wall-clock span rings (empty unless tracing was enabled).
    fn trace(&self) -> &[obs::trace::TraceRing];
    /// What went wrong, if anything.
    fn fault(&self) -> &FaultReport;
}

/// A running software stream join, generically.
///
/// Engine-specific configuration stays in each engine's `Config` type;
/// generic code reaches the shared fields through
/// [`JoinParams`]. All data-path verbs return
/// [`JoinError`] instead of panicking — losing *some* capacity degrades
/// the outcome's [`FaultReport`], and only unrecoverable conditions
/// (every worker gone, a panic, saturation past the supervision
/// deadline) surface as `Err`.
pub trait StreamJoin: Sized {
    /// Engine configuration (must expose the shared [`JoinParams`]).
    type Config: JoinParams + Clone;
    /// Engine shutdown outcome.
    type Outcome: JoinSummary;

    /// Spawns the engine's threads.
    fn spawn(config: Self::Config) -> Self;

    /// Submits one tuple.
    ///
    /// # Errors
    ///
    /// Engine-specific unrecoverable failures — see [`JoinError`].
    fn process(&self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError>;

    /// Submits a pre-assembled batch (default: tuple at a time).
    ///
    /// # Errors
    ///
    /// See [`StreamJoin::process`].
    fn process_batch(&self, batch: &[(StreamTag, Tuple)]) -> Result<(), JoinError> {
        for &(tag, tuple) in batch {
            self.process(tag, tuple)?;
        }
        Ok(())
    }

    /// Loads tuples into the sliding windows as measurement setup.
    /// Engines without a probe-free fast path may implement this as
    /// ordinary processing.
    ///
    /// # Errors
    ///
    /// See [`StreamJoin::process`].
    fn prefill(&self, tag: StreamTag, tuples: &[Tuple]) -> Result<(), JoinError>;

    /// Blocks until everything submitted before this call has been
    /// fully processed.
    ///
    /// # Errors
    ///
    /// See [`StreamJoin::process`].
    fn flush(&self) -> Result<(), JoinError>;

    /// Flushes, then removes and returns every match produced so far
    /// and not yet drained — the mid-run harvest the continuous-query
    /// runtime fans out to standing queries while the engine keeps
    /// streaming. Counting-only engines return an empty vector; the
    /// outcome's [`JoinSummary::result_count`] still reports the total
    /// ever produced (drained + returned at shutdown), while
    /// [`JoinSummary::results`] holds only the undrained remainder.
    ///
    /// Mirrors the `drain_results` verb the `joinhw` hardware
    /// simulations have always exposed.
    ///
    /// # Errors
    ///
    /// See [`StreamJoin::process`]; additionally
    /// [`JoinError::DrainStalled`] if the engine's collector fails to
    /// catch up with the workers' handoff accounting.
    fn drain_results(&self) -> Result<Vec<MatchPair>, JoinError>;

    /// Stops the engine and returns the accumulated outcome.
    ///
    /// # Errors
    ///
    /// See [`StreamJoin::process`].
    fn shutdown(self) -> Result<Self::Outcome, JoinError>;

    /// Fills both windows to steady state with non-matching keys (R
    /// keys `0..window_size`, S keys `window_size..2×window_size`) —
    /// the shared warm-up of every throughput measurement.
    ///
    /// # Errors
    ///
    /// See [`StreamJoin::process`].
    fn warm(&self, window_size: usize) -> Result<(), JoinError> {
        let r: Vec<Tuple> = (0..window_size)
            .map(|i| Tuple::new(i as u32, i as u32))
            .collect();
        let s: Vec<Tuple> = (0..window_size)
            .map(|i| Tuple::new((window_size + i) as u32, i as u32))
            .collect();
        self.prefill(StreamTag::R, &r)?;
        self.prefill(StreamTag::S, &s)
    }
}
