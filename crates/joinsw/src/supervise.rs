//! Crate-internal worker supervision primitives shared by the SplitJoin
//! router and the handshake chain: the per-worker heartbeat/liveness
//! cell, the scope guard that marks a cell dead on any exit path, and
//! the bounded-backoff supervised channel send.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use accel_error::{JoinError, WorkerStats};
use crossbeam::channel::{SendTimeoutError, Sender};

/// First supervised-send timeout; doubles per retry up to
/// [`BACKOFF_CAP_MS`].
pub(crate) const BACKOFF_START_MS: u64 = 1;
/// Supervised-send backoff ceiling (milliseconds).
pub(crate) const BACKOFF_CAP_MS: u64 = 64;
/// How long a full channel may show a frozen heartbeat before the
/// supervisor reports [`JoinError::Saturated`]. Progress resets the
/// clock, so plain back-pressure (slow but alive workers) never trips
/// it.
pub(crate) const SATURATION_DEADLINE: Duration = Duration::from_secs(10);

/// Shared per-worker supervision block: heartbeat + liveness for the
/// coordinator, last published statistics for loss-tolerant shutdown,
/// and the worker-side fault tallies.
#[derive(Debug, Default)]
pub(crate) struct WorkerCell {
    /// Messages processed; the supervisor reads this to tell a slow
    /// worker (heartbeat advances) from a wedged one (frozen with a
    /// full channel).
    pub(crate) heartbeat: AtomicU64,
    /// Set when the worker thread exits, normally or by unwinding.
    pub(crate) dead: AtomicBool,
    /// Set when the worker exits on a *scripted kill* — a cooperative
    /// death that shutdown reports as degradation, not as an error.
    pub(crate) killed: AtomicBool,
    pub(crate) tuples_seen: AtomicU64,
    pub(crate) stored: AtomicU64,
    pub(crate) comparisons: AtomicU64,
    pub(crate) matches: AtomicU64,
    /// Scripted stalls that fired on this worker.
    pub(crate) stalls: AtomicU64,
    /// Scripted channel drops that fired on this worker.
    pub(crate) drops: AtomicU64,
    /// Buffered matches lost to an abrupt exit or a dead collector.
    pub(crate) results_dropped: AtomicU64,
    /// Orphans adopted from a dead sibling's replica.
    pub(crate) adopted: AtomicU64,
    /// Window tuples this worker's death (or a severed link next to it)
    /// removed from the join — used where the coordinator has no
    /// ownership model of its own (the handshake chain).
    pub(crate) orphaned: AtomicU64,
}

impl WorkerCell {
    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    pub(crate) fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            tuples_seen: self.tuples_seen.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
        }
    }
}

/// Marks the cell dead when the worker thread exits — including by
/// panic, since the guard drops during unwinding.
pub(crate) struct AliveGuard(pub(crate) Arc<WorkerCell>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.dead.store(true, Ordering::Release);
    }
}

pub(crate) enum SendStatus {
    Sent,
    /// The worker's channel disconnected or its cell reports it dead:
    /// recover and reroute, don't error.
    Lost,
}

/// Bounded-backoff send with heartbeat supervision. Never blocks
/// indefinitely on a dead or wedged worker: back-pressure with progress
/// waits forever, a frozen heartbeat with a full channel for the whole
/// [`SATURATION_DEADLINE`] reports [`JoinError::Saturated`].
pub(crate) fn supervised_send<T>(
    tx: &Sender<T>,
    cell: &WorkerCell,
    worker: usize,
    mut msg: T,
) -> Result<SendStatus, JoinError> {
    let mut timeout_ms = BACKOFF_START_MS;
    let mut stuck: Option<(Instant, u64)> = None;
    loop {
        match tx.send_timeout(msg, Duration::from_millis(timeout_ms)) {
            Ok(()) => return Ok(SendStatus::Sent),
            Err(SendTimeoutError::Disconnected(_)) => return Ok(SendStatus::Lost),
            Err(SendTimeoutError::Timeout(returned)) => {
                msg = returned;
                if cell.is_dead() {
                    return Ok(SendStatus::Lost);
                }
                let beat = cell.heartbeat.load(Ordering::Relaxed);
                match stuck {
                    // Heartbeat frozen since last check: the deadline
                    // keeps running.
                    Some((since, last)) if last == beat => {
                        if since.elapsed() >= SATURATION_DEADLINE {
                            return Err(JoinError::Saturated {
                                worker,
                                waited_ms: since.elapsed().as_millis() as u64,
                            });
                        }
                    }
                    // Progress (or first timeout): reset the deadline —
                    // plain back-pressure waits as long as it takes.
                    _ => stuck = Some((Instant::now(), beat)),
                }
                timeout_ms = (timeout_ms * 2).min(BACKOFF_CAP_MS);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn supervised_send_reports_disconnect_as_lost() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        let cell = WorkerCell::default();
        assert!(matches!(
            supervised_send(&tx, &cell, 0, 7),
            Ok(SendStatus::Lost)
        ));
    }

    #[test]
    fn supervised_send_gives_up_on_a_dead_cell_with_a_full_channel() {
        let (tx, _rx) = bounded::<u32>(1);
        tx.send(1).unwrap(); // fill the channel; _rx never drains
        let cell = WorkerCell::default();
        cell.dead.store(true, Ordering::Release);
        assert!(matches!(
            supervised_send(&tx, &cell, 3, 2),
            Ok(SendStatus::Lost)
        ));
    }

    #[test]
    fn alive_guard_marks_death_on_drop() {
        let cell = Arc::new(WorkerCell::default());
        assert!(!cell.is_dead());
        drop(AliveGuard(Arc::clone(&cell)));
        assert!(cell.is_dead());
    }
}
