//! Crate-internal worker supervision primitives shared by the SplitJoin
//! router and the handshake chain: the per-worker heartbeat/liveness
//! cell, the scope guard that marks a cell dead on any exit path, the
//! bounded-backoff policy ([`SendSupervisor`]), and the supervised send
//! for each transport (channel `send_timeout`, ring claim-retry).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use accel_error::{JoinError, WorkerStats};
use crossbeam::channel::{SendTimeoutError, Sender};
use streamcore::ring::{PushError, RingProducer};

/// First supervised-send timeout; doubles per retry up to
/// [`BACKOFF_CAP_MS`].
pub(crate) const BACKOFF_START_MS: u64 = 1;
/// Supervised-send backoff ceiling (milliseconds).
pub(crate) const BACKOFF_CAP_MS: u64 = 64;
/// How long a full channel may show a frozen heartbeat before the
/// supervisor reports [`JoinError::Saturated`]. Progress resets the
/// clock, so plain back-pressure (slow but alive workers) never trips
/// it.
pub(crate) const SATURATION_DEADLINE: Duration = Duration::from_secs(10);
/// Yield-retry rounds a ring push or arena claim spends before falling
/// back to the sleeping [`SendSupervisor`] — rings have no condvar to
/// park on, and a draining consumer usually frees a slot within a
/// scheduler quantum or two.
pub(crate) const CLAIM_SPIN_YIELDS: u32 = 128;

/// Shared per-worker supervision block: heartbeat + liveness for the
/// coordinator, last published statistics for loss-tolerant shutdown,
/// and the worker-side fault tallies.
#[derive(Debug, Default)]
pub(crate) struct WorkerCell {
    /// Messages processed; the supervisor reads this to tell a slow
    /// worker (heartbeat advances) from a wedged one (frozen with a
    /// full channel).
    pub(crate) heartbeat: AtomicU64,
    /// Monotonic instant (`obs::trace::now_ns`) of the last heartbeat
    /// publication; 0 = never. Written only while the live telemetry
    /// plane is armed — the router exports
    /// `splitjoin.worker.<i>.heartbeat_age_ns` gauges from it so a
    /// stalling worker is visible to a scrape/sampler *long* before the
    /// 10 s [`SATURATION_DEADLINE`] fires.
    pub(crate) last_beat_ns: AtomicU64,
    /// Set when the worker thread exits, normally or by unwinding.
    pub(crate) dead: AtomicBool,
    /// Set when the worker exits on a *scripted kill* — a cooperative
    /// death that shutdown reports as degradation, not as an error.
    pub(crate) killed: AtomicBool,
    pub(crate) tuples_seen: AtomicU64,
    pub(crate) stored: AtomicU64,
    pub(crate) comparisons: AtomicU64,
    pub(crate) matches: AtomicU64,
    /// Scripted stalls that fired on this worker.
    pub(crate) stalls: AtomicU64,
    /// Scripted channel drops that fired on this worker.
    pub(crate) drops: AtomicU64,
    /// Buffered matches lost to an abrupt exit or a dead collector.
    pub(crate) results_dropped: AtomicU64,
    /// Matches successfully handed to this worker's result lane — the
    /// drain barrier compares the sum of these against the collector
    /// sink's received total (see `collect::ResultSink`).
    pub(crate) results_sent: AtomicU64,
    /// Orphans adopted from a dead sibling's replica.
    pub(crate) adopted: AtomicU64,
    /// Window tuples this worker's death (or a severed link next to it)
    /// removed from the join — used where the coordinator has no
    /// ownership model of its own (the handshake chain).
    pub(crate) orphaned: AtomicU64,
    /// Highest flush token this worker has acknowledged — the ring
    /// transport's flush barrier (channels carry an ack sender in the
    /// message instead).
    pub(crate) flushed: AtomicU64,
}

impl WorkerCell {
    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Stamps the heartbeat instant for live-telemetry age export. Gated
    /// on [`obs::live::active`] so inactive runs pay only a relaxed load
    /// (and `--no-default-features` builds pay nothing).
    #[inline]
    pub(crate) fn stamp_beat(&self) {
        if obs::live::active() {
            self.last_beat_ns
                .store(obs::trace::now_ns(), Ordering::Relaxed);
        }
    }

    /// Nanoseconds since the last stamped heartbeat at `now_ns`; `None`
    /// before the first beat (or when live telemetry is off).
    pub(crate) fn heartbeat_age_ns(&self, now_ns: u64) -> Option<u64> {
        let beat = self.last_beat_ns.load(Ordering::Relaxed);
        (beat != 0).then(|| now_ns.saturating_sub(beat))
    }

    pub(crate) fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            tuples_seen: self.tuples_seen.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            matches: self.matches.load(Ordering::Relaxed),
        }
    }
}

/// Marks the cell dead when the worker thread exits — including by
/// panic, since the guard drops during unwinding.
pub(crate) struct AliveGuard(pub(crate) Arc<WorkerCell>);

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.dead.store(true, Ordering::Release);
    }
}

pub(crate) enum SendStatus {
    Sent,
    /// The worker's channel disconnected or its cell reports it dead:
    /// recover and reroute, don't error.
    Lost,
}

/// The pure bounded-backoff + saturation-deadline policy, factored out
/// of the send loops so it can be driven by a mock clock in tests.
///
/// Each call to [`SendSupervisor::next_wait`] reports one failed
/// attempt against `(worker, heartbeat)` and asks how long to wait
/// before the next. The backoff doubles from [`BACKOFF_START_MS`] to
/// [`BACKOFF_CAP_MS`] regardless of progress; the saturation clock runs
/// only while the same worker's heartbeat stays frozen, and any
/// progress (or a different laggard) resets it. The returned wait is
/// **clamped to the remaining deadline budget**, so the total frozen
/// wait is exactly [`SATURATION_DEADLINE`] — not the deadline plus a
/// trailing full backoff (the pre-clamp behavior reported `Saturated`
/// at up to 10 s + 64 ms).
#[derive(Debug)]
pub(crate) struct SendSupervisor {
    backoff_ms: u64,
    /// `(deadline start, worker, heartbeat)` of the frozen streak.
    stuck: Option<(Instant, usize, u64)>,
}

impl SendSupervisor {
    pub(crate) fn new() -> Self {
        Self { backoff_ms: BACKOFF_START_MS, stuck: None }
    }

    /// The next bounded wait (see the type docs), or
    /// [`JoinError::Saturated`] once the frozen streak has consumed the
    /// whole deadline.
    pub(crate) fn next_wait(
        &mut self,
        now: Instant,
        worker: usize,
        heartbeat: u64,
    ) -> Result<Duration, JoinError> {
        let wait = Duration::from_millis(self.backoff_ms);
        self.backoff_ms = (self.backoff_ms * 2).min(BACKOFF_CAP_MS);
        match self.stuck {
            Some((since, w, beat)) if w == worker && beat == heartbeat => {
                let elapsed = now.saturating_duration_since(since);
                if elapsed >= SATURATION_DEADLINE {
                    return Err(JoinError::Saturated {
                        worker,
                        waited_ms: elapsed.as_millis() as u64,
                    });
                }
                Ok(wait.min(SATURATION_DEADLINE - elapsed))
            }
            // Progress (or first attempt, or a different laggard):
            // restart the deadline — plain back-pressure waits as long
            // as it takes.
            _ => {
                self.stuck = Some((now, worker, heartbeat));
                Ok(wait)
            }
        }
    }
}

/// Bounded-backoff send with heartbeat supervision. Never blocks
/// indefinitely on a dead or wedged worker: back-pressure with progress
/// waits forever, a frozen heartbeat with a full channel for the whole
/// [`SATURATION_DEADLINE`] reports [`JoinError::Saturated`].
pub(crate) fn supervised_send<T>(
    tx: &Sender<T>,
    cell: &WorkerCell,
    worker: usize,
    mut msg: T,
) -> Result<SendStatus, JoinError> {
    let mut sup = SendSupervisor::new();
    let mut timeout = Duration::from_millis(BACKOFF_START_MS);
    loop {
        match tx.send_timeout(msg, timeout) {
            Ok(()) => return Ok(SendStatus::Sent),
            Err(SendTimeoutError::Disconnected(_)) => return Ok(SendStatus::Lost),
            Err(SendTimeoutError::Timeout(returned)) => {
                msg = returned;
                if cell.is_dead() {
                    return Ok(SendStatus::Lost);
                }
                timeout = sup.next_wait(
                    Instant::now(),
                    worker,
                    cell.heartbeat.load(Ordering::Relaxed),
                )?;
            }
        }
    }
}

/// Ring-transport counterpart of [`supervised_send`]: claim-retry with
/// a yield phase, then the same backoff/saturation policy (a ring has
/// no blocking send to lean on). Returns the status plus the
/// nanoseconds spent waiting, which the router feeds the claim-wait
/// histogram.
pub(crate) fn supervised_push<T>(
    prod: &mut RingProducer<T>,
    cell: &WorkerCell,
    worker: usize,
    mut msg: T,
) -> Result<(SendStatus, u64), JoinError> {
    match prod.try_push(msg) {
        Ok(()) => return Ok((SendStatus::Sent, 0)),
        Err(PushError::Disconnected(_)) => return Ok((SendStatus::Lost, 0)),
        Err(PushError::Full(m)) => msg = m,
    }
    let t0 = Instant::now();
    let waited = |t0: Instant| t0.elapsed().as_nanos().max(1) as u64;
    let mut sup = SendSupervisor::new();
    let mut spins = 0u32;
    loop {
        if cell.is_dead() {
            return Ok((SendStatus::Lost, waited(t0)));
        }
        if spins < CLAIM_SPIN_YIELDS {
            spins += 1;
            std::thread::yield_now();
        } else {
            let wait = sup.next_wait(
                Instant::now(),
                worker,
                cell.heartbeat.load(Ordering::Relaxed),
            )?;
            std::thread::sleep(wait);
        }
        match prod.try_push(msg) {
            Ok(()) => return Ok((SendStatus::Sent, waited(t0))),
            Err(PushError::Disconnected(_)) => return Ok((SendStatus::Lost, waited(t0))),
            Err(PushError::Full(m)) => msg = m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn supervised_send_reports_disconnect_as_lost() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        let cell = WorkerCell::default();
        assert!(matches!(
            supervised_send(&tx, &cell, 0, 7),
            Ok(SendStatus::Lost)
        ));
    }

    #[test]
    fn supervised_send_gives_up_on_a_dead_cell_with_a_full_channel() {
        let (tx, _rx) = bounded::<u32>(1);
        tx.send(1).unwrap(); // fill the channel; _rx never drains
        let cell = WorkerCell::default();
        cell.dead.store(true, Ordering::Release);
        assert!(matches!(
            supervised_send(&tx, &cell, 3, 2),
            Ok(SendStatus::Lost)
        ));
    }

    #[test]
    fn supervised_push_gives_up_on_a_dead_cell_with_a_full_ring() {
        let (mut tx, _rx) = streamcore::ring::spsc::<u32>(1);
        tx.try_push(1).unwrap(); // fill the ring; _rx never drains
        let cell = WorkerCell::default();
        cell.dead.store(true, Ordering::Release);
        assert!(matches!(
            supervised_push(&mut tx, &cell, 3, 2),
            Ok((SendStatus::Lost, _))
        ));
    }

    #[test]
    fn supervised_push_reports_disconnect_as_lost() {
        let (mut tx, rx) = streamcore::ring::spsc::<u32>(1);
        drop(rx);
        let cell = WorkerCell::default();
        assert!(matches!(
            supervised_push(&mut tx, &cell, 0, 7),
            Ok((SendStatus::Lost, 0))
        ));
    }

    #[test]
    fn heartbeat_age_tracks_stamped_beats() {
        let cell = WorkerCell::default();
        assert_eq!(cell.heartbeat_age_ns(123), None, "no beat yet");
        cell.last_beat_ns.store(100, Ordering::Relaxed);
        assert_eq!(cell.heartbeat_age_ns(250), Some(150));
        // A sampler racing the beat may read an earlier clock: clamp.
        assert_eq!(cell.heartbeat_age_ns(50), Some(0));
    }

    #[test]
    fn alive_guard_marks_death_on_drop() {
        let cell = Arc::new(WorkerCell::default());
        assert!(!cell.is_dead());
        drop(AliveGuard(Arc::clone(&cell)));
        assert!(cell.is_dead());
    }

    /// Regression for the saturation off-by-a-backoff: with a frozen
    /// heartbeat the policy used to sleep a full capped backoff even
    /// when less than that remained of the deadline, firing `Saturated`
    /// at 10 s + 64 ms. Driven by a mock clock (fabricated `Instant`s),
    /// the waits must sum to *exactly* the deadline.
    #[test]
    fn saturation_fires_at_exactly_the_deadline_under_a_mock_clock() {
        let base = Instant::now();
        let mut sup = SendSupervisor::new();
        let mut elapsed = Duration::ZERO;
        let mut waits = Vec::new();
        let err = loop {
            match sup.next_wait(base + elapsed, 3, 42) {
                Ok(w) => {
                    assert!(w > Duration::ZERO, "zero wait would spin");
                    waits.push(w);
                    elapsed += w;
                }
                Err(e) => break e,
            }
        };
        // Backoff doubles 1,2,4,...,64 then stays capped...
        let head: Vec<Duration> =
            [1u64, 2, 4, 8, 16, 32, 64].iter().map(|&ms| Duration::from_millis(ms)).collect();
        assert_eq!(&waits[..7], &head[..]);
        // ...except the final wait, which is clamped to the remaining
        // budget (10_000 = 63 + 155*64 + 17).
        assert_eq!(*waits.last().unwrap(), Duration::from_millis(17));
        assert_eq!(elapsed, SATURATION_DEADLINE, "waits must sum to the deadline exactly");
        match err {
            JoinError::Saturated { worker, waited_ms } => {
                assert_eq!(worker, 3);
                assert_eq!(waited_ms, 10_000, "not 10_064");
            }
            other => panic!("expected Saturated, got {other:?}"),
        }
    }

    /// Heartbeat progress (or a different laggard) restarts the
    /// deadline; the backoff itself keeps doubling.
    #[test]
    fn progress_resets_the_saturation_clock() {
        let base = Instant::now();
        let mut sup = SendSupervisor::new();
        // 9.9 s into a frozen streak on beat 1...
        let mut elapsed = Duration::ZERO;
        loop {
            let w = sup.next_wait(base + elapsed, 0, 1).unwrap();
            elapsed += w;
            if elapsed >= Duration::from_millis(9_900) {
                break;
            }
        }
        // ...the heartbeat moves: the clock restarts and the policy
        // will happily wait another full deadline.
        let w = sup.next_wait(base + elapsed, 0, 2).unwrap();
        assert_eq!(w, Duration::from_millis(BACKOFF_CAP_MS), "backoff stays capped, unclamped");
        let later = elapsed + Duration::from_secs(9);
        assert!(sup.next_wait(base + later, 0, 2).is_ok(), "reset clock must not saturate early");
        // A different worker index is also progress.
        assert!(sup.next_wait(base + later, 1, 2).is_ok());
    }
}
