//! Fault-injection suite: scripted kills, stalls, drops, and panics
//! against the SplitJoin runtime, with exact completeness accounting.
//!
//! Every scenario is deterministic — fault plans fire at scripted batch
//! boundaries, never from wall-clock randomness — so the orphan counts
//! asserted here are recomputed independently by a tiny round-robin
//! model of the router rather than compared against tolerances.

use joinsw::baseline::reference_join;
use joinsw::fault::{FaultEvent, FaultPlan};
use joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
use joinsw::JoinError;
use proptest::prelude::*;
use streamcore::{JoinPredicate, StreamTag, Tuple};

const CORES: usize = 4;

/// Alternating R/S workload with keys hashed over `domain`.
fn workload(tuples: usize, domain: u32) -> Vec<(StreamTag, Tuple)> {
    (0..tuples)
        .map(|seq| {
            let tag = if seq % 2 == 0 { StreamTag::R } else { StreamTag::S };
            let key = ((seq as u32).wrapping_mul(2_654_435_761) >> 16) % domain;
            (tag, Tuple::new(key, seq as u32))
        })
        .collect()
}

fn run(config: SplitJoinConfig, inputs: &[(StreamTag, Tuple)]) -> Result<joinsw::splitjoin::JoinOutcome, JoinError> {
    let join = SplitJoin::spawn(config);
    for &(tag, t) in inputs {
        join.process(tag, t)?;
    }
    join.flush()?;
    join.shutdown()
}

/// Independent recount of the match-completeness loss when `victim`
/// dies after `tuples_distributed` inputs: replay the router's
/// round-robin storage discipline and count the victim's sub-window
/// occupancy per stream.
fn recount_orphans(
    inputs: &[(StreamTag, Tuple)],
    tuples_distributed: usize,
    victim: usize,
    sub_window: usize,
) -> u64 {
    let mut owned = [0u64; 2]; // victim's stored tuples per stream
    let mut arrivals = [0u64; 2]; // per-stream arrival counters
    for &(tag, _) in &inputs[..tuples_distributed] {
        let lane = (tag == StreamTag::S) as usize;
        if arrivals[lane] % CORES as u64 == victim as u64 {
            owned[lane] += 1;
        }
        arrivals[lane] += 1;
    }
    owned[0].min(sub_window as u64) + owned[1].min(sub_window as u64)
}

/// ISSUE acceptance scenario: kill worker 1 at batch 100 on 4 cores.
/// The run completes without panic, reports the loss exactly, and
/// records one recovery in the latency histogram.
#[test]
fn kill_one_worker_mid_stream_accounts_losses_exactly() {
    let window = 256;
    let batch = 16;
    let inputs = workload(4_000, 64);
    let plan = FaultPlan::none().with(FaultEvent::Kill { worker: 1, after_batch: 100 });
    let outcome = run(
        SplitJoinConfig::new(CORES, window)
            .with_batch_size(batch)
            .with_fault_plan(plan),
        &inputs,
    )
    .expect("degraded run still completes");

    assert_eq!(outcome.fault.workers_lost, vec![1]);
    // The victim processes exactly batches 1..=100 before the router
    // retires it at the scripted boundary.
    let distributed = 100 * batch;
    let want = recount_orphans(&inputs, distributed, 1, window / CORES);
    assert!(want > 0, "scenario must actually orphan tuples");
    assert_eq!(outcome.fault.orphaned_tuples, want);
    assert_eq!(outcome.fault.recovery_ns.total(), 1);
    assert!(outcome.fault.degraded());

    // Completeness genuinely degrades: strictly fewer matches than the
    // fault-free reference.
    let want_full = reference_join(&inputs, window, JoinPredicate::Equi).len() as u64;
    assert!(
        outcome.result_count < want_full,
        "lost sub-windows must cost matches: {} vs {}",
        outcome.result_count,
        want_full
    );

    // The loss lands in the manifest registry under fault.*.
    let reg = outcome.registry();
    assert_eq!(reg.get("fault.workers_lost"), Some(1));
    assert_eq!(reg.get("fault.orphaned_tuples"), Some(want));
    assert_eq!(reg.get("fault.recoveries"), Some(1));
}

/// With sub-window re-replication enabled the router re-adopts every
/// orphan onto the survivors: the readopted count equals the orphan
/// count and the final results recover accordingly.
#[test]
fn replication_readopts_every_orphan() {
    let window = 256;
    let inputs = workload(4_000, 64);
    let plan = FaultPlan::none().with(FaultEvent::Kill { worker: 1, after_batch: 100 });
    let degraded = run(
        SplitJoinConfig::new(CORES, window)
            .with_batch_size(16)
            .with_fault_plan(plan.clone()),
        &inputs,
    )
    .unwrap();
    let replicated = run(
        SplitJoinConfig::new(CORES, window)
            .with_batch_size(16)
            .with_fault_plan(plan)
            .with_replication(),
        &inputs,
    )
    .unwrap();

    assert!(replicated.fault.orphaned_tuples > 0);
    assert_eq!(
        replicated.fault.readopted_tuples,
        replicated.fault.orphaned_tuples,
        "router replicas must cover the dead worker's whole window"
    );
    assert!(
        replicated.result_count > degraded.result_count,
        "re-adoption must recover matches: {} vs {}",
        replicated.result_count,
        degraded.result_count
    );
}

/// A stalled worker recovers through the supervised-send backoff: no
/// deadlock, no lost tuples, results identical to a fault-free run.
#[test]
fn stall_and_recover_preserves_results() {
    let window = 128;
    let inputs = workload(2_000, 32);
    let clean = run(
        SplitJoinConfig::new(CORES, window).with_batch_size(16),
        &inputs,
    )
    .unwrap();
    let start = std::time::Instant::now();
    let stalled = run(
        SplitJoinConfig::new(CORES, window)
            .with_batch_size(16)
            .with_fault_plan(FaultPlan::parse("stall1@3x60").unwrap()),
        &inputs,
    )
    .unwrap();
    assert!(
        start.elapsed() < std::time::Duration::from_secs(8),
        "bounded backoff must not spiral"
    );
    assert_eq!(stalled.fault.injected_stalls, 1);
    assert!(stalled.fault.workers_lost.is_empty());
    assert_eq!(stalled.result_count, clean.result_count);
    assert_eq!(stalled.fault.orphaned_tuples, 0);
    assert!(stalled.fault.degraded(), "stalls are visible in the report");
}

/// A dropped batch loses exactly that batch's work and is counted.
#[test]
fn dropped_batch_is_counted_and_costs_matches() {
    let window = 128;
    let inputs = workload(2_000, 16);
    let clean = run(
        SplitJoinConfig::new(CORES, window).with_batch_size(16),
        &inputs,
    )
    .unwrap();
    let dropped = run(
        SplitJoinConfig::new(CORES, window)
            .with_batch_size(16)
            .with_fault_plan(FaultPlan::parse("drop1@4").unwrap()),
        &inputs,
    )
    .unwrap();
    assert_eq!(dropped.fault.injected_drops, 1);
    assert!(dropped.result_count <= clean.result_count);
    assert!(dropped.fault.degraded());
}

/// A scripted worker panic is not a degradation — it surfaces as
/// `WorkerPanicked` with the victim's stats up to the moment of death.
#[test]
fn scripted_panic_surfaces_with_stats() {
    let inputs = workload(2_000, 16);
    let join = SplitJoin::spawn(
        SplitJoinConfig::new(CORES, 128)
            .with_batch_size(16)
            .with_fault_plan(FaultPlan::parse("panic1@3").unwrap()),
    );
    let mut failed = None;
    for &(tag, t) in &inputs {
        if let Err(e) = join.process(tag, t) {
            failed = Some(e);
            break;
        }
    }
    let err = match failed {
        Some(e) => e,
        None => {
            let _ = join.flush();
            join.shutdown().expect_err("panic must surface by shutdown")
        }
    };
    match err {
        JoinError::WorkerPanicked { worker, stats_so_far } => {
            assert_eq!(worker, 1);
            assert!(stats_so_far.tuples_seen > 0, "stats survive the panic");
        }
        other => panic!("expected WorkerPanicked, got {other}"),
    }
}

/// `ACCEL_FAULTS`-style specs round-trip through the parser into plans
/// that target real workers (spawn validates the worker indices).
#[test]
fn fault_specs_parse_and_validate() {
    let plan = FaultPlan::parse("kill1@100,stall0@2x5,drop3@7").unwrap();
    assert_eq!(plan.events.len(), 3);
    plan.validate(CORES); // all targets < 4: fine
    assert!(FaultPlan::parse("explode1@2").is_err());
    assert!(FaultPlan::none().is_empty());
}

/// The CI fault-matrix leg: when `ACCEL_FAULTS` is set, replay its plan
/// against a 4-core run and require the runtime to survive it — any
/// non-panic scenario completes `Ok` with the damage on the report, and
/// a panic scenario surfaces as `WorkerPanicked`. With the variable
/// unset this degenerates to a healthy-run check.
#[test]
fn env_scripted_faults_are_survivable() {
    let plan = FaultPlan::from_env();
    let expects_panic = !plan.is_empty()
        && plan.events.iter().any(|e| matches!(e, FaultEvent::Panic { .. }));
    let scripted = !plan.is_empty();
    let inputs = workload(4_000, 32);
    let result = run(
        SplitJoinConfig::new(CORES, 256)
            .with_batch_size(16)
            .with_fault_plan(plan),
        &inputs,
    );
    if expects_panic {
        assert!(matches!(result, Err(JoinError::WorkerPanicked { .. })));
        return;
    }
    let outcome = result.expect("non-panic fault plans must be survivable");
    if scripted {
        assert!(outcome.fault.degraded(), "scripted faults must be visible");
    } else {
        assert!(!outcome.fault.degraded());
        assert_eq!(
            outcome.result_count,
            reference_join(&inputs, 256, JoinPredicate::Equi).len() as u64
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An empty fault plan is bit-for-bit the plain runtime: same result
    /// multiset (asserted via the strict reference), clean fault report,
    /// no fault.* keys in the manifest registry.
    #[test]
    fn empty_fault_plan_is_equivalent_to_no_plan(
        tuples in 0usize..400,
        domain in 1u32..32,
        cores in 1usize..5,
    ) {
        let window = 16usize;
        let inputs = workload(tuples, domain);
        let with_empty = run(
            SplitJoinConfig::new(cores, window)
                .with_fault_plan(FaultPlan::none()),
            &inputs,
        )
        .unwrap();
        let without = run(SplitJoinConfig::new(cores, window), &inputs).unwrap();

        prop_assert_eq!(with_empty.result_count, without.result_count);
        let effective = cores * window.div_ceil(cores);
        let want = reference_join(&inputs, effective, JoinPredicate::Equi);
        prop_assert_eq!(with_empty.result_count, want.len() as u64);
        prop_assert!(!with_empty.fault.degraded());
        prop_assert_eq!(with_empty.fault.recovery_ns.total(), 0);
        prop_assert_eq!(with_empty.registry().get("fault.workers_lost"), None);
    }
}
