//! Property-based tests of the software joins.

use joinsw::baseline::reference_join;
use joinsw::splitjoin::{SplitJoin, SplitJoinConfig, SwJoinAlgorithm};
use proptest::prelude::*;
use std::collections::HashMap;
use streamcore::{JoinPredicate, MatchPair, StreamTag, Tuple};

fn arb_inputs(max_len: usize, domain: u32) -> impl Strategy<Value = Vec<(StreamTag, Tuple)>> {
    prop::collection::vec(
        (any::<bool>(), 0..domain, any::<u32>()).prop_map(|(is_r, key, payload)| {
            let tag = if is_r { StreamTag::R } else { StreamTag::S };
            (tag, Tuple::new(key, payload))
        }),
        0..max_len,
    )
}

fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
    let mut m = HashMap::new();
    for p in results {
        *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Nested-loop and hash SplitJoin agree with the strict reference on
    /// arbitrary interleavings and match each other exactly.
    #[test]
    fn splitjoin_algorithms_agree(inputs in arb_inputs(150, 6), cores in 1usize..4) {
        let window = 12usize;
        let effective = cores * window.div_ceil(cores);
        let want = as_multiset(&reference_join(&inputs, effective, JoinPredicate::Equi));

        for algorithm in [SwJoinAlgorithm::NestedLoop, SwJoinAlgorithm::Hash] {
            let join = SplitJoin::spawn(
                SplitJoinConfig::new(cores, window).with_algorithm(algorithm),
            );
            for &(tag, t) in &inputs {
                join.process(tag, t).unwrap();
            }
            join.flush().unwrap();
            let outcome = join.shutdown().unwrap();
            prop_assert_eq!(
                as_multiset(&outcome.results),
                want.clone(),
                "{:?} with {} cores",
                algorithm,
                cores
            );
        }
    }

    /// Worker accounting is conserved: every input is seen by every
    /// worker, stored exactly once across workers, and the per-worker
    /// match counts sum to the collector's total.
    #[test]
    fn worker_accounting_is_conserved(inputs in arb_inputs(200, 8), cores in 1usize..5) {
        let join = SplitJoin::spawn(SplitJoinConfig::new(cores, 16));
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        join.flush().unwrap();
        let outcome = join.shutdown().unwrap();
        let n = inputs.len() as u64;
        let seen: u64 = outcome.worker_stats.iter().map(|w| w.tuples_seen).sum();
        let stored: u64 = outcome.worker_stats.iter().map(|w| w.stored).sum();
        let matches: u64 = outcome.worker_stats.iter().map(|w| w.matches).sum();
        prop_assert_eq!(seen, n * cores as u64);
        prop_assert_eq!(stored, n);
        prop_assert_eq!(matches, outcome.result_count);
        prop_assert_eq!(outcome.results.len() as u64, outcome.result_count);
    }
}
