//! Named counter/gauge cells and the [`Registry`] snapshot store.
//!
//! [`Counter`] and [`Gauge`] are the hot-path primitives: plain
//! [`Cell<u64>`](std::cell::Cell) wrappers when the `enabled` feature is
//! on, zero-sized no-ops when it is off. They are *owned by* the
//! instrumented component (a FIFO, a network node, a join core) so an
//! increment is one unsynchronized machine add — no map lookup, no
//! atomics, no allocation.
//!
//! Names enter the picture only at *snapshot* time: a component's
//! `observe(&mut Registry, prefix)` method publishes its cells into a
//! [`Registry`] under stable dotted names, and the registry feeds a
//! [`RunManifest`](crate::RunManifest).

use std::collections::BTreeMap;

#[cfg(feature = "enabled")]
use std::cell::Cell;

/// A monotonically increasing event counter.
///
/// With the `enabled` feature (the default) this is a [`Cell<u64>`]
/// wrapper; without it the type is zero-sized, [`Counter::incr`] /
/// [`Counter::add`] compile to nothing and [`Counter::get`] returns 0.
///
/// # Clone is a value snapshot, not a shared handle
///
/// `Clone` copies the current value into an **independent** cell: after
/// `let d = c.clone()`, increments to `c` are invisible through `d` and
/// vice versa. This exists so components that derive `Clone` (the join
/// networks) stay cloneable — a clone of an engine starts from the
/// original's counts and diverges. If two parties must observe the *same*
/// evolving value (an instrumented thread and a sampler), use
/// [`live::SharedCounter`](crate::live::SharedCounter), whose `Clone`
/// shares the underlying atomic.
///
/// ```
/// let stalls = obs::Counter::new();
/// stalls.incr();
/// stalls.add(2);
/// #[cfg(feature = "enabled")]
/// assert_eq!(stalls.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    cell: Cell<u64>,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.cell.set(self.cell.get().wrapping_add(n));
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (0 when the `enabled` feature is off).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.get()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// Resets to zero.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        self.cell.set(0);
    }
}

impl Clone for Counter {
    fn clone(&self) -> Self {
        let c = Counter::new();
        c.add(self.get());
        c
    }
}

impl PartialEq for Counter {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Eq for Counter {}

/// A last-value gauge (e.g. a high-water mark or a configuration knob).
///
/// Same cost model as [`Counter`]: one unsynchronized store when the
/// `enabled` feature is on, a no-op otherwise. `Clone` has the same
/// snapshot semantics as [`Counter`]'s — a value copy into an
/// independent cell, **not** a shared handle (for that, see
/// [`live::SharedGauge`](crate::live::SharedGauge)).
///
/// ```
/// let depth = obs::Gauge::new();
/// depth.set(7);
/// depth.max(3); // keeps 7
/// depth.max(9); // takes 9
/// #[cfg(feature = "enabled")]
/// assert_eq!(depth.get(), 9);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    cell: Cell<u64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.cell.set(v);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn max(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.cell.set(self.cell.get().max(v));
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current value (0 when the `enabled` feature is off).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.get()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        let g = Gauge::new();
        g.set(self.get());
        g
    }
}

impl PartialEq for Gauge {
    fn eq(&self, other: &Self) -> bool {
        self.get() == other.get()
    }
}

impl Eq for Gauge {}

/// An ordered name → value snapshot of counters and gauges.
///
/// Components publish into a registry under stable dotted names
/// (`"uniflow.dist.input_stalls"`); a [`RunManifest`](crate::RunManifest)
/// serializes the whole registry. The registry itself is *not*
/// feature-gated — with observability compiled out it simply snapshots
/// zeros.
///
/// ```
/// let mut reg = obs::Registry::new();
/// reg.record("join.accepted", 42);
/// reg.record("join.stalls", 3);
/// assert_eq!(reg.get("join.stalls"), Some(3));
/// assert_eq!(reg.iter().count(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    entries: BTreeMap<String, u64>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a value under `name`, overwriting any previous entry.
    pub fn record(&mut self, name: impl Into<String>, value: u64) {
        self.entries.insert(name.into(), value);
    }

    /// Records the current value of a [`Counter`] under `name`.
    pub fn counter(&mut self, name: impl Into<String>, counter: &Counter) {
        self.record(name, counter.get());
    }

    /// Records the current value of a [`Gauge`] under `name`.
    pub fn gauge(&mut self, name: impl Into<String>, gauge: &Gauge) {
        self.record(name, gauge.get());
    }

    /// Looks up a recorded value.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries.get(name).copied()
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Copies every entry of `other` into `self` (overwriting name
    /// collisions).
    pub fn absorb(&mut self, other: &Registry) {
        for (name, value) in other.iter() {
            self.record(name, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "enabled")]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        let d = c.clone();
        c.incr();
        assert_eq!((c.get(), d.get()), (11, 10));
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[cfg(not(feature = "enabled"))]
    fn counter_is_noop_when_disabled() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 0);
        assert_eq!(std::mem::size_of::<Counter>(), 0);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn gauge_tracks_high_water_mark() {
        let g = Gauge::new();
        g.set(5);
        g.max(3);
        assert_eq!(g.get(), 5);
        g.max(8);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn registry_snapshots_in_name_order() {
        let mut reg = Registry::new();
        reg.record("b", 2);
        reg.record("a", 1);
        reg.record("b", 3); // overwrite
        let got: Vec<_> = reg.iter().collect();
        assert_eq!(got, vec![("a", 1), ("b", 3)]);

        let mut sink = Registry::new();
        sink.record("c", 9);
        sink.absorb(&reg);
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.get("b"), Some(3));
    }

    #[test]
    fn manifest_key_order_is_deterministic_across_runs() {
        // Regression guard: two registries fed the same entries in
        // *different* insertion orders must iterate (and therefore
        // serialize into a RunManifest) identically — artifact diffs in
        // CI depend on it.
        let names = ["z.last", "a.first", "m.mid", "a.second", "fault.x"];
        let mut forward = Registry::new();
        for (i, n) in names.iter().enumerate() {
            forward.record(*n, i as u64);
        }
        let mut reverse = Registry::new();
        for (i, n) in names.iter().enumerate().rev() {
            reverse.record(*n, i as u64);
        }
        let fwd: Vec<_> = forward.iter().map(|(k, _)| k.to_string()).collect();
        let rev: Vec<_> = reverse.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(fwd, rev, "iteration order must not depend on insertion order");
        let mut sorted = fwd.clone();
        sorted.sort();
        assert_eq!(fwd, sorted, "iteration is name-sorted");

        let mut a = crate::RunManifest::new("order");
        a.record_registry(&forward);
        let mut b = crate::RunManifest::new("order");
        b.record_registry(&reverse);
        assert_eq!(a.to_json(), b.to_json(), "manifests must diff clean");
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn clone_is_a_value_snapshot_not_a_shared_handle() {
        let c = Counter::new();
        c.add(4);
        let snap = c.clone();
        c.add(10);
        assert_eq!((c.get(), snap.get()), (14, 4));

        let g = Gauge::new();
        g.set(8);
        let gsnap = g.clone();
        g.set(2);
        assert_eq!((g.get(), gsnap.get()), (2, 8));
    }
}
