//! Derived health signals: the bridge from raw live samples to an
//! autoscaling / admission decision.
//!
//! `joinsw::supervise` only reports saturation *after* its 10-second
//! deadline expires; by then the run is already lost. [`Health::derive`]
//! turns two consecutive [`Snapshot`]s into the
//! leading indicators a controller needs — busy fraction, throughput
//! rate, ring occupancy, worker heartbeat age — and
//! [`Health::pressured`] flags approaching saturation long before the
//! deadline fires.
//!
//! The derivation is name-convention based, matching what the engines
//! publish (see the workspace `ARCHITECTURE.md` for the full key list):
//!
//! * `*.busy_ns` / `*.wait_ns` — summed deltas give the busy fraction.
//! * `splitjoin.tuples` / `splitjoin.matches` — deltas over elapsed time
//!   give rates.
//! * `splitjoin.ring.occupancy` / `splitjoin.ring.capacity` — queue
//!   pressure.
//! * `*.heartbeat_age_ns` — the max is the most-stalled worker.
//!
//! # Example
//!
//! ```
//! use obs::health::Health;
//! use obs::live::Snapshot;
//!
//! let prev = Snapshot { t_ns: 0, values: vec![
//!     ("splitjoin.tuples".into(), 0),
//!     ("splitjoin.worker.0.busy_ns".into(), 0),
//!     ("splitjoin.worker.0.wait_ns".into(), 0),
//! ]};
//! let cur = Snapshot { t_ns: 1_000_000_000, values: vec![
//!     ("splitjoin.tuples".into(), 1_000_000),
//!     ("splitjoin.worker.0.busy_ns".into(), 900_000_000),
//!     ("splitjoin.worker.0.wait_ns".into(), 100_000_000),
//! ]};
//! let h = Health::derive(&prev, &cur);
//! assert_eq!(h.tuples_per_sec, Some(1_000_000.0));
//! assert_eq!(h.busy_fraction, Some(0.9));
//! assert!(!h.pressured());
//! ```

use crate::live::Snapshot;

/// Ring occupancy fraction at which [`Health::pressured`] trips.
pub const PRESSURE_OCCUPANCY_FRACTION: f64 = 0.75;

/// Worker heartbeat age at which [`Health::pressured`] trips: a quarter
/// of `joinsw::supervise`'s 10-second saturation deadline, so a stalled
/// worker is visible with 7.5 seconds of headroom.
pub const PRESSURE_HEARTBEAT_AGE_NS: u64 = 2_500_000_000;

/// Busy fraction at which [`Health::pressured`] trips (the pool has no
/// spare service capacity left).
pub const PRESSURE_BUSY_FRACTION: f64 = 0.95;

/// Signals derived from two consecutive snapshots of the live registry.
///
/// Every field is `Option`al: a key the producing engine does not publish
/// (or an interval too short to rate) simply yields `None` and never
/// contributes to [`Health::pressured`].
#[derive(Debug, Clone, PartialEq)]
pub struct Health {
    /// Elapsed time between the two snapshots, nanoseconds.
    pub interval_ns: u64,
    /// Σ Δ`*.busy_ns` / (Σ Δ`*.busy_ns` + Σ Δ`*.wait_ns`) across every
    /// instrumented worker; `None` when nothing reported either.
    pub busy_fraction: Option<f64>,
    /// Δ`splitjoin.tuples` per second.
    pub tuples_per_sec: Option<f64>,
    /// Δ`splitjoin.matches` per second.
    pub matches_per_sec: Option<f64>,
    /// Current `splitjoin.ring.occupancy` (slots in flight on the fullest
    /// transport hop).
    pub ring_occupancy: Option<u64>,
    /// Current `splitjoin.ring.capacity`.
    pub ring_capacity: Option<u64>,
    /// Max over current `*.heartbeat_age_ns` — how long the most-stalled
    /// worker has gone without publishing.
    pub max_heartbeat_age_ns: Option<u64>,
    /// Current `splitjoin.workers.live`.
    pub workers_live: Option<u64>,
}

impl Health {
    /// Derives health from two snapshots (`prev` taken before `cur`).
    #[must_use]
    pub fn derive(prev: &Snapshot, cur: &Snapshot) -> Self {
        let mut busy = 0u64;
        let mut wait = 0u64;
        let mut saw_cycle_split = false;
        let mut max_age: Option<u64> = None;
        for (name, value) in &cur.values {
            if name.ends_with(".busy_ns") {
                if let Some(d) = cur.delta(prev, name) {
                    busy += d;
                    saw_cycle_split = true;
                }
            } else if name.ends_with(".wait_ns") {
                if let Some(d) = cur.delta(prev, name) {
                    wait += d;
                    saw_cycle_split = true;
                }
            } else if name.ends_with(".heartbeat_age_ns") {
                max_age = Some(max_age.unwrap_or(0).max(*value));
            }
        }
        let busy_fraction = if saw_cycle_split && busy + wait > 0 {
            Some(busy as f64 / (busy + wait) as f64)
        } else {
            None
        };
        Self {
            interval_ns: cur.t_ns.saturating_sub(prev.t_ns),
            busy_fraction,
            tuples_per_sec: cur.rate_per_sec(prev, "splitjoin.tuples"),
            matches_per_sec: cur.rate_per_sec(prev, "splitjoin.matches"),
            ring_occupancy: cur.get("splitjoin.ring.occupancy"),
            ring_capacity: cur.get("splitjoin.ring.capacity"),
            max_heartbeat_age_ns: max_age,
            workers_live: cur.get("splitjoin.workers.live"),
        }
    }

    /// Current ring occupancy as a fraction of capacity.
    #[must_use]
    pub fn occupancy_fraction(&self) -> Option<f64> {
        match (self.ring_occupancy, self.ring_capacity) {
            (Some(occ), Some(cap)) if cap > 0 => Some(occ as f64 / cap as f64),
            _ => None,
        }
    }

    /// The pre-`Saturated` pressure predicate: true when the system is
    /// approaching the state where `joinsw::supervise` would eventually
    /// give up — transport queues ≥ [`PRESSURE_OCCUPANCY_FRACTION`] full,
    /// a worker silent for ≥ [`PRESSURE_HEARTBEAT_AGE_NS`], or the pool
    /// ≥ [`PRESSURE_BUSY_FRACTION`] busy. A controller acting on this
    /// signal still has seconds of headroom; `Saturated` means it is too
    /// late.
    #[must_use]
    pub fn pressured(&self) -> bool {
        if self
            .occupancy_fraction()
            .is_some_and(|f| f >= PRESSURE_OCCUPANCY_FRACTION)
        {
            return true;
        }
        if self
            .max_heartbeat_age_ns
            .is_some_and(|age| age >= PRESSURE_HEARTBEAT_AGE_NS)
        {
            return true;
        }
        self.busy_fraction
            .is_some_and(|f| f >= PRESSURE_BUSY_FRACTION)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(t_ns: u64, values: &[(&str, u64)]) -> Snapshot {
        Snapshot {
            t_ns,
            values: values
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    #[test]
    fn empty_snapshots_derive_no_signals_and_no_pressure() {
        let h = Health::derive(&snap(0, &[]), &snap(10, &[]));
        assert_eq!(h.interval_ns, 10);
        assert_eq!(h.busy_fraction, None);
        assert_eq!(h.tuples_per_sec, None);
        assert!(!h.pressured());
    }

    #[test]
    fn busy_fraction_sums_across_workers() {
        let prev = snap(
            0,
            &[
                ("splitjoin.worker.0.busy_ns", 0),
                ("splitjoin.worker.0.wait_ns", 0),
                ("splitjoin.worker.1.busy_ns", 0),
                ("splitjoin.worker.1.wait_ns", 0),
            ],
        );
        let cur = snap(
            1_000,
            &[
                ("splitjoin.worker.0.busy_ns", 600),
                ("splitjoin.worker.0.wait_ns", 400),
                ("splitjoin.worker.1.busy_ns", 200),
                ("splitjoin.worker.1.wait_ns", 800),
            ],
        );
        let h = Health::derive(&prev, &cur);
        assert_eq!(h.busy_fraction, Some(0.4));
        assert!(!h.pressured());
    }

    #[test]
    fn pressure_trips_on_each_leading_indicator() {
        // Queue nearly full.
        let cur = snap(
            10,
            &[
                ("splitjoin.ring.occupancy", 96),
                ("splitjoin.ring.capacity", 128),
            ],
        );
        let h = Health::derive(&snap(0, &[]), &cur);
        assert_eq!(h.occupancy_fraction(), Some(0.75));
        assert!(h.pressured());

        // Stalled worker.
        let cur = snap(
            10,
            &[("splitjoin.worker.3.heartbeat_age_ns", PRESSURE_HEARTBEAT_AGE_NS)],
        );
        assert!(Health::derive(&snap(0, &[]), &cur).pressured());

        // Pool saturated on service time.
        let prev = snap(0, &[("w.busy_ns", 0), ("w.wait_ns", 0)]);
        let cur = snap(100, &[("w.busy_ns", 99), ("w.wait_ns", 1)]);
        assert!(Health::derive(&prev, &cur).pressured());
    }
}
