//! Fixed-bucket log2 histogram with quantile estimates.

use std::fmt;
use std::time::Duration;

/// A log2-bucketed histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, with values clamped up to 1 (so 0 lands in bucket 0
/// and bucket 63 absorbs everything from `2^63`).
///
/// The 64 fixed buckets make recording allocation-free and O(1)
/// (`leading_zeros` + one array add), which is what lets the measurement
/// harnesses record *every* sample instead of a single running average.
/// Alongside the buckets the histogram tracks exact count/sum/min/max, so
/// the mean and the extremes are not bucket-quantized; quantiles are
/// bucket-resolution estimates (see [`Histogram::quantile`]).
///
/// Values are plain `u64`s — the unit is whatever the caller records
/// (wall-clock nanoseconds in the software harnesses, clock cycles in the
/// simulated-hardware harnesses). The `ns`-suffixed methods exist for
/// nanosecond ergonomics and [`Duration`] interop.
///
/// # Example
///
/// ```
/// use obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [100u64, 100, 5_000] {
///     h.record_value(v);
/// }
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.max(), Some(5_000));
/// assert_eq!(h.mode_bucket_ns(), Some((64, 128))); // two samples in [64, 128)
/// assert_eq!(h.quantile(0.50), Some(127));         // bucket-upper-bound estimate
/// assert_eq!(h.p99(), Some(5_000));                // clamped to the observed max
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (unit-agnostic). Values below 1 are clamped to 1.
    pub fn record_value(&mut self, value: u64) {
        let v = value.max(1);
        let bucket = (63 - v.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records one sample in nanoseconds (alias of [`record_value`]
    /// retained for the `streamcore::metrics` API).
    ///
    /// [`record_value`]: Histogram::record_value
    pub fn record_ns(&mut self, ns: u64) {
        self.record_value(ns);
    }

    /// Records one sample as a [`Duration`] (in nanoseconds).
    pub fn record(&mut self, sample: Duration) {
        self.record_value(sample.as_nanos() as u64);
    }

    /// Total recorded samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples (saturating), or `None` if empty.
    #[must_use]
    pub fn sum(&self) -> Option<u64> {
        (self.count > 0).then_some(self.sum)
    }

    /// Exact minimum recorded sample (after the clamp to ≥ 1), or `None`
    /// if empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded sample, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the recorded samples, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 1]`, or `None` if
    /// empty.
    ///
    /// The estimate is the *inclusive upper bound* of the bucket holding
    /// the nearest-rank sample, clamped into the exactly-tracked
    /// `[min, max]` range — so single-bucket distributions and the tails
    /// stay honest, and the error is otherwise bounded by the 2× bucket
    /// width.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_high(i).clamp(self.min, self.max));
            }
        }
        unreachable!("count > 0 implies some bucket holds the rank")
    }

    /// Median estimate (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate (see [`Histogram::quantile`]).
    #[must_use]
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The `[low, high)` range of the most populated bucket, or `None` if
    /// empty. (The name keeps the historical `streamcore::metrics` API;
    /// the unit is whatever was recorded.)
    #[must_use]
    pub fn mode_bucket_ns(&self) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let (i, _) = self
            .buckets
            .iter()
            .enumerate()
            .max_by_key(|&(_, n)| n)
            .expect("64 buckets");
        Some((1u64 << i, Self::bucket_high(i).saturating_add(1)))
    }

    /// Non-empty buckets as `(low, high, count)` rows, `high` exclusive.
    #[must_use]
    pub fn rows(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (1u64 << i, Self::bucket_high(i).saturating_add(1), n))
            .collect()
    }

    /// Folds another histogram into this one (bucket-wise add; min/max/sum
    /// combine exactly).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Rebuilds a histogram from previously serialized parts — the inverse
    /// of what a [`RunManifest`](crate::RunManifest) emits. `rows` are
    /// `(low, count)` pairs where `low` must be a power of two.
    ///
    /// # Errors
    ///
    /// Returns a message when a row's `low` is not a power of two or the
    /// row counts disagree with `count`.
    pub fn from_parts(
        rows: &[(u64, u64)],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Result<Self, String> {
        let mut h = Histogram::new();
        let mut total = 0u64;
        for &(low, n) in rows {
            if !low.is_power_of_two() {
                return Err(format!("bucket low {low} is not a power of two"));
            }
            h.buckets[low.trailing_zeros() as usize] += n;
            total += n;
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, expected {count}"));
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        Ok(h)
    }

    /// Inclusive upper bound of bucket `i` (`2^(i+1) - 1`, saturating for
    /// the top bucket).
    fn bucket_high(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << (i + 1)) - 1
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (low, high, n) in self.rows() {
            let bar = "#".repeat((n * 40 / peak).max(1) as usize);
            writeln!(f, "{:>12} {bar} {n}", format!("{low}..{high}ns"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        let mut h = Histogram::new();
        h.record_value(1); // bucket 0: [1, 2)
        h.record_value(2); // bucket 1: [2, 4)
        h.record_value(3);
        h.record_value(1023); // bucket 9: [512, 1024)
        h.record_value(1024); // bucket 10: [1024, 2048)
        assert_eq!(h.total(), 5);
        assert_eq!(
            h.rows(),
            vec![(1, 2, 1), (2, 4, 2), (512, 1024, 1), (1024, 2048, 1)]
        );
        assert_eq!(h.mode_bucket_ns(), Some((2, 4)));
    }

    #[test]
    fn zero_clamps_into_bucket_zero_and_top_bucket_saturates() {
        let mut h = Histogram::new();
        h.record_value(0);
        assert_eq!(h.rows(), vec![(1, 2, 1)]);
        assert_eq!(h.min(), Some(1));
        h.record_value(u64::MAX);
        assert_eq!(h.rows()[1], (1u64 << 63, u64::MAX, 1));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn quantiles_use_nearest_rank_over_buckets() {
        let mut h = Histogram::new();
        // 90 samples in [64, 128), 10 samples in [4096, 8192).
        for _ in 0..90 {
            h.record_value(100);
        }
        for _ in 0..10 {
            h.record_value(5_000);
        }
        assert_eq!(h.quantile(0.0), Some(127)); // rank clamps to 1
        assert_eq!(h.p50(), Some(127)); // bucket [64,128) upper bound
        assert_eq!(h.quantile(0.90), Some(127));
        assert_eq!(h.quantile(0.91), Some(5_000)); // clamped to observed max
        assert_eq!(h.p99(), Some(5_000));
        assert_eq!(h.quantile(1.0), Some(5_000));
    }

    #[test]
    fn single_valued_distribution_is_exact_at_every_quantile() {
        let mut h = Histogram::new();
        for _ in 0..7 {
            h.record_value(42);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42), "q={q}");
        }
        assert_eq!(h.mean(), Some(42.0));
    }

    #[test]
    fn empty_histogram_yields_none_everywhere() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.sum(), None);
        assert_eq!(h.mode_bucket_ns(), None);
        assert!(h.rows().is_empty());
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_panics() {
        let mut h = Histogram::new();
        h.record_value(1);
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record_value(10);
        a.record_value(20);
        let mut b = Histogram::new();
        b.record_value(1_000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(1_000));
        assert_eq!(a.sum(), Some(1_030));
        a.merge(&Histogram::new()); // merging empty is a no-op
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [3u64, 3, 70, 900, 900, 900] {
            h.record_value(v);
        }
        let rows: Vec<(u64, u64)> = h.rows().iter().map(|&(lo, _, n)| (lo, n)).collect();
        let back = Histogram::from_parts(
            &rows,
            h.total(),
            h.sum().unwrap(),
            h.min().unwrap(),
            h.max().unwrap(),
        )
        .unwrap();
        assert_eq!(back, h);
        assert!(Histogram::from_parts(&[(3, 1)], 1, 3, 3, 3).is_err());
        assert!(Histogram::from_parts(&[(2, 1)], 2, 3, 3, 3).is_err());
    }

    #[test]
    fn duration_api_matches_value_api() {
        let mut a = Histogram::new();
        a.record(Duration::from_nanos(777));
        a.record_ns(777);
        let mut b = Histogram::new();
        b.record_value(777);
        b.record_value(777);
        assert_eq!(a, b);
    }
}
