//! A minimal JSON tree, writer, and parser.
//!
//! The workspace is built offline against vendored stand-ins, so there is
//! no `serde`; this module implements exactly the JSON subset the
//! [`RunManifest`](crate::RunManifest) needs: objects (insertion-ordered),
//! arrays, strings, booleans, null, and numbers. Unsigned integers are
//! kept as `u64` end to end — cycle counters exceed the 2^53 range where
//! `f64` round-trips break.
//!
//! # Example
//!
//! ```
//! use obs::json::Json;
//!
//! let doc = Json::Obj(vec![
//!     ("name".into(), Json::Str("fig14c".into())),
//!     ("cycles".into(), Json::UInt(123_911)),
//! ]);
//! let text = doc.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("cycles").and_then(Json::as_u64), Some(123_911));
//! assert_eq!(doc, back);
//! ```

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (kept exact up to `u64::MAX`).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write and parse.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for other variants or missing
    /// keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses a JSON document (the subset this module writes, which is
    /// all of standard JSON except exponent-heavy float edge cases).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message with a byte offset on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes on a single line with no inter-token whitespace — the
    /// JSONL form used by the live-telemetry series artifacts
    /// (`*.series.jsonl`), where one sample must occupy exactly one line.
    /// [`Json::parse`] accepts both this and the pretty [`std::fmt::Display`] form.
    ///
    /// ```
    /// use obs::json::Json;
    /// let doc = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::UInt(1)]))]);
    /// assert_eq!(doc.to_compact(), "{\"a\":[1]}");
    /// ```
    #[must_use]
    pub fn to_compact(&self) -> String {
        Compact(self).to_string()
    }

    fn write_compact(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    write!(f, "null") // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    item.write_compact(f)?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":")?;
                    v.write_compact(f)?;
                }
                write!(f, "}}")
            }
        }
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.is_finite() {
                    write!(f, "{x}")
                } else {
                    write!(f, "null") // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) if items.is_empty() => write!(f, "[]"),
            Json::Arr(items) => {
                writeln!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    write!(f, "{pad}")?;
                    item.write_indented(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < items.len() { "," } else { "" })?;
                }
                write!(f, "{close}]")
            }
            Json::Obj(members) if members.is_empty() => write!(f, "{{}}"),
            Json::Obj(members) => {
                writeln!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    write!(f, "{pad}")?;
                    write_escaped(f, k)?;
                    write!(f, ": ")?;
                    v.write_indented(f, indent + 1)?;
                    writeln!(f, "{}", if i + 1 < members.len() { "," } else { "" })?;
                }
                write!(f, "{close}}}")
            }
        }
    }
}

impl fmt::Display for Json {
    /// Pretty-prints with two-space indentation (the `target/obs/*.json`
    /// on-disk format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

/// Single-line [`fmt::Display`] adapter behind [`Json::to_compact`].
struct Compact<'a>(&'a Json);

impl fmt::Display for Compact<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.write_compact(f)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("bad \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| {
                                format!("bad \\u escape at byte {}", self.pos)
                            })?;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source slice.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("s".into(), Json::Str("a \"quoted\"\nline\t\\".into())),
            ("big".into(), Json::UInt(u64::MAX)),
            ("neg".into(), Json::Int(-42)),
            ("f".into(), Json::Float(1.5)),
            ("t".into(), Json::Bool(true)),
            ("n".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::UInt(1), Json::Arr(vec![]), Json::Obj(vec![])]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_precision_survives() {
        // 2^53 + 1 is exactly where f64 loses integers.
        let n = (1u64 << 53) + 1;
        let back = Json::parse(&Json::UInt(n).to_string()).unwrap();
        assert_eq!(back.as_u64(), Some(n));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\\u0041\" : \"x\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("bA").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc", "{a:1}"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse("{\"k\": 7, \"s\": \"v\"}").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_obj().unwrap().len(), 2);
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Bool(true).as_u64(), None);
    }
}
