//! `obs` — the workspace's low-overhead observability layer.
//!
//! Everything the paper's evaluation argues from — throughput, end-to-end
//! latency, per-core utilization — is a *measurement*, and this crate is
//! where the workspace's measurements live. It has four pieces, layered
//! from hot path to disk:
//!
//! 1. **[`Counter`] / [`Gauge`]** — plain `u64` cells owned by the
//!    instrumented component. An increment is one unsynchronized add;
//!    with the `enabled` Cargo feature off (build the stack with
//!    `--no-default-features`) the types are zero-sized and every
//!    operation compiles to nothing. The join networks and FIFO chains
//!    count their stalls with these.
//! 2. **[`Registry`]** — a named snapshot (`"uniflow.dist.input_stalls"`
//!    → value) that components publish their cells into on demand.
//! 3. **[`Histogram`]** — 64 log2 buckets plus exact count/sum/min/max,
//!    with p50/p95/p99 estimates. This replaces single-average latency
//!    reporting throughout `streamcore::metrics`.
//! 4. **[`RunManifest`]** — a JSON artifact (`target/obs/<name>.json`)
//!    bundling git revision, thread count, configuration, the full
//!    counter registry, and histogram buckets, written by every `fig*`
//!    binary and the criterion groups. [`json`] is the tiny serializer /
//!    parser underneath (the workspace builds offline; there is no
//!    serde).
//!
//! Two further modules answer *when* and *where* instead of *how much*:
//! [`trace`] records bounded per-worker span rings (cycle-stamped in the
//! simulation, wall-clock in the software data path) and exports them as
//! Chrome trace-event JSON for <https://ui.perfetto.dev>; [`provenance`]
//! samples 1-in-N tuples at ingest and attributes their end-to-end
//! latency to pipeline stages (ingest → distribute → probe → gather →
//! emit) with exact stage-sum accounting.
//!
//! Everything above is post-mortem; the **live telemetry plane** observes
//! a run *while it executes*: [`live`] holds shared-atomic
//! counters/gauges plus a background sampler, [`series`] is the JSONL
//! time-series artifact it streams, [`health`] derives busy fraction /
//! throughput / pressure from consecutive samples, and [`scrape`] serves
//! the registry as Prometheus-style text over std TCP.
//!
//! Instrumentation must never change behaviour: counters carry no
//! control-flow, and the simulation's golden cycle-count pins are tested
//! with the feature both on and off.
//!
//! # Example
//!
//! ```
//! use obs::{Counter, Histogram, Registry, RunManifest};
//!
//! // Hot path: a component owns its cells.
//! let stalls = Counter::new();
//! stalls.incr();
//!
//! // Snapshot: publish under stable names.
//! let mut reg = Registry::new();
//! reg.counter("net.stalls", &stalls);
//!
//! // Measurement: record every sample, not just the mean.
//! let mut service = Histogram::new();
//! for cycles in [12u64, 14, 12, 90] {
//!     service.record_value(cycles);
//! }
//!
//! // Artifact: one JSON document per run.
//! let mut manifest = RunManifest::new("example");
//! manifest.record_registry(&reg);
//! manifest.histogram("service_cycles", service);
//! let parsed = RunManifest::from_json(&manifest.to_json()).unwrap();
//! assert_eq!(parsed, manifest);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
pub mod health;
mod hist;
pub mod json;
pub mod live;
mod manifest;
pub mod provenance;
pub mod scrape;
pub mod series;
pub mod trace;

pub use cell::{Counter, Gauge, Registry};
pub use hist::Histogram;
pub use manifest::{default_dir, git_rev, RunManifest, SCHEMA_VERSION};
