//! The live telemetry plane: shared-atomic metrics sampled *while the
//! system runs*.
//!
//! The post-mortem surfaces ([`Counter`](crate::Counter) /
//! [`Gauge`](crate::Gauge) → [`Registry`](crate::Registry) →
//! [`RunManifest`](crate::RunManifest)) only speak after a run ends. This
//! module is their online counterpart:
//!
//! * [`SharedCounter`] / [`SharedGauge`] — `Arc<AtomicU64>` cells with
//!   relaxed ordering. Unlike the thread-local cells, **`Clone` shares
//!   the handle**: the instrumented thread and the sampler thread see the
//!   same value. With the `enabled` feature off both types are zero-sized
//!   and every operation compiles to nothing.
//! * [`LiveRegistry`] — a named, cloneable store of shared handles.
//!   [`global()`] is the process-wide instance the engines publish into;
//!   [`set_active`] arms it so hot paths pay nothing unless a live run
//!   was requested.
//! * [`Sampler`] — a background thread snapshotting a registry at a fixed
//!   interval into a bounded ring of [`Snapshot`]s, optionally streaming
//!   each sample to a [`SeriesWriter`]
//!   (`target/obs/<run>.series.jsonl`).
//!
//! [`crate::health`] derives busy fraction / throughput / pressure from
//! consecutive snapshots, and [`crate::scrape`] serves the registry as
//! Prometheus-style text over std TCP.
//!
//! # Example
//!
//! ```
//! use obs::live::{LiveRegistry, Sampler, SamplerConfig};
//! use std::time::Duration;
//!
//! let reg = LiveRegistry::new();
//! let tuples = reg.counter("splitjoin.tuples");
//! let depth = reg.gauge("splitjoin.ring.occupancy");
//!
//! tuples.add(256);
//! depth.set(3);
//!
//! let snap = reg.snapshot();
//! #[cfg(feature = "enabled")]
//! assert_eq!(snap.get("splitjoin.tuples"), Some(256));
//!
//! let sampler = Sampler::start(
//!     reg.clone(),
//!     SamplerConfig { interval: Duration::from_millis(1), ..Default::default() },
//! );
//! tuples.add(256);
//! let report = sampler.stop();
//! assert!(!report.snapshots.is_empty()); // always at least the final one
//! ```

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

#[cfg(feature = "enabled")]
use std::collections::BTreeMap;
#[cfg(feature = "enabled")]
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::series::SeriesWriter;

/// A monotonically increasing event counter shared across threads.
///
/// The online sibling of [`Counter`](crate::Counter): one relaxed
/// `fetch_add` per update, readable from any thread. **`Clone` shares the
/// underlying cell** (both handles observe the same value) — the opposite
/// of `Counter::clone`, which copies the value into an independent cell.
///
/// With the `enabled` feature off the type is zero-sized and all
/// operations compile to nothing ([`SharedCounter::get`] returns 0).
#[derive(Debug, Clone, Default)]
pub struct SharedCounter {
    #[cfg(feature = "enabled")]
    cell: Arc<AtomicU64>,
}

impl SharedCounter {
    /// Creates a detached counter at zero (use
    /// [`LiveRegistry::counter`] for a named one).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.cell.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current value (0 when the `enabled` feature is off).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// A last-value gauge shared across threads.
///
/// Same cost model and sharing semantics as [`SharedCounter`]: relaxed
/// atomic stores, `Clone` shares the cell, zero-sized no-op without the
/// `enabled` feature.
#[derive(Debug, Clone, Default)]
pub struct SharedGauge {
    #[cfg(feature = "enabled")]
    cell: Arc<AtomicU64>,
}

impl SharedGauge {
    /// Creates a detached gauge at zero (use [`LiveRegistry::gauge`] for
    /// a named one).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.cell.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn max(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.cell.fetch_max(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current value (0 when the `enabled` feature is off).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// Whether a registry entry is a counter (monotone) or a gauge
/// (last-value). The scrape endpoint exposes this as the Prometheus
/// `# TYPE` of each metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing ([`SharedCounter`]).
    Counter,
    /// Last value written ([`SharedGauge`]).
    Gauge,
}

#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
enum Slot {
    Counter(SharedCounter),
    Gauge(SharedGauge),
}

/// A named store of shared metric handles.
///
/// Cloning the registry shares the store; [`LiveRegistry::counter`] /
/// [`LiveRegistry::gauge`] register-or-reuse by name, so an engine spawned
/// twice in one process keeps accumulating into the same cells.
/// Registration takes a mutex (cold path, spawn time); updates through the
/// returned handles are lock-free relaxed atomics (hot path).
///
/// Asking for an existing name with the *other* kind returns a fresh
/// detached handle instead of panicking — live telemetry must never take
/// an engine down.
///
/// With the `enabled` feature off the registry stores nothing and
/// snapshots are empty.
#[derive(Debug, Clone, Default)]
pub struct LiveRegistry {
    #[cfg(feature = "enabled")]
    inner: Arc<Mutex<BTreeMap<String, Slot>>>,
}

impl LiveRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it at zero
    /// on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> SharedCounter {
        #[cfg(feature = "enabled")]
        {
            let mut map = self.inner.lock().expect("live registry poisoned");
            match map
                .entry(name.to_string())
                .or_insert_with(|| Slot::Counter(SharedCounter::new()))
            {
                Slot::Counter(c) => c.clone(),
                Slot::Gauge(_) => SharedCounter::new(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SharedCounter::new()
        }
    }

    /// Returns the gauge registered under `name`, creating it at zero on
    /// first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> SharedGauge {
        #[cfg(feature = "enabled")]
        {
            let mut map = self.inner.lock().expect("live registry poisoned");
            match map
                .entry(name.to_string())
                .or_insert_with(|| Slot::Gauge(SharedGauge::new()))
            {
                Slot::Gauge(g) => g.clone(),
                Slot::Counter(_) => SharedGauge::new(),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SharedGauge::new()
        }
    }

    /// Every entry as `(name, value, kind)`, in name order. One call is
    /// one consistent pass over the map, but values are read with relaxed
    /// loads — a snapshot is *approximately* simultaneous, which is all
    /// rate estimation needs.
    #[must_use]
    pub fn entries(&self) -> Vec<(String, u64, MetricKind)> {
        #[cfg(feature = "enabled")]
        {
            let map = self.inner.lock().expect("live registry poisoned");
            map.iter()
                .map(|(name, slot)| match slot {
                    Slot::Counter(c) => (name.clone(), c.get(), MetricKind::Counter),
                    Slot::Gauge(g) => (name.clone(), g.get(), MetricKind::Gauge),
                })
                .collect()
        }
        #[cfg(not(feature = "enabled"))]
        {
            Vec::new()
        }
    }

    /// Takes a timestamped value snapshot of every entry (name order).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            t_ns: crate::trace::now_ns(),
            values: self
                .entries()
                .into_iter()
                .map(|(name, value, _)| (name, value))
                .collect(),
        }
    }

    /// Number of registered handles (0 when the feature is off).
    #[must_use]
    pub fn len(&self) -> usize {
        #[cfg(feature = "enabled")]
        {
            self.inner.lock().expect("live registry poisoned").len()
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }

    /// True when no handles are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide live registry.
///
/// Engines (`SplitJoin`, the handshake chain, `hwsim::par`) publish into
/// this instance when [`active()`] is set; the bench binaries arm it with
/// [`set_active`] before spawning and hand it to a [`Sampler`] and the
/// scrape endpoint.
#[must_use]
pub fn global() -> &'static LiveRegistry {
    static GLOBAL: OnceLock<LiveRegistry> = OnceLock::new();
    GLOBAL.get_or_init(LiveRegistry::new)
}

#[cfg(feature = "enabled")]
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Arms (or disarms) the global live plane. Hot layers consult
/// [`active()`] once per engine spawn / batch, so flipping this before
/// spawning is what makes live gauges appear.
pub fn set_active(on: bool) {
    #[cfg(feature = "enabled")]
    ACTIVE.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = on;
}

/// True when a live run was requested via [`set_active`]. Constant
/// `false` with the `enabled` feature off, so guarded instrumentation
/// compiles away entirely.
#[inline]
#[must_use]
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        ACTIVE.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// One timestamped value capture of a [`LiveRegistry`].
///
/// `t_ns` is monotonic nanoseconds on the process trace anchor
/// ([`crate::trace::now_ns`]), so differences between snapshots are exact
/// elapsed time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Capture time, monotonic process nanoseconds.
    pub t_ns: u64,
    /// `(name, value)` pairs in name order.
    pub values: Vec<(String, u64)>,
}

impl Snapshot {
    /// Looks up a value by exact name. Linear scan: registry snapshots
    /// are name-sorted, but hand-built ones need not be, and the maps are
    /// small.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// The increase of `name` since `prev` (saturating at zero; `None`
    /// when either snapshot lacks the key).
    #[must_use]
    pub fn delta(&self, prev: &Snapshot, name: &str) -> Option<u64> {
        Some(self.get(name)?.saturating_sub(prev.get(name)?))
    }

    /// The per-second rate of counter `name` between `prev` and `self`
    /// (`None` when the key is missing or no time elapsed).
    #[must_use]
    pub fn rate_per_sec(&self, prev: &Snapshot, name: &str) -> Option<f64> {
        let dt = self.t_ns.saturating_sub(prev.t_ns);
        if dt == 0 {
            return None;
        }
        let dv = self.delta(prev, name)?;
        Some(dv as f64 * 1e9 / dt as f64)
    }
}

/// [`Sampler`] tuning.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Time between snapshots. Default 25 ms — coarse enough to stay
    /// under the 2% overhead budget of the bench gate, fine enough to
    /// resolve batch-scale dynamics.
    pub interval: Duration,
    /// In-memory ring capacity (oldest snapshots are dropped first; the
    /// series file, when attached, keeps everything). Default 1024.
    pub ring_capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(25),
            ring_capacity: 1024,
        }
    }
}

/// What a [`Sampler`] hands back from [`Sampler::stop`].
#[derive(Debug)]
pub struct SamplerReport {
    /// The retained snapshot ring, oldest first (bounded by
    /// [`SamplerConfig::ring_capacity`]).
    pub snapshots: Vec<Snapshot>,
    /// Total snapshots taken (may exceed `snapshots.len()` when the ring
    /// wrapped).
    pub ticks: u64,
    /// Where the series artifact was written, when one was attached.
    pub series_path: Option<std::path::PathBuf>,
    /// The first I/O error hit while streaming the series, if any
    /// (sampling continues in memory after a write error).
    pub series_error: Option<String>,
}

struct SamplerState {
    ring: VecDeque<Snapshot>,
    ticks: u64,
    writer: Option<SeriesWriter>,
    series_error: Option<String>,
}

struct StopGate {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// A background thread that snapshots a [`LiveRegistry`] at a fixed
/// interval.
///
/// Each tick appends to a bounded in-memory ring and, when a
/// [`SeriesWriter`] is attached, streams the sample as one JSONL line.
/// [`Sampler::stop`] takes one final snapshot (so even sub-interval runs
/// produce a sample), joins the thread, and returns a [`SamplerReport`].
#[derive(Debug)]
pub struct Sampler {
    reg: LiveRegistry,
    state: Arc<Mutex<SamplerState>>,
    gate: Arc<StopGate>,
    interval: Duration,
    capacity: usize,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for SamplerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerState")
            .field("ticks", &self.ticks)
            .field("ring_len", &self.ring.len())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for StopGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StopGate").finish_non_exhaustive()
    }
}

impl Sampler {
    /// Starts sampling `reg` in the background (in-memory ring only).
    #[must_use]
    pub fn start(reg: LiveRegistry, cfg: SamplerConfig) -> Self {
        Self::spawn(reg, cfg, None)
    }

    /// Starts sampling `reg` and streams every snapshot to `writer` as a
    /// JSONL series line.
    #[must_use]
    pub fn start_with_series(reg: LiveRegistry, cfg: SamplerConfig, writer: SeriesWriter) -> Self {
        Self::spawn(reg, cfg, Some(writer))
    }

    fn spawn(reg: LiveRegistry, cfg: SamplerConfig, writer: Option<SeriesWriter>) -> Self {
        let state = Arc::new(Mutex::new(SamplerState {
            ring: VecDeque::new(),
            ticks: 0,
            writer,
            series_error: None,
        }));
        let gate = Arc::new(StopGate {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        });
        let capacity = cfg.ring_capacity.max(1);
        let interval = cfg.interval;
        let thread_state = Arc::clone(&state);
        let thread_gate = Arc::clone(&gate);
        let thread_reg = reg.clone();
        let handle = thread::Builder::new()
            .name("obs-sampler".into())
            .spawn(move || {
                loop {
                    let stopped = thread_gate.stopped.lock().expect("sampler gate poisoned");
                    let (stopped, _) = thread_gate
                        .cv
                        .wait_timeout_while(stopped, interval, |s| !*s)
                        .expect("sampler gate poisoned");
                    if *stopped {
                        return;
                    }
                    drop(stopped);
                    record_tick(&thread_state, thread_reg.snapshot(), capacity);
                }
            })
            .expect("spawn obs-sampler thread");
        Self {
            reg,
            state,
            gate,
            interval,
            capacity,
            handle: Some(handle),
        }
    }

    /// The sampling interval this sampler was started with.
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Snapshots taken so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.state.lock().expect("sampler poisoned").ticks
    }

    /// A copy of the current snapshot ring, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<Snapshot> {
        let state = self.state.lock().expect("sampler poisoned");
        state.ring.iter().cloned().collect()
    }

    /// Stops the sampler: takes one final snapshot (so even sub-interval
    /// runs record their end state), joins the thread, flushes the series
    /// artifact, and returns everything retained.
    #[must_use]
    pub fn stop(mut self) -> SamplerReport {
        self.finish(true)
    }

    fn finish(&mut self, final_sample: bool) -> SamplerReport {
        {
            let mut stopped = self.gate.stopped.lock().expect("sampler gate poisoned");
            *stopped = true;
            self.gate.cv.notify_all();
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        if final_sample {
            record_tick(&self.state, self.reg.snapshot(), self.capacity);
        }
        let mut state = self.state.lock().expect("sampler poisoned");
        let mut report = SamplerReport {
            snapshots: state.ring.iter().cloned().collect(),
            ticks: state.ticks,
            series_path: None,
            series_error: state.series_error.clone(),
        };
        if let Some(writer) = state.writer.take() {
            match writer.finish() {
                Ok(path) => report.series_path = Some(path),
                Err(e) => {
                    report
                        .series_error
                        .get_or_insert_with(|| format!("finish: {e}"));
                }
            }
        }
        report
    }

    /// Takes an immediate out-of-schedule snapshot (the same ring/series
    /// path as a timer tick), e.g. at a phase boundary worth marking.
    pub fn sample_now(&self) {
        record_tick(&self.state, self.reg.snapshot(), self.capacity);
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        if self.handle.is_some() {
            let _ = self.finish(false);
        }
    }
}

fn record_tick(state: &Mutex<SamplerState>, snap: Snapshot, capacity: usize) {
    let mut state = state.lock().expect("sampler poisoned");
    state.ticks += 1;
    if let Some(writer) = state.writer.as_mut() {
        if let Err(e) = writer.append(&snap) {
            state
                .series_error
                .get_or_insert_with(|| format!("append: {e}"));
        }
    }
    if state.ring.len() == capacity {
        state.ring.pop_front();
    }
    state.ring.push_back(snap);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "enabled")]
    fn shared_counter_clone_shares_the_cell() {
        let c = SharedCounter::new();
        let d = c.clone();
        c.add(5);
        d.incr();
        assert_eq!((c.get(), d.get()), (6, 6));
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn registry_reuses_handles_by_name() {
        let reg = LiveRegistry::new();
        let a = reg.counter("x.n");
        let b = reg.counter("x.n");
        a.add(2);
        b.add(3);
        assert_eq!(reg.snapshot().get("x.n"), Some(5));
        assert_eq!(reg.len(), 1);

        let g = reg.gauge("x.depth");
        g.set(7);
        g.max(3);
        let snap = reg.snapshot();
        assert_eq!(snap.get("x.depth"), Some(7));
        // Name order in snapshots.
        let names: Vec<_> = snap.values.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["x.depth", "x.n"]);
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn kind_mismatch_returns_a_detached_handle() {
        let reg = LiveRegistry::new();
        let _ = reg.counter("m");
        let g = reg.gauge("m"); // wrong kind: detached, never panics
        g.set(99);
        assert_eq!(reg.snapshot().get("m"), Some(0));
    }

    #[test]
    #[cfg(not(feature = "enabled"))]
    fn disabled_plane_is_zero_sized_and_empty() {
        assert_eq!(std::mem::size_of::<SharedCounter>(), 0);
        assert_eq!(std::mem::size_of::<SharedGauge>(), 0);
        let reg = LiveRegistry::new();
        let c = reg.counter("x");
        c.add(9);
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().values.is_empty());
        set_active(true);
        assert!(!active());
    }

    #[test]
    #[cfg(feature = "enabled")]
    fn snapshot_deltas_and_rates() {
        let prev = Snapshot {
            t_ns: 1_000_000_000,
            values: vec![("a".into(), 100), ("b".into(), 7)],
        };
        let cur = Snapshot {
            t_ns: 3_000_000_000,
            values: vec![("a".into(), 400), ("b".into(), 7)],
        };
        assert_eq!(cur.delta(&prev, "a"), Some(300));
        assert_eq!(cur.rate_per_sec(&prev, "a"), Some(150.0));
        assert_eq!(cur.rate_per_sec(&prev, "b"), Some(0.0));
        assert_eq!(cur.rate_per_sec(&prev, "missing"), None);
        assert_eq!(cur.rate_per_sec(&cur, "a"), None); // dt == 0
    }

    #[test]
    fn sampler_ticks_and_stops() {
        let reg = LiveRegistry::new();
        let c = reg.counter("t.events");
        let sampler = Sampler::start(
            reg.clone(),
            SamplerConfig {
                interval: Duration::from_millis(1),
                ring_capacity: 4,
            },
        );
        c.add(10);
        while sampler.ticks() < 6 {
            std::thread::yield_now();
        }
        sampler.sample_now();
        let report = sampler.stop();
        assert!(report.ticks >= 6);
        assert!(report.snapshots.len() <= 4, "ring stays bounded");
        assert!(report.series_path.is_none());
        #[cfg(feature = "enabled")]
        assert_eq!(
            report.snapshots.last().unwrap().get("t.events"),
            Some(10)
        );
    }
}
