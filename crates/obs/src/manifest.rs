//! Machine-readable per-run artifacts (`target/obs/*.json`).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::json::Json;
use crate::{Histogram, Registry};

/// On-disk schema version written into every manifest.
pub const SCHEMA_VERSION: u64 = 1;

/// A machine-readable record of one measurement run: what was run (name,
/// git revision, thread count, configuration), every counter snapshot,
/// and every histogram — serialized as pretty-printed JSON into
/// `target/obs/<name>.json`.
///
/// Manifests are what make perf runs comparable across commits: the
/// `fig*` binaries and the criterion micro-benches each emit one, so two
/// checkouts can be diffed artifact-to-artifact instead of eyeballing
/// console tables.
///
/// # Example
///
/// ```
/// use obs::{Histogram, RunManifest};
///
/// let mut m = RunManifest::new("fig14c");
/// m.set_threads(4);
/// m.config("cores", "512");
/// m.counter("w2e11.cycles", 123_911);
/// let mut h = Histogram::new();
/// h.record_value(242);
/// m.histogram("service_cycles", h);
///
/// let text = m.to_json();
/// let back = RunManifest::from_json(&text).unwrap();
/// assert_eq!(back, m);
/// assert_eq!(back.histograms()[0].1.p50(), Some(242));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    name: String,
    git_rev: String,
    threads: u64,
    config: Vec<(String, String)>,
    counters: Registry,
    histograms: Vec<(String, Histogram)>,
}

impl RunManifest {
    /// Creates a manifest for run `name` with the current git revision
    /// (see [`git_rev`]) and a thread count of 1.
    ///
    /// The config block is pre-seeded so artifacts are self-describing:
    /// `obs_feature` records whether instrumentation was compiled in,
    /// and each of the workspace's behaviour-shaping env overrides
    /// (`ACCEL_SW_BATCH`, `ACCEL_THREADS`, `ACCEL_OBS_DIR`) is recorded
    /// as `env.<NAME>` when set.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let mut config = vec![(
            "obs_feature".to_string(),
            if cfg!(feature = "enabled") { "on" } else { "off" }.to_string(),
        )];
        for key in ["ACCEL_SW_BATCH", "ACCEL_THREADS", "ACCEL_OBS_DIR"] {
            if let Ok(value) = std::env::var(key) {
                config.push((format!("env.{key}"), value));
            }
        }
        Self {
            name: name.into(),
            git_rev: git_rev().to_string(),
            threads: 1,
            config,
            counters: Registry::new(),
            histograms: Vec::new(),
        }
    }

    /// The run name (also the output file stem).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records the worker-thread count of the run.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads as u64;
    }

    /// The recorded worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads as usize
    }

    /// Records one configuration key/value pair (window size, core count,
    /// network variant, …). Order is preserved.
    pub fn config(&mut self, key: impl Into<String>, value: impl ToString) {
        self.config.push((key.into(), value.to_string()));
    }

    /// The recorded configuration pairs, in insertion order.
    #[must_use]
    pub fn config_entries(&self) -> &[(String, String)] {
        &self.config
    }

    /// Records one named counter value.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.record(name, value);
    }

    /// Absorbs every entry of a [`Registry`] snapshot.
    pub fn record_registry(&mut self, reg: &Registry) {
        self.counters.absorb(reg);
    }

    /// The counter snapshot.
    #[must_use]
    pub fn counters(&self) -> &Registry {
        &self.counters
    }

    /// Attaches a named histogram (replacing an existing one of the same
    /// name).
    pub fn histogram(&mut self, name: impl Into<String>, hist: Histogram) {
        let name = name.into();
        if let Some(slot) = self.histograms.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = hist;
        } else {
            self.histograms.push((name, hist));
        }
    }

    /// The attached histograms, in insertion order.
    #[must_use]
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// Serializes to pretty-printed JSON (schema: see module docs and
    /// `EXPERIMENTS.md`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut root = vec![
            ("schema".to_string(), Json::UInt(SCHEMA_VERSION)),
            ("name".to_string(), Json::Str(self.name.clone())),
            ("git_rev".to_string(), Json::Str(self.git_rev.clone())),
            ("threads".to_string(), Json::UInt(self.threads)),
        ];
        root.push((
            "config".to_string(),
            Json::Obj(
                self.config
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
        root.push((
            "counters".to_string(),
            Json::Obj(
                self.counters
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::UInt(v)))
                    .collect(),
            ),
        ));
        root.push((
            "histograms".to_string(),
            Json::Obj(
                self.histograms
                    .iter()
                    .map(|(name, h)| (name.clone(), hist_to_json(h)))
                    .collect(),
            ),
        ));
        let mut text = Json::Obj(root).to_string();
        text.push('\n');
        text
    }

    /// Parses a manifest previously produced by [`RunManifest::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a missing field, or an
    /// unknown schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("missing `schema`")?;
        if schema != SCHEMA_VERSION {
            return Err(format!("unknown schema version {schema}"));
        }
        let field = |k: &str| -> Result<&Json, String> {
            root.get(k).ok_or(format!("missing `{k}`"))
        };
        let mut m = RunManifest {
            name: field("name")?.as_str().ok_or("`name` must be a string")?.into(),
            git_rev: field("git_rev")?
                .as_str()
                .ok_or("`git_rev` must be a string")?
                .into(),
            threads: field("threads")?
                .as_u64()
                .ok_or("`threads` must be an integer")?,
            config: Vec::new(),
            counters: Registry::new(),
            histograms: Vec::new(),
        };
        for (k, v) in field("config")?.as_obj().ok_or("`config` must be an object")? {
            m.config
                .push((k.clone(), v.as_str().ok_or("config values are strings")?.into()));
        }
        for (k, v) in field("counters")?
            .as_obj()
            .ok_or("`counters` must be an object")?
        {
            m.counters
                .record(k.clone(), v.as_u64().ok_or("counter values are u64")?);
        }
        for (k, v) in field("histograms")?
            .as_obj()
            .ok_or("`histograms` must be an object")?
        {
            m.histograms.push((k.clone(), hist_from_json(v)?));
        }
        Ok(m)
    }

    /// Writes `<dir>/<name>.json`, creating `dir` as needed. Returns the
    /// written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let stem: String = self
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = dir.join(format!("{stem}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the manifest to the default artifact directory (see
    /// [`default_dir`]). Returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> io::Result<PathBuf> {
        self.write_to_dir(default_dir())
    }
}

/// The default artifact directory: `$ACCEL_OBS_DIR` if set, else
/// `target/obs` under the enclosing workspace root (the nearest ancestor
/// of the working directory holding a `Cargo.lock`; cargo sets the
/// working directory to the *package* root for benches and tests, so a
/// plain relative path would scatter artifacts across `crates/*/target`).
/// Falls back to `./target/obs` outside any workspace.
#[must_use]
pub fn default_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("ACCEL_OBS_DIR") {
        return PathBuf::from(dir);
    }
    let target = PathBuf::from("target").join("obs");
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            if dir.join("Cargo.lock").is_file() {
                return dir.join(&target);
            }
        }
    }
    target
}

/// The git revision baked into manifests: `git rev-parse --short=12 HEAD`
/// in the working directory, or `"unknown"` when git (or a repository) is
/// unavailable. Cached for the process lifetime.
#[must_use]
pub fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "--short=12", "HEAD"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string())
    })
}

fn hist_to_json(h: &Histogram) -> Json {
    let buckets = h
        .rows()
        .into_iter()
        .map(|(low, _, n)| Json::Arr(vec![Json::UInt(low), Json::UInt(n)]))
        .collect();
    let opt = |v: Option<u64>| v.map_or(Json::Null, Json::UInt);
    Json::Obj(vec![
        ("count".to_string(), Json::UInt(h.total())),
        ("sum".to_string(), opt(h.sum())),
        ("min".to_string(), opt(h.min())),
        ("max".to_string(), opt(h.max())),
        // Derived quantiles, for human readers and plotting scripts; the
        // parser rebuilds from the buckets and ignores these.
        ("p50".to_string(), opt(h.p50())),
        ("p95".to_string(), opt(h.p95())),
        ("p99".to_string(), opt(h.p99())),
        ("buckets".to_string(), Json::Arr(buckets)),
    ])
}

fn hist_from_json(v: &Json) -> Result<Histogram, String> {
    let count = v
        .get("count")
        .and_then(Json::as_u64)
        .ok_or("histogram missing `count`")?;
    let num = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    let mut rows = Vec::new();
    for item in v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram missing `buckets`")?
    {
        let pair = item.as_arr().ok_or("bucket rows are [low, count] pairs")?;
        match pair {
            [low, n] => rows.push((
                low.as_u64().ok_or("bucket low must be u64")?,
                n.as_u64().ok_or("bucket count must be u64")?,
            )),
            _ => return Err("bucket rows are [low, count] pairs".into()),
        }
    }
    Histogram::from_parts(&rows, count, num("sum"), num("min"), num("max"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut m = RunManifest::new("unit-test run/42");
        m.set_threads(4);
        m.config("cores", "512");
        m.config("window", "2^11");
        m.counter("cycles", (1u64 << 53) + 7); // beyond f64 integer range
        m.counter("stalls", 0);
        let mut h = Histogram::new();
        for v in [4u64, 5, 6, 900, 1_000_000] {
            h.record_value(v);
        }
        m.histogram("service_cycles", h);
        m.histogram("empty", Histogram::new());
        m
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let m = sample();
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.counters().get("cycles"), Some((1u64 << 53) + 7));
        assert_eq!(back.histograms()[0].1.total(), 5);
        assert_eq!(back.histograms()[1].1.total(), 0);
    }

    #[test]
    fn rejects_wrong_schema_and_missing_fields() {
        assert!(RunManifest::from_json("{}").is_err());
        let bumped = sample().to_json().replacen("\"schema\": 1", "\"schema\": 99", 1);
        assert!(RunManifest::from_json(&bumped).unwrap_err().contains("schema"));
    }

    #[test]
    fn write_to_dir_sanitizes_the_file_name() {
        let dir = std::env::temp_dir().join(format!("obs-test-{}", std::process::id()));
        let path = sample().write_to_dir(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "unit-test_run_42.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunManifest::from_json(&text).unwrap(), sample());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn new_manifests_record_the_feature_state() {
        let m = RunManifest::new("x");
        let expected = if cfg!(feature = "enabled") { "on" } else { "off" };
        assert_eq!(
            m.config_entries().first(),
            Some(&("obs_feature".to_string(), expected.to_string()))
        );
        // Every pre-seeded entry survives the JSON round trip.
        assert_eq!(RunManifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn git_rev_is_stable_within_a_process() {
        assert_eq!(git_rev(), git_rev());
        assert!(!git_rev().is_empty());
    }
}
