//! Per-tuple latency provenance: 1-in-N sampled stage-by-stage
//! timestamps.
//!
//! End-to-end latency histograms say how long tuples took; provenance
//! says *where the time went*. A [`ProvenanceTracker`] tags every N-th
//! ingested tuple (one in flight at a time) and records a timestamp at
//! each pipeline stage — ingest → distribute → probe → gather → emit —
//! accumulating the four stage deltas and the end-to-end total into
//! histograms that [`record_into`](ProvenanceTracker::record_into)
//! merges into a [`RunManifest`].
//!
//! Stamps are clamped monotonic (a stage timestamp is at least the
//! previous stage's), so for every completed sample the four stage
//! deltas sum *exactly* to the end-to-end total — the exported
//! `prov.*_sum` counters make that invariant checkable from the
//! manifest alone.
//!
//! The tracker is time-domain agnostic: the hardware pipelines stamp
//! simulation cycles, a software pipeline could stamp nanoseconds.
//!
//! # Example
//!
//! ```
//! use obs::provenance::{ProvenanceTracker, Stage};
//!
//! let mut p = ProvenanceTracker::new(1); // sample every tuple
//! assert!(p.offer(7, 100));              // ingest at cycle 100
//! p.stamp(Stage::Distribute, 103);
//! p.stamp(Stage::Probe, 120);
//! p.stamp(Stage::Gather, 125);
//! p.stamp(Stage::Emit, 126);
//! assert_eq!(p.completed(), 1);
//! assert_eq!(p.total_sum(), 26);
//! assert_eq!(p.stage_sums().iter().sum::<u64>(), 26);
//! ```

use crate::{Histogram, RunManifest};

/// A pipeline stage boundary, stamped in order after ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The distribution network delivered the tuple to every core.
    Distribute,
    /// The last core finished probing its sub-window.
    Probe,
    /// The last result reached the gathering-tree sink (equals the probe
    /// stamp when the tuple matched nothing).
    Gather,
    /// The harness drained the results (sample complete).
    Emit,
}

/// Number of stamped stages ([`Stage`] variants).
pub const STAGES: usize = 4;

impl Stage {
    /// Stage index in stamping order.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::Distribute => 0,
            Stage::Probe => 1,
            Stage::Gather => 2,
            Stage::Emit => 3,
        }
    }

    /// Stable lower-case name (used in manifest keys).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Distribute => "distribute",
            Stage::Probe => "probe",
            Stage::Gather => "gather",
            Stage::Emit => "emit",
        }
    }
}

/// The one sampled tuple currently in flight.
#[derive(Debug, Clone, Copy)]
struct Flight {
    id: u64,
    ingest: u64,
    /// Timestamp of the last stamped stage (starts at `ingest`).
    last: u64,
    /// Index of the next stage expected ([`Stage::index`] order).
    next: usize,
}

/// Samples one in every `every` ingested tuples and accumulates its
/// per-stage latency breakdown (see the module docs).
///
/// At most one sample is in flight at a time, so the tracker is O(1)
/// space and the pipeline only ever watches for a single tagged tuple.
#[derive(Debug, Clone)]
pub struct ProvenanceTracker {
    every: u64,
    seen: u64,
    flight: Option<Flight>,
    sampled: u64,
    completed: u64,
    stage_hist: [Histogram; STAGES],
    total_hist: Histogram,
    stage_sum: [u64; STAGES],
    total_sum: u64,
}

impl ProvenanceTracker {
    /// Creates a tracker sampling 1-in-`every` tuples (clamped to ≥ 1).
    #[must_use]
    pub fn new(every: u64) -> Self {
        Self {
            every: every.max(1),
            seen: 0,
            flight: None,
            sampled: 0,
            completed: 0,
            stage_hist: [Histogram::new(), Histogram::new(), Histogram::new(), Histogram::new()],
            total_hist: Histogram::new(),
            stage_sum: [0; STAGES],
            total_sum: 0,
        }
    }

    /// Observes one ingested tuple at timestamp `now`. Returns `true`
    /// when this tuple becomes the in-flight sample (the caller should
    /// then watch it through the pipeline and [`stamp`] each stage).
    ///
    /// A new sample starts only when none is in flight and the tuple's
    /// ordinal hits the sampling period, so a stuck sample never blocks
    /// later ones from the same ordinal class.
    ///
    /// [`stamp`]: ProvenanceTracker::stamp
    pub fn offer(&mut self, id: u64, now: u64) -> bool {
        let pick = self.flight.is_none() && self.seen.is_multiple_of(self.every);
        self.seen = self.seen.wrapping_add(1);
        if pick {
            self.flight = Some(Flight { id, ingest: now, last: now, next: 0 });
            self.sampled += 1;
        }
        pick
    }

    /// The id of the in-flight sample, if any.
    #[must_use]
    pub fn in_flight(&self) -> Option<u64> {
        self.flight.map(|f| f.id)
    }

    /// Stamps the in-flight sample at `stage`. Returns the
    /// `(previous, clamped)` timestamps of the stage interval when the
    /// stamp was accepted (stages must arrive in order; out-of-order or
    /// duplicate stamps and stamps with no sample in flight return
    /// `None`).
    ///
    /// The clamped timestamp is `max(now, previous)`, which keeps stage
    /// deltas non-negative and their sum exactly equal to the end-to-end
    /// total. [`Stage::Emit`] completes the sample.
    pub fn stamp(&mut self, stage: Stage, now: u64) -> Option<(u64, u64)> {
        let flight = self.flight.as_mut()?;
        if stage.index() != flight.next {
            return None;
        }
        let prev = flight.last;
        let clamped = now.max(prev);
        let i = stage.index();
        self.stage_hist[i].record_value(clamped - prev);
        self.stage_sum[i] += clamped - prev;
        flight.last = clamped;
        flight.next += 1;
        if stage == Stage::Emit {
            let total = clamped - flight.ingest;
            self.total_hist.record_value(total);
            self.total_sum += total;
            self.completed += 1;
            self.flight = None;
        }
        Some((prev, clamped))
    }

    /// Abandons the in-flight sample (end of run with the pipeline not
    /// fully drained). Its partial stamps stay in the stage histograms.
    pub fn abandon(&mut self) {
        self.flight = None;
    }

    /// The sampling period.
    #[must_use]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Samples started.
    #[must_use]
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// Samples stamped all the way through [`Stage::Emit`].
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Exact per-stage delta sums, indexed by [`Stage::index`].
    #[must_use]
    pub fn stage_sums(&self) -> [u64; STAGES] {
        self.stage_sum
    }

    /// Exact sum of end-to-end totals over completed samples. Equals the
    /// sum of [`stage_sums`](ProvenanceTracker::stage_sums) when every
    /// sample completed.
    #[must_use]
    pub fn total_sum(&self) -> u64 {
        self.total_sum
    }

    /// The end-to-end latency histogram over completed samples.
    #[must_use]
    pub fn total_histogram(&self) -> &Histogram {
        &self.total_hist
    }

    /// The delta histogram for `stage`.
    #[must_use]
    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        &self.stage_hist[stage.index()]
    }

    /// Merges the breakdown into a manifest: histograms
    /// `prov.<stage>_<unit>` and `prov.total_<unit>`, plus counters
    /// `prov.sampled`, `prov.completed`, `prov.sample_every`,
    /// `prov.<stage>_sum`, and `prov.total_sum`.
    pub fn record_into(&self, m: &mut RunManifest, unit: &str) {
        for stage in [Stage::Distribute, Stage::Probe, Stage::Gather, Stage::Emit] {
            m.histogram(
                format!("prov.{}_{unit}", stage.name()),
                self.stage_hist[stage.index()].clone(),
            );
            m.counter(format!("prov.{}_sum", stage.name()), self.stage_sum[stage.index()]);
        }
        m.histogram(format!("prov.total_{unit}"), self.total_hist.clone());
        m.counter("prov.total_sum", self.total_sum);
        m.counter("prov.sampled", self.sampled);
        m.counter("prov.completed", self.completed);
        m.counter("prov.sample_every", self.every);
    }

    /// Folds another tracker's accumulated breakdown into this one:
    /// histograms, sums, and sample counts add. The sampling period and
    /// any in-flight sample of `other` are ignored — merge finished
    /// trackers (e.g. one per measured point) into a figure-wide one.
    pub fn merge(&mut self, other: &ProvenanceTracker) {
        for i in 0..STAGES {
            self.stage_hist[i].merge(&other.stage_hist[i]);
            self.stage_sum[i] += other.stage_sum[i];
        }
        self.total_hist.merge(&other.total_hist);
        self.total_sum += other.total_sum;
        self.sampled += other.sampled;
        self.completed += other.completed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_one_in_every_n_with_one_in_flight() {
        let mut p = ProvenanceTracker::new(4);
        assert!(p.offer(0, 10)); // ordinal 0 sampled
        assert!(!p.offer(1, 11));
        assert!(!p.offer(2, 12));
        assert!(!p.offer(3, 13));
        assert!(!p.offer(4, 14)); // ordinal 4 hits the period but one is in flight
        assert_eq!(p.sampled(), 1);
        assert_eq!(p.in_flight(), Some(0));
        for (stage, at) in [
            (Stage::Distribute, 15),
            (Stage::Probe, 20),
            (Stage::Gather, 22),
            (Stage::Emit, 23),
        ] {
            assert!(p.stamp(stage, at).is_some());
        }
        assert_eq!(p.in_flight(), None);
        assert!(!p.offer(5, 24)); // ordinal 5: off-period
        assert!(!p.offer(6, 25));
        assert!(!p.offer(7, 26));
        assert!(p.offer(8, 27)); // next on-period ordinal samples again
        assert_eq!(p.sampled(), 2);
    }

    #[test]
    fn stage_deltas_sum_exactly_to_total() {
        let mut p = ProvenanceTracker::new(1);
        // Second stamp goes *backwards* (out-of-domain clock skew):
        // clamping keeps the invariant.
        assert!(p.offer(1, 100));
        p.stamp(Stage::Distribute, 110);
        p.stamp(Stage::Probe, 105); // clamped to 110
        p.stamp(Stage::Gather, 140);
        p.stamp(Stage::Emit, 141);
        assert!(p.offer(2, 200));
        p.stamp(Stage::Distribute, 203);
        p.stamp(Stage::Probe, 220);
        p.stamp(Stage::Gather, 220); // zero-match: same cycle
        p.stamp(Stage::Emit, 230);
        assert_eq!(p.completed(), 2);
        assert_eq!(p.total_sum(), 41 + 30);
        assert_eq!(p.stage_sums().iter().sum::<u64>(), p.total_sum());
        assert_eq!(p.total_histogram().total(), 2);
        assert_eq!(p.stage_histogram(Stage::Probe).total(), 2);
    }

    #[test]
    fn out_of_order_and_duplicate_stamps_are_rejected() {
        let mut p = ProvenanceTracker::new(1);
        assert_eq!(p.stamp(Stage::Distribute, 5), None); // nothing in flight
        assert!(p.offer(1, 0));
        assert_eq!(p.stamp(Stage::Probe, 5), None); // Distribute first
        assert_eq!(p.stamp(Stage::Distribute, 5), Some((0, 5)));
        assert_eq!(p.stamp(Stage::Distribute, 6), None); // duplicate
        assert_eq!(p.stamp(Stage::Emit, 7), None); // skipping stages
        assert_eq!(p.stamp(Stage::Probe, 7), Some((5, 7)));
    }

    #[test]
    fn abandon_clears_the_flight_without_completing() {
        let mut p = ProvenanceTracker::new(1);
        assert!(p.offer(1, 0));
        p.stamp(Stage::Distribute, 3);
        p.abandon();
        assert_eq!(p.in_flight(), None);
        assert_eq!(p.completed(), 0);
        assert_eq!(p.sampled(), 1);
        // The partial stamp stays in the stage histogram.
        assert_eq!(p.stage_histogram(Stage::Distribute).total(), 1);
        assert!(p.offer(2, 10)); // a new sample can start
    }

    #[test]
    fn record_into_exposes_breakdown_and_sums() {
        let mut p = ProvenanceTracker::new(2);
        assert!(p.offer(1, 0));
        p.stamp(Stage::Distribute, 2);
        p.stamp(Stage::Probe, 10);
        p.stamp(Stage::Gather, 11);
        p.stamp(Stage::Emit, 12);
        let mut m = RunManifest::new("prov-test");
        p.record_into(&mut m, "cycles");
        assert_eq!(m.counters().get("prov.sampled"), Some(1));
        assert_eq!(m.counters().get("prov.completed"), Some(1));
        assert_eq!(m.counters().get("prov.sample_every"), Some(2));
        assert_eq!(m.counters().get("prov.total_sum"), Some(12));
        let stage_total: u64 = ["distribute", "probe", "gather", "emit"]
            .iter()
            .map(|s| m.counters().get(&format!("prov.{s}_sum")).unwrap())
            .sum();
        assert_eq!(stage_total, 12);
        let names: Vec<&str> = m.histograms().iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"prov.probe_cycles"));
        assert!(names.contains(&"prov.total_cycles"));
    }

    #[test]
    fn zero_period_clamps_to_one() {
        let mut p = ProvenanceTracker::new(0);
        assert_eq!(p.every(), 1);
        assert!(p.offer(1, 0));
    }

    #[test]
    fn merge_adds_breakdowns_and_preserves_stage_sum_invariant() {
        let run = |base: u64| {
            let mut p = ProvenanceTracker::new(1);
            assert!(p.offer(base, base));
            p.stamp(Stage::Distribute, base + 1);
            p.stamp(Stage::Probe, base + 4);
            p.stamp(Stage::Gather, base + 5);
            p.stamp(Stage::Emit, base + 7);
            p
        };
        let mut a = run(10);
        let b = run(100);
        a.merge(&b);
        assert_eq!(a.sampled(), 2);
        assert_eq!(a.completed(), 2);
        assert_eq!(a.total_sum(), 14);
        assert_eq!(a.stage_sums().iter().sum::<u64>(), a.total_sum());
        assert_eq!(a.total_histogram().total(), 2);
        // The in-flight sample of `other` does not leak across.
        assert_eq!(a.in_flight(), None);
    }
}
