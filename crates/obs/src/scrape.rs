//! A read-only Prometheus-style text exposition endpoint over std TCP.
//!
//! [`serve`] binds `127.0.0.1:<port>` (port 0 picks an ephemeral port)
//! and answers every connection with one [`LiveRegistry`] snapshot
//! rendered as Prometheus text exposition — `# TYPE` line plus
//! `name value` per metric, dots mapped to underscores. The server is
//! deliberately minimal: no routing, no keep-alive, no query parameters;
//! one scrape is one snapshot. That keeps it inside the workspace's
//! no-new-deps rule (std `TcpListener` only) while staying readable by
//! `curl`, Prometheus, and the `obstool scrape` helper.
//!
//! # Example
//!
//! ```
//! use obs::live::LiveRegistry;
//! use obs::scrape;
//!
//! let reg = LiveRegistry::new();
//! reg.counter("demo.events").add(3);
//! let server = scrape::serve(reg, 0).unwrap();
//! let body = scrape::scrape_once(&server.addr().to_string()).unwrap();
//! #[cfg(feature = "enabled")]
//! assert!(body.contains("demo_events 3"));
//! server.stop();
//! ```

use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::live::{LiveRegistry, MetricKind};

/// Renders one registry snapshot as Prometheus text exposition
/// (`text/plain; version=0.0.4`).
///
/// Metric names keep their dotted registry names with every character
/// outside `[a-zA-Z0-9_:]` mapped to `_`
/// (`splitjoin.worker.0.batches` → `splitjoin_worker_0_batches`).
#[must_use]
pub fn exposition(reg: &LiveRegistry) -> String {
    let mut out = String::new();
    for (name, value, kind) in reg.entries() {
        let metric = sanitize(&name);
        let kind = match kind {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        };
        out.push_str(&format!("# TYPE {metric} {kind}\n{metric} {value}\n"));
    }
    out
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A running scrape endpoint (see [`serve`]).
#[derive(Debug)]
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    scrapes: Arc<AtomicU64>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ScrapeServer {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections answered so far.
    #[must_use]
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stops accepting and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock `accept` with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `127.0.0.1:port` (0 = ephemeral) and serves [`exposition`]
/// snapshots of `reg` until [`ScrapeServer::stop`].
///
/// # Errors
///
/// Propagates the bind failure (port already taken, no loopback).
pub fn serve(reg: LiveRegistry, port: u16) -> io::Result<ScrapeServer> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let scrapes = Arc::new(AtomicU64::new(0));
    let thread_stop = Arc::clone(&stop);
    let thread_scrapes = Arc::clone(&scrapes);
    let handle = thread::Builder::new()
        .name("obs-scrape".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if thread_stop.load(Ordering::Relaxed) {
                    return;
                }
                let Ok(mut conn) = conn else { continue };
                // One snapshot per scrape; ignore per-connection errors
                // (a half-closed scraper must not kill the endpoint).
                let _ = answer(&mut conn, &reg);
                thread_scrapes.fetch_add(1, Ordering::Relaxed);
            }
        })
        .expect("spawn obs-scrape thread");
    Ok(ScrapeServer {
        addr,
        stop,
        scrapes,
        handle: Some(handle),
    })
}

fn answer(conn: &mut TcpStream, reg: &LiveRegistry) -> io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Drain the request line + headers (best effort; we answer any verb
    // and any path the same way).
    let mut buf = [0u8; 1024];
    let mut seen = Vec::new();
    loop {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = exposition(reg);
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    conn.write_all(response.as_bytes())?;
    conn.flush()
}

/// Performs one scrape as a client: connects, sends a minimal HTTP GET,
/// and returns the response body. This is what `obstool scrape` and the
/// CI smoke leg use.
///
/// # Errors
///
/// Propagates connection/read failures; a non-200 status or missing
/// header separator is reported as [`io::ErrorKind::InvalidData`].
pub fn scrape_once(addr: &str) -> io::Result<String> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    conn.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header separator"))?;
    if !head.starts_with("HTTP/1.0 200") && !head.starts_with("HTTP/1.1 200") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("non-200 response: {}", head.lines().next().unwrap_or("")),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_snapshots_until_stopped() {
        let reg = LiveRegistry::new();
        let events = reg.counter("unit.events");
        let depth = reg.gauge("unit.depth");
        events.add(41);
        depth.set(7);
        let server = serve(reg, 0).unwrap();
        let addr = server.addr().to_string();

        let body = scrape_once(&addr).unwrap();
        #[cfg(feature = "enabled")]
        {
            assert!(body.contains("# TYPE unit_events counter"), "{body}");
            assert!(body.contains("unit_events 41"), "{body}");
            assert!(body.contains("# TYPE unit_depth gauge"), "{body}");
            assert!(body.contains("unit_depth 7"), "{body}");
        }
        #[cfg(not(feature = "enabled"))]
        assert!(body.is_empty(), "{body}");

        // Scrapes see live updates — one scrape, one fresh snapshot.
        events.incr();
        let body = scrape_once(&addr).unwrap();
        #[cfg(feature = "enabled")]
        assert!(body.contains("unit_events 42"), "{body}");

        assert!(server.scrapes() >= 2);
        server.stop();
        // The port is released: connecting now fails or yields nothing.
        assert!(scrape_once(&addr).is_err());
    }

    #[test]
    fn sanitizes_metric_names() {
        assert_eq!(sanitize("splitjoin.worker.0.busy_ns"), "splitjoin_worker_0_busy_ns");
        assert_eq!(sanitize("a-b c:d"), "a_b_c:d");
    }
}
