//! The JSONL time-series artifact (`target/obs/<run>.series.jsonl`).
//!
//! A series file is the on-disk trail of a [`Sampler`](crate::live::Sampler)
//! run: line 1 is a self-describing header (schema version, run name, git
//! revision, sampling interval, configuration), and every further line is
//! one compact-JSON [`Snapshot`] — monotone `seq`,
//! monotonic `t_ns`, and the full name → value map. Appending a line per
//! tick (instead of one document at the end) means a crashed or killed run
//! still leaves a readable prefix.
//!
//! [`SeriesDoc::parse`] is the strict reader `obstool series validate`
//! and CI use; [`SeriesWriter`] is the streaming writer.
//!
//! # Example
//!
//! ```
//! use obs::live::Snapshot;
//! use obs::series::{SeriesDoc, SeriesHeader, SeriesWriter};
//!
//! let dir = std::env::temp_dir().join(format!("series-doc-{}", std::process::id()));
//! let mut w = SeriesWriter::create(&dir, SeriesHeader::new("demo", 25)).unwrap();
//! w.append(&Snapshot { t_ns: 10, values: vec![("a.n".into(), 1)] }).unwrap();
//! w.append(&Snapshot { t_ns: 20, values: vec![("a.n".into(), 5)] }).unwrap();
//! let path = w.finish().unwrap();
//!
//! let doc = SeriesDoc::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
//! assert_eq!(doc.samples.len(), 2);
//! assert_eq!(doc.series_of("a.n"), vec![(10, 1), (20, 5)]);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::live::Snapshot;

/// On-disk schema version written into every series header.
pub const SERIES_SCHEMA_VERSION: u64 = 1;

/// The self-describing first line of a series file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesHeader {
    /// Run name (also the output file stem: `<name>.series.jsonl`).
    pub name: String,
    /// Git revision of the producing build (see [`crate::git_rev`]).
    pub git_rev: String,
    /// The sampling interval the producer was configured with, in
    /// milliseconds.
    pub interval_ms: u64,
    /// Free-form configuration pairs (core count, window, transport, …),
    /// insertion-ordered.
    pub config: Vec<(String, String)>,
}

impl SeriesHeader {
    /// A header for run `name` stamped with the current [`crate::git_rev`].
    #[must_use]
    pub fn new(name: impl Into<String>, interval_ms: u64) -> Self {
        Self {
            name: name.into(),
            git_rev: crate::git_rev().to_string(),
            interval_ms,
            config: Vec::new(),
        }
    }

    /// Appends one configuration pair (order preserved).
    pub fn config(&mut self, key: impl Into<String>, value: impl ToString) {
        self.config.push((key.into(), value.to_string()));
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::UInt(SERIES_SCHEMA_VERSION)),
            ("kind".into(), Json::Str("series".into())),
            ("name".into(), Json::Str(self.name.clone())),
            ("git_rev".into(), Json::Str(self.git_rev.clone())),
            ("interval_ms".into(), Json::UInt(self.interval_ms)),
            (
                "config".into(),
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(root: &Json) -> Result<Self, String> {
        let schema = root
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("header missing `schema`")?;
        if schema != SERIES_SCHEMA_VERSION {
            return Err(format!("unknown series schema version {schema}"));
        }
        match root.get("kind").and_then(Json::as_str) {
            Some("series") => {}
            _ => return Err("header `kind` must be \"series\"".into()),
        }
        let text = |k: &str| -> Result<String, String> {
            root.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("header `{k}` must be a string"))
        };
        let mut header = Self {
            name: text("name")?,
            git_rev: text("git_rev")?,
            interval_ms: root
                .get("interval_ms")
                .and_then(Json::as_u64)
                .ok_or("header `interval_ms` must be a u64")?,
            config: Vec::new(),
        };
        for (k, v) in root
            .get("config")
            .and_then(Json::as_obj)
            .ok_or("header `config` must be an object")?
        {
            header.config.push((
                k.clone(),
                v.as_str().ok_or("config values are strings")?.to_string(),
            ));
        }
        Ok(header)
    }
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Zero-based sample index; strictly sequential within a file.
    pub seq: u64,
    /// Capture time, monotonic process nanoseconds (non-decreasing).
    pub t_ns: u64,
    /// `(name, value)` pairs as captured.
    pub values: Vec<(String, u64)>,
}

impl Sample {
    /// Looks up a value by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }
}

/// Streams snapshots into `<dir>/<name>.series.jsonl`, one compact JSON
/// line per sample after the header line.
#[derive(Debug)]
pub struct SeriesWriter {
    out: BufWriter<File>,
    path: PathBuf,
    next_seq: u64,
}

impl SeriesWriter {
    /// Creates (truncating) the series file for `header.name` under
    /// `dir`, creating `dir` as needed, and writes the header line. The
    /// file stem is sanitized exactly like manifest names.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(dir: impl AsRef<Path>, header: SeriesHeader) -> io::Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let stem: String = header
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = dir.join(format!("{stem}.series.jsonl"));
        let mut out = BufWriter::new(File::create(&path)?);
        writeln!(out, "{}", header.to_json().to_compact())?;
        Ok(Self {
            out,
            path,
            next_seq: 0,
        })
    }

    /// The path being written.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one snapshot as a sample line (assigning the next `seq`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, snap: &Snapshot) -> io::Result<()> {
        let line = Json::Obj(vec![
            ("seq".into(), Json::UInt(self.next_seq)),
            ("t_ns".into(), Json::UInt(snap.t_ns)),
            (
                "values".into(),
                Json::Obj(
                    snap.values
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::UInt(*v)))
                        .collect(),
                ),
            ),
        ]);
        writeln!(self.out, "{}", line.to_compact())?;
        self.next_seq += 1;
        Ok(())
    }

    /// Flushes and returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(mut self) -> io::Result<PathBuf> {
        self.out.flush()?;
        Ok(self.path)
    }
}

/// A fully parsed and validated series file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesDoc {
    /// The header line.
    pub header: SeriesHeader,
    /// Every sample line, in file order.
    pub samples: Vec<Sample>,
}

impl SeriesDoc {
    /// Parses and validates a series file.
    ///
    /// Validation is strict — this is the CI gate behind
    /// `obstool series validate`: the header must carry schema
    /// [`SERIES_SCHEMA_VERSION`] and `kind: "series"`; at least one
    /// sample must follow; `seq` must count 0, 1, 2, … exactly; `t_ns`
    /// must be non-decreasing; every value must be a JSON `u64`. Key sets
    /// may differ between samples (engines register mid-run).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line (1-based).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, first) = lines.next().ok_or("empty series file")?;
        let header = SeriesHeader::from_json(
            &Json::parse(first).map_err(|e| format!("line 1: {e}"))?,
        )
        .map_err(|e| format!("line 1: {e}"))?;
        let mut samples: Vec<Sample> = Vec::new();
        for (idx, line) in lines {
            let lineno = idx + 1;
            let root = Json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let num = |k: &str| -> Result<u64, String> {
                root.get(k)
                    .and_then(Json::as_u64)
                    .ok_or(format!("line {lineno}: `{k}` must be a u64"))
            };
            let seq = num("seq")?;
            if seq != samples.len() as u64 {
                return Err(format!(
                    "line {lineno}: seq {seq} out of order (expected {})",
                    samples.len()
                ));
            }
            let t_ns = num("t_ns")?;
            if let Some(prev) = samples.last() {
                if t_ns < prev.t_ns {
                    return Err(format!(
                        "line {lineno}: t_ns {t_ns} goes backwards (prev {})",
                        prev.t_ns
                    ));
                }
            }
            let mut values = Vec::new();
            for (k, v) in root
                .get("values")
                .and_then(Json::as_obj)
                .ok_or(format!("line {lineno}: `values` must be an object"))?
            {
                values.push((
                    k.clone(),
                    v.as_u64()
                        .ok_or(format!("line {lineno}: value `{k}` must be a u64"))?,
                ));
            }
            samples.push(Sample { seq, t_ns, values });
        }
        if samples.is_empty() {
            return Err("series has a header but no samples".into());
        }
        Ok(Self { header, samples })
    }

    /// Every key that appears in any sample, sorted and deduplicated.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self
            .samples
            .iter()
            .flat_map(|s| s.values.iter().map(|(k, _)| k.as_str()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The `(t_ns, value)` trajectory of one key, skipping samples that
    /// lack it.
    #[must_use]
    pub fn series_of(&self, key: &str) -> Vec<(u64, u64)> {
        self.samples
            .iter()
            .filter_map(|s| s.get(key).map(|v| (s.t_ns, v)))
            .collect()
    }

    /// The overall per-second rate of counter `key` across the file
    /// (`None` when the key appears fewer than twice or no time elapsed).
    #[must_use]
    pub fn rate_of(&self, key: &str) -> Option<f64> {
        let points = self.series_of(key);
        let (t0, v0) = *points.first()?;
        let (t1, v1) = *points.last()?;
        let dt = t1.saturating_sub(t0);
        if dt == 0 {
            return None;
        }
        Some(v1.saturating_sub(v0) as f64 * 1e9 / dt as f64)
    }

    /// Wall-clock span covered by the samples, in nanoseconds.
    #[must_use]
    pub fn span_ns(&self) -> u64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.t_ns.saturating_sub(a.t_ns),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_demo(dir: &Path) -> PathBuf {
        let mut header = SeriesHeader::new("demo run", 25);
        header.config("cores", 4);
        let mut w = SeriesWriter::create(dir, header).unwrap();
        for (t, v) in [(100u64, 0u64), (200, 512), (300, 2048)] {
            w.append(&Snapshot {
                t_ns: t,
                values: vec![("j.tuples".into(), v), ("j.depth".into(), v / 100)],
            })
            .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn writes_parses_and_validates() {
        let dir = std::env::temp_dir().join(format!("series-test-{}", std::process::id()));
        let path = write_demo(&dir);
        assert_eq!(path.file_name().unwrap(), "demo_run.series.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = SeriesDoc::parse(&text).unwrap();
        assert_eq!(doc.header.name, "demo run");
        assert_eq!(doc.header.interval_ms, 25);
        assert_eq!(doc.header.config, vec![("cores".to_string(), "4".to_string())]);
        assert_eq!(doc.samples.len(), 3);
        assert_eq!(doc.keys(), vec!["j.depth", "j.tuples"]);
        assert_eq!(doc.series_of("j.tuples"), vec![(100, 0), (200, 512), (300, 2048)]);
        assert_eq!(doc.rate_of("j.tuples"), Some(2048.0 * 1e9 / 200.0));
        assert_eq!(doc.span_ns(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_structural_damage() {
        let dir = std::env::temp_dir().join(format!("series-bad-{}", std::process::id()));
        let text = std::fs::read_to_string(write_demo(&dir)).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        assert!(SeriesDoc::parse("").unwrap_err().contains("empty"));
        // Header alone is not a valid series.
        let header_only = text.lines().next().unwrap();
        assert!(SeriesDoc::parse(header_only).unwrap_err().contains("no samples"));
        // Wrong schema version.
        assert!(SeriesDoc::parse(&text.replacen("\"schema\":1", "\"schema\":9", 1))
            .unwrap_err()
            .contains("schema"));
        // Broken seq ordering.
        assert!(SeriesDoc::parse(&text.replacen("\"seq\":1", "\"seq\":7", 1))
            .unwrap_err()
            .contains("out of order"));
        // Time going backwards.
        assert!(SeriesDoc::parse(&text.replacen("\"t_ns\":300", "\"t_ns\":50", 1))
            .unwrap_err()
            .contains("backwards"));
        // Non-u64 value.
        assert!(SeriesDoc::parse(&text.replacen("\"j.depth\":5", "\"j.depth\":-5", 1))
            .unwrap_err()
            .contains("u64"));
    }

    #[test]
    fn samples_may_grow_their_key_set() {
        let header = "{\"schema\":1,\"kind\":\"series\",\"name\":\"x\",\"git_rev\":\"abc\",\"interval_ms\":10,\"config\":{}}";
        let text = format!(
            "{header}\n{}\n{}\n",
            "{\"seq\":0,\"t_ns\":1,\"values\":{\"a\":1}}",
            "{\"seq\":1,\"t_ns\":2,\"values\":{\"a\":2,\"b\":9}}",
        );
        let doc = SeriesDoc::parse(&text).unwrap();
        assert_eq!(doc.keys(), vec!["a", "b"]);
        assert_eq!(doc.series_of("b"), vec![(2, 9)]);
    }
}
