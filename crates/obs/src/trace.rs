//! Structured span tracing with Chrome trace-event (Perfetto) export.
//!
//! Counters say *that* something happened; spans say *when*. This module
//! records `(name, start, duration)` spans into bounded per-worker
//! [`TraceRing`]s — one ring per join core, tree stage, or worker thread,
//! owned by that component, written without any synchronization — and
//! exports a [`TraceSet`] of rings as a Chrome trace-event JSON file
//! (`target/obs/<name>.trace.json`) that loads directly in
//! <https://ui.perfetto.dev>.
//!
//! Two time domains coexist in one trace:
//!
//! * **[`TimeDomain::Cycles`]** — simulation timestamps from `hwsim`
//!   components (join cores, distribution/gathering trees). One cycle is
//!   rendered as one microsecond on the timeline.
//! * **[`TimeDomain::Wall`]** — wall-clock nanoseconds (see [`now_ns`])
//!   from the threaded software data path and the `ParSimulator` worker
//!   pool.
//!
//! Rings are *flight recorders*: when full they overwrite the oldest
//! span and count the overwrite in [`TraceRing::dropped`], so the hot
//! path never allocates after construction and never blocks. Tracing is
//! globally off until a harness calls [`enable`]; with the crate's
//! `enabled` Cargo feature off, [`enabled`] is a `const false` and no
//! ring is ever constructed — the golden cycle-count pins hold with
//! tracing on, off, and compiled out.
//!
//! # Example
//!
//! ```
//! use obs::trace::{TimeDomain, TraceRing, TraceSet};
//!
//! let mut ring = TraceRing::with_capacity("core.0", TimeDomain::Cycles, 8);
//! ring.record("probe", 100, 12);
//! ring.record_arg("probe", 120, 9, 2); // 2 matches
//! assert_eq!(ring.len(), 2);
//!
//! let mut set = TraceSet::new("example");
//! set.push(ring);
//! let json = set.to_json();
//! assert!(obs::trace::validate(&json).is_ok());
//! ```

use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Instant;

use crate::json::Json;

/// Which clock a ring's timestamps come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeDomain {
    /// Simulated clock cycles (deterministic; rendered as µs in Perfetto).
    Cycles,
    /// Wall-clock nanoseconds since the process trace anchor ([`now_ns`]).
    Wall,
}

/// One recorded span: a named interval with an optional integer payload
/// (match count, batch length, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Span name (static so recording never allocates).
    pub name: &'static str,
    /// Start timestamp in the ring's [`TimeDomain`].
    pub start: u64,
    /// Duration in the same unit as `start`.
    pub dur: u64,
    /// Free-form integer argument (exported as `args.arg`).
    pub arg: u64,
}

/// A bounded, overwrite-oldest span buffer owned by one worker/component.
///
/// Recording is one bounds check and one array write — no locks, no
/// allocation (after construction), no system calls — so a ring can sit
/// on a simulation hot path without perturbing cycle-exact behaviour.
/// When the buffer is full the *oldest* span is overwritten (flight-
/// recorder semantics: the last `capacity` spans survive) and
/// [`dropped`](TraceRing::dropped) counts the loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRing {
    track: String,
    domain: TimeDomain,
    buf: Vec<Event>,
    /// Next overwrite position once `buf.len() == cap`.
    next: usize,
    dropped: u64,
    cap: usize,
}

impl TraceRing {
    /// Creates a ring named `track` using the process-global default
    /// capacity (see [`ring_capacity`]).
    #[must_use]
    pub fn new(track: impl Into<String>, domain: TimeDomain) -> Self {
        Self::with_capacity(track, domain, ring_capacity())
    }

    /// Creates a ring holding at most `capacity` spans (clamped to ≥ 1).
    #[must_use]
    pub fn with_capacity(track: impl Into<String>, domain: TimeDomain, capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            track: track.into(),
            domain,
            buf: Vec::with_capacity(cap),
            next: 0,
            dropped: 0,
            cap,
        }
    }

    /// Records a span with no argument.
    pub fn record(&mut self, name: &'static str, start: u64, dur: u64) {
        self.record_arg(name, start, dur, 0);
    }

    /// Records a span with an integer argument.
    pub fn record_arg(&mut self, name: &'static str, start: u64, dur: u64, arg: u64) {
        let e = Event { name, start, dur, arg };
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.next] = e;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// The retained spans in recording order (oldest first).
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Number of retained spans (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no span has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spans lost to overwriting (total recorded = `len() + dropped()`).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The track label (becomes the Perfetto thread name).
    #[must_use]
    pub fn track(&self) -> &str {
        &self.track
    }

    /// The ring's time domain.
    #[must_use]
    pub fn domain(&self) -> TimeDomain {
        self.domain
    }
}

#[cfg(feature = "enabled")]
mod runtime {
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(64);
    static RING_CAPACITY: AtomicUsize = AtomicUsize::new(512);

    /// Turns tracing on process-wide and sets the provenance sampling
    /// period (1-in-`sample_every` tuples; clamped to ≥ 1). Components
    /// constructed while tracing is on allocate their rings; components
    /// constructed while it is off carry `None` and stay span-free.
    pub fn enable(sample_every: u64) {
        SAMPLE_EVERY.store(sample_every.max(1), Ordering::Relaxed);
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns tracing off process-wide (existing rings keep their spans).
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether tracing is currently on.
    #[must_use]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// The provenance sampling period set by [`enable`].
    #[must_use]
    pub fn sample_every() -> u64 {
        SAMPLE_EVERY.load(Ordering::Relaxed)
    }

    /// Overrides the default per-ring capacity used by
    /// [`TraceRing::new`](super::TraceRing::new) (clamped to ≥ 1).
    pub fn set_ring_capacity(capacity: usize) {
        RING_CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    }

    /// The default per-ring capacity.
    #[must_use]
    pub fn ring_capacity() -> usize {
        RING_CAPACITY.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "enabled"))]
mod runtime {
    //! With the `enabled` feature off, tracing can never be turned on:
    //! [`enabled`] is `const false`, so every hook site's
    //! `trace::enabled().then(...)` collapses and no ring is built.

    /// No-op (the `enabled` Cargo feature is off).
    pub fn enable(_sample_every: u64) {}

    /// No-op (the `enabled` Cargo feature is off).
    pub fn disable() {}

    /// Always `false` (the `enabled` Cargo feature is off).
    #[must_use]
    pub const fn enabled() -> bool {
        false
    }

    /// The default sampling period (tracing can never be enabled).
    #[must_use]
    pub fn sample_every() -> u64 {
        64
    }

    /// No-op (the `enabled` Cargo feature is off).
    pub fn set_ring_capacity(_capacity: usize) {}

    /// The default per-ring capacity.
    #[must_use]
    pub fn ring_capacity() -> usize {
        512
    }
}

pub use runtime::{disable, enable, enabled, ring_capacity, sample_every, set_ring_capacity};

/// Wall-clock nanoseconds since the first call in this process.
///
/// All [`TimeDomain::Wall`] rings share this anchor, so spans from
/// different threads line up on one Perfetto timeline. Saturates after
/// ~584 years of process uptime.
#[must_use]
pub fn now_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Perfetto process id used for cycle-domain tracks.
const PID_CYCLES: u64 = 1;
/// Perfetto process id used for wall-clock tracks.
const PID_WALL: u64 = 2;

/// A named collection of rings, exportable as one Chrome trace-event
/// JSON document.
///
/// Cycle-domain rings land under process 1 ("simulated cycles", one
/// timeline microsecond per cycle) and wall-domain rings under process 2
/// ("wall clock"); each ring becomes one named thread track. Empty rings
/// are skipped.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    name: String,
    rings: Vec<TraceRing>,
}

impl TraceSet {
    /// Creates an empty set; `name` becomes the output file stem.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            rings: Vec::new(),
        }
    }

    /// The set name (output file stem).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one ring.
    pub fn push(&mut self, ring: TraceRing) {
        self.rings.push(ring);
    }

    /// Adds every ring from an iterator.
    pub fn extend(&mut self, rings: impl IntoIterator<Item = TraceRing>) {
        self.rings.extend(rings);
    }

    /// The collected rings.
    #[must_use]
    pub fn rings(&self) -> &[TraceRing] {
        &self.rings
    }

    /// True when every ring is empty (nothing to export).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(TraceRing::is_empty)
    }

    /// Builds the Chrome trace-event document
    /// (`{"traceEvents": [...], "otherData": {...}}`).
    ///
    /// Per track: one `ph:"M"` `thread_name` metadata event, then one
    /// `ph:"X"` complete event per span with `ts`/`dur` in microseconds
    /// (cycles map 1:1 to µs; wall nanoseconds are divided by 1000).
    /// `otherData` records per-track retained/dropped span counts.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut events = Vec::new();
        let mut other = vec![("trace_name".to_string(), Json::Str(self.name.clone()))];
        for (pid, label) in [(PID_CYCLES, "simulated cycles"), (PID_WALL, "wall clock")] {
            if self.rings.iter().any(|r| pid_of(r.domain) == pid && !r.is_empty()) {
                events.push(metadata(pid, 0, "process_name", label));
            }
        }
        let mut tid_by_pid = [0u64; 2];
        for ring in &self.rings {
            if ring.is_empty() {
                continue;
            }
            let pid = pid_of(ring.domain);
            let slot = (pid - 1) as usize;
            tid_by_pid[slot] += 1;
            let tid = tid_by_pid[slot];
            events.push(metadata(pid, tid, "thread_name", ring.track()));
            for e in ring.events() {
                let (ts, dur) = match ring.domain {
                    TimeDomain::Cycles => (Json::UInt(e.start), Json::UInt(e.dur)),
                    TimeDomain::Wall => (
                        Json::Float(e.start as f64 / 1_000.0),
                        Json::Float(e.dur as f64 / 1_000.0),
                    ),
                };
                events.push(Json::Obj(vec![
                    ("name".to_string(), Json::Str(e.name.to_string())),
                    ("ph".to_string(), Json::Str("X".to_string())),
                    ("pid".to_string(), Json::UInt(pid)),
                    ("tid".to_string(), Json::UInt(tid)),
                    ("ts".to_string(), ts),
                    ("dur".to_string(), dur),
                    (
                        "args".to_string(),
                        Json::Obj(vec![("arg".to_string(), Json::UInt(e.arg))]),
                    ),
                ]));
            }
            other.push((
                format!("track.{}", ring.track()),
                Json::Obj(vec![
                    ("events".to_string(), Json::UInt(ring.len() as u64)),
                    ("dropped".to_string(), Json::UInt(ring.dropped())),
                ]),
            ));
        }
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("otherData".to_string(), Json::Obj(other)),
        ])
    }

    /// Writes `<dir>/<sanitized name>.trace.json`, creating `dir` as
    /// needed. Returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let stem: String = self
            .name
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
            .collect();
        let path = dir.join(format!("{stem}.trace.json"));
        let mut text = self.to_json().to_string();
        text.push('\n');
        std::fs::write(&path, text)?;
        Ok(path)
    }

    /// Writes the trace to the default artifact directory (see
    /// [`default_dir`](crate::default_dir)). Returns the written path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_default(&self) -> io::Result<PathBuf> {
        self.write_to_dir(crate::default_dir())
    }
}

fn pid_of(domain: TimeDomain) -> u64 {
    match domain {
        TimeDomain::Cycles => PID_CYCLES,
        TimeDomain::Wall => PID_WALL,
    }
}

fn metadata(pid: u64, tid: u64, kind: &str, name: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(kind.to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::UInt(pid)),
        ("tid".to_string(), Json::UInt(tid)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(name.to_string()))]),
        ),
    ])
}

/// What [`validate`] found in a trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of `ph:"X"` complete (span) events.
    pub spans: usize,
    /// `(track label, span count)` per track, in document order. The
    /// label comes from the `thread_name` metadata, falling back to
    /// `pid.tid`.
    pub tracks: Vec<(String, usize)>,
    /// Spans reported dropped by the recorder (`otherData` totals).
    pub dropped: u64,
}

/// Checks that `doc` is a well-formed Chrome trace-event document of the
/// shape this module writes, and summarizes it.
///
/// Verifies the `traceEvents` array exists and that every event carries
/// the schema's required fields: a string `name`, a string `ph`, integer
/// `pid`/`tid`, and — for `ph:"X"` spans — numeric `ts` and `dur`.
///
/// # Errors
///
/// Returns a message naming the first malformed event.
pub fn validate(doc: &Json) -> Result<TraceSummary, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let is_num = |v: &Json| matches!(v, Json::UInt(_) | Json::Int(_) | Json::Float(_));
    let mut names: Vec<((u64, u64), String)> = Vec::new();
    let mut counts: Vec<((u64, u64), usize)> = Vec::new();
    let mut spans = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let field = |k: &str| ev.get(k).ok_or(format!("event {i}: missing `{k}`"));
        let name = field("name")?
            .as_str()
            .ok_or(format!("event {i}: `name` must be a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or(format!("event {i}: `ph` must be a string"))?;
        let pid = field("pid")?
            .as_u64()
            .ok_or(format!("event {i}: `pid` must be an integer"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or(format!("event {i}: `tid` must be an integer"))?;
        match ph {
            "X" => {
                if !is_num(field("ts")?) || !is_num(field("dur")?) {
                    return Err(format!("event {i}: span `ts`/`dur` must be numbers"));
                }
                spans += 1;
                match counts.iter_mut().find(|(k, _)| *k == (pid, tid)) {
                    Some((_, n)) => *n += 1,
                    None => counts.push(((pid, tid), 1)),
                }
            }
            "M" => {
                if name == "thread_name" {
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or(format!("event {i}: thread_name without args.name"))?;
                    names.push(((pid, tid), label.to_string()));
                }
            }
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    let tracks = counts
        .into_iter()
        .map(|(key, n)| {
            let label = names
                .iter()
                .find(|(k, _)| *k == key)
                .map_or_else(|| format!("{}.{}", key.0, key.1), |(_, l)| l.clone());
            (label, n)
        })
        .collect();
    let mut dropped = 0u64;
    if let Some(other) = doc.get("otherData").and_then(Json::as_obj) {
        for (_, v) in other {
            dropped += v.get("dropped").and_then(Json::as_u64).unwrap_or(0);
        }
    }
    Ok(TraceSummary { spans, tracks, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_last_capacity_spans_and_counts_drops() {
        let mut r = TraceRing::with_capacity("t", TimeDomain::Cycles, 4);
        for i in 0..10u64 {
            r.record("s", i * 10, 5);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let starts: Vec<u64> = r.events().iter().map(|e| e.start).collect();
        assert_eq!(starts, vec![60, 70, 80, 90]); // the LAST 4, oldest first
    }

    #[test]
    fn ring_below_capacity_is_chronological_and_dropless() {
        let mut r = TraceRing::with_capacity("t", TimeDomain::Wall, 8);
        r.record_arg("a", 1, 2, 42);
        r.record("b", 3, 4);
        assert_eq!(r.dropped(), 0);
        let ev = r.events();
        assert_eq!(ev[0], Event { name: "a", start: 1, dur: 2, arg: 42 });
        assert_eq!(ev[1].name, "b");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = TraceRing::with_capacity("t", TimeDomain::Cycles, 0);
        r.record("a", 0, 1);
        r.record("b", 1, 1);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.events()[0].name, "b");
    }

    #[test]
    fn export_emits_chrome_schema_and_validates() {
        let mut cyc = TraceRing::with_capacity("core.0", TimeDomain::Cycles, 8);
        cyc.record_arg("probe", 100, 12, 3);
        let mut wall = TraceRing::with_capacity("sw.worker.1", TimeDomain::Wall, 8);
        wall.record("recv", 2_500, 1_000);
        let mut set = TraceSet::new("unit");
        set.push(cyc);
        set.push(wall);
        let doc = set.to_json();

        let summary = validate(&doc).unwrap();
        assert_eq!(summary.spans, 2);
        assert_eq!(
            summary.tracks,
            vec![("core.0".to_string(), 1), ("sw.worker.1".to_string(), 1)]
        );
        assert_eq!(summary.dropped, 0);

        // Domains land in distinct processes; wall ns are µs-scaled.
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span_of = |track_pid: u64| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(Json::as_str) == Some("X")
                        && e.get("pid").and_then(Json::as_u64) == Some(track_pid)
                })
                .unwrap()
        };
        assert_eq!(span_of(1).get("ts").unwrap(), &Json::UInt(100));
        assert_eq!(span_of(2).get("ts").unwrap(), &Json::Float(2.5));
    }

    #[test]
    fn export_round_trips_through_the_parser_with_escaping() {
        let mut r = TraceRing::with_capacity("weird \"track\"\nname\t\\", TimeDomain::Wall, 4);
        r.record("span", 1, 1);
        let mut set = TraceSet::new("escape");
        set.push(r);
        let text = set.to_json().to_string();
        let back = Json::parse(&text).unwrap();
        let summary = validate(&back).unwrap();
        assert_eq!(summary.tracks[0].0, "weird \"track\"\nname\t\\");
    }

    #[test]
    fn empty_rings_are_skipped_and_empty_set_still_validates() {
        let mut set = TraceSet::new("empty");
        set.push(TraceRing::with_capacity("never", TimeDomain::Cycles, 4));
        assert!(set.is_empty());
        let doc = set.to_json();
        assert_eq!(validate(&doc).unwrap().spans, 0);
        assert!(doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn dropped_counts_surface_in_other_data() {
        let mut r = TraceRing::with_capacity("lossy", TimeDomain::Cycles, 2);
        for i in 0..5 {
            r.record("s", i, 1);
        }
        let mut set = TraceSet::new("drops");
        set.push(r);
        assert_eq!(validate(&set.to_json()).unwrap().dropped, 3);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate(&Json::Null).is_err());
        assert!(validate(&Json::Obj(vec![])).is_err());
        // A span without `ts`.
        let bad = Json::Obj(vec![(
            "traceEvents".to_string(),
            Json::Arr(vec![Json::Obj(vec![
                ("name".to_string(), Json::Str("s".into())),
                ("ph".to_string(), Json::Str("X".into())),
                ("pid".to_string(), Json::UInt(1)),
                ("tid".to_string(), Json::UInt(1)),
            ])]),
        )]);
        assert!(validate(&bad).unwrap_err().contains("ts"));
    }

    #[test]
    fn write_to_dir_appends_trace_suffix() {
        let dir = std::env::temp_dir().join(format!("obs-trace-test-{}", std::process::id()));
        let mut r = TraceRing::with_capacity("t", TimeDomain::Cycles, 4);
        r.record("s", 0, 1);
        let mut set = TraceSet::new("fig15 run/1");
        set.push(r);
        let path = set.write_to_dir(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "fig15_run_1.trace.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(validate(&Json::parse(&text).unwrap()).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn runtime_toggles_enable_state() {
        // Other tests share the process-global state; restore it.
        enable(7);
        assert!(enabled());
        assert_eq!(sample_every(), 7);
        disable();
        assert!(!enabled());
        set_ring_capacity(9);
        assert_eq!(ring_capacity(), 9);
        set_ring_capacity(512);
        enable(0); // clamps to 1
        assert_eq!(sample_every(), 1);
        disable();
    }
}
