//! Edge-case battery for the hand-rolled `obs::json` parser.
//!
//! This parser now guards two on-disk schemas — the `RunManifest`
//! artifacts and the live-telemetry `*.series.jsonl` lines — so its
//! behaviour at the margins (escapes, nesting depth, integer boundaries,
//! malformed input) is load-bearing for CI, not just a convenience.

use obs::json::Json;

#[test]
fn every_escape_sequence_round_trips() {
    let s = "quote:\" backslash:\\ newline:\n return:\r tab:\t".to_string();
    let doc = Json::Str(s.clone());
    for text in [doc.to_string(), doc.to_compact()] {
        assert_eq!(Json::parse(&text).unwrap(), Json::Str(s.clone()), "in {text:?}");
    }
}

#[test]
fn parses_escapes_the_writer_never_emits() {
    // \/  \b  \f and \uXXXX are legal JSON even though the writer does
    // not produce them.
    let v = Json::parse(r#""a\/b\bc\fd\u0041\u00e9""#).unwrap();
    assert_eq!(v.as_str(), Some("a/b\u{8}c\u{c}dA\u{e9}"));
}

#[test]
fn control_characters_are_u_escaped_on_write() {
    let doc = Json::Str("bell\u{7}end".into());
    let text = doc.to_compact();
    assert!(text.contains("\\u0007"), "{text}");
    assert_eq!(Json::parse(&text).unwrap(), doc);
}

#[test]
fn lone_surrogates_decode_to_replacement() {
    let v = Json::parse(r#""x\ud800y""#).unwrap();
    assert_eq!(v.as_str(), Some("x\u{fffd}y"));
}

#[test]
fn bad_unicode_escapes_are_rejected() {
    for bad in [r#""\u12""#, r#""\uzzzz""#, r#""\u""#, r#""\x41""#] {
        assert!(Json::parse(bad).is_err(), "should reject {bad}");
    }
}

#[test]
fn non_ascii_strings_survive_both_writers() {
    let s = "ünïcode → 測定 🎯".to_string();
    let doc = Json::Obj(vec![("k".into(), Json::Str(s.clone()))]);
    for text in [doc.to_string(), doc.to_compact()] {
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("k").and_then(Json::as_str), Some(s.as_str()));
    }
}

#[test]
fn deep_nesting_round_trips() {
    // 200 levels of alternating array/object nesting: far beyond anything
    // the manifests produce, shallow enough not to test the OS stack.
    let mut doc = Json::UInt(7);
    for i in 0..200 {
        doc = if i % 2 == 0 {
            Json::Arr(vec![doc])
        } else {
            Json::Obj(vec![("d".into(), doc)])
        };
    }
    for text in [doc.to_string(), doc.to_compact()] {
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}

#[test]
fn u64_boundaries_stay_exact() {
    for n in [
        0u64,
        1,
        (1 << 53) - 1, // last f64-exact integer
        1 << 53,
        (1 << 53) + 1, // first integer a float path would corrupt
        u64::MAX - 1,
        u64::MAX,
    ] {
        let back = Json::parse(&Json::UInt(n).to_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(n), "u64 {n} must survive");
    }
}

#[test]
fn i64_and_overflow_numbers_classify_correctly() {
    assert_eq!(Json::parse("-1").unwrap(), Json::Int(-1));
    assert_eq!(
        Json::parse(&i64::MIN.to_string()).unwrap(),
        Json::Int(i64::MIN)
    );
    // One past u64::MAX no longer fits an integer: it degrades to float
    // rather than failing.
    let over = "18446744073709551616"; // 2^64
    assert!(matches!(Json::parse(over).unwrap(), Json::Float(_)));
    // Exponent forms are floats even when integral.
    assert!(matches!(Json::parse("1e3").unwrap(), Json::Float(_)));
    assert!(matches!(Json::parse("-2.5").unwrap(), Json::Float(_)));
}

#[test]
fn malformed_documents_error_instead_of_panicking() {
    let cases = [
        "",
        "   ",
        "{",
        "}",
        "[",
        "]",
        "[1,",
        "[1 2]",
        "{\"a\":}",
        "{\"a\" 1}",
        "{\"a\":1,}",
        "{\"a\":1 \"b\":2}",
        "{a:1}",
        "\"unterminated",
        "\"bad escape \\q\"",
        "tru",
        "falsé",
        "nul",
        "+1",
        "--2",
        "1.2.3",
        "0x10",
        "1 2",
        "[1]]",
        "{\"a\":1}{",
        "\u{feff}{}", // BOM is not whitespace
    ];
    for bad in cases {
        assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
    }
}

#[test]
fn error_messages_carry_byte_offsets() {
    let err = Json::parse("{\"a\": !}").unwrap_err();
    assert!(err.contains("byte 6"), "{err}");
    let err = Json::parse("[1, 2,]").unwrap_err();
    assert!(err.contains("byte"), "{err}");
}

#[test]
fn duplicate_keys_are_preserved_in_order() {
    // The tree is insertion-ordered and does not dedup — lookups return
    // the first match, round-trips keep both.
    let v = Json::parse("{\"k\":1,\"k\":2}").unwrap();
    assert_eq!(v.get("k").and_then(Json::as_u64), Some(1));
    assert_eq!(v.as_obj().unwrap().len(), 2);
    assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
}

#[test]
fn compact_writer_matches_pretty_writer_semantically() {
    let doc = Json::Obj(vec![
        ("empty_arr".into(), Json::Arr(vec![])),
        ("empty_obj".into(), Json::Obj(vec![])),
        ("nested".into(), Json::Arr(vec![
            Json::Null,
            Json::Bool(false),
            Json::Str("s".into()),
            Json::Obj(vec![("n".into(), Json::UInt(3))]),
        ])),
    ]);
    let compact = doc.to_compact();
    assert!(!compact.contains('\n'), "compact stays on one line: {compact}");
    assert!(!compact.contains(": "), "no decorative whitespace: {compact}");
    assert_eq!(Json::parse(&compact).unwrap(), Json::parse(&doc.to_string()).unwrap());
}

#[test]
fn nonfinite_floats_write_as_null() {
    assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
    assert_eq!(Json::Float(f64::INFINITY).to_compact(), "null");
    assert_eq!(Json::Float(1.25).to_compact(), "1.25");
}
