//! Compiling logical plans onto the join fabric.
//!
//! [`compile`] takes a [`LogicalPlan`], validates it against a
//! [`Catalog`] by lowering it to an `fqp` query and reusing
//! [`fqp::plan::bind`] (unknown streams and fields surface as the same
//! typed [`PlanError`]s the flexible query processor reports), checks
//! that the plan is *representable* on the software engines (64-bit
//! tuples: at most two ≤32-bit fields per stream, join key first), and
//! then chooses an engine by running [`fqp::placement::place`] over
//! engine-calibrated [`SiteProfile`]s.
//!
//! The output is a [`CompiledQuery`]: the bound `fqp` plan, the
//! placement decision, the chosen [`EngineKind`], and the
//! [`PostPipeline`] of bound post-join conditions and projection indices
//! the runtime applies to each match the shared engine emits.

use std::fmt;

use fqp::placement::{place, Objective, Placement, SiteKind, SiteProfile};
use fqp::plan::{bind, BoundCondition, Catalog, Plan, PlanError, PlanOp};
use fqp::query::{AggFunc, Condition, JoinClause, Projection, Query, WindowKind};

use crate::logical::LogicalPlan;

/// Which physical engine a compiled query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Single-stream pipeline executed inline by the runtime (no join).
    Inline,
    /// Single-threaded nested-loop baseline.
    Baseline,
    /// Multithreaded SplitJoin router (uni-flow).
    Split,
    /// Handshake join chain (bi-flow).
    Handshake,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EngineKind::Inline => "inline",
            EngineKind::Baseline => "baseline",
            EngineKind::Split => "splitjoin",
            EngineKind::Handshake => "handshake",
        };
        write!(f, "{s}")
    }
}

/// The sharing key of a windowed join: every standing query over the
/// same stream pair and window shares one physical engine, because
/// windows hold raw arrivals (filters prune match output, not window
/// contents).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupKey {
    /// Left (`R`) stream name.
    pub left: String,
    /// Right (`S`) stream name.
    pub right: String,
    /// Per-stream window size in tuples.
    pub window: usize,
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}⋈{}/w{}", self.left, self.right, self.window)
    }
}

/// Errors produced while compiling a [`LogicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Binding against the catalog failed (unknown stream/field, …) —
    /// the same typed error `fqp::plan::bind` reports.
    Plan(PlanError),
    /// The logical tree has a shape the fabric cannot run.
    UnsupportedShape {
        /// What was wrong, human-readable.
        what: String,
    },
    /// The plan bound cleanly but cannot be represented on the 64-bit
    /// tuple engines.
    Unrepresentable {
        /// The offending stream.
        stream: String,
        /// Why it does not fit.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Plan(e) => write!(f, "{e}"),
            CompileError::UnsupportedShape { what } => {
                write!(f, "unsupported plan shape: {what}")
            }
            CompileError::Unrepresentable { stream, reason } => {
                write!(f, "stream {stream:?} does not fit the join engines: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<PlanError> for CompileError {
    fn from(e: PlanError) -> Self {
        CompileError::Plan(e)
    }
}

/// The bound post-join (or post-source) pipeline the runtime applies to
/// each record: a conjunction of conditions over the *unprojected*
/// record, then an optional projection.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PostPipeline {
    /// Bound conditions over the full (joined) record.
    pub conditions: Vec<BoundCondition>,
    /// Output field indices into the full record (`None` = keep all).
    pub projection: Option<Vec<usize>>,
}

impl PostPipeline {
    /// Runs the pipeline on one record's field values: `None` when a
    /// condition rejects it, otherwise the projected output row.
    pub fn apply(&self, values: &[u64]) -> Option<Vec<u64>> {
        if !self.conditions.iter().all(|c| c.eval(values)) {
            return None;
        }
        Some(match &self.projection {
            Some(idx) => idx.iter().map(|&i| values[i]).collect(),
            None => values.to_vec(),
        })
    }
}

/// A windowed-aggregate spec for single-stream queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Aggregated field index (`None` for `COUNT`).
    pub field: Option<usize>,
    /// Window size in tuples.
    pub window: usize,
    /// Sliding or tumbling advancement.
    pub kind: WindowKind,
}

/// The physical shape of a compiled query.
#[derive(Debug, Clone, PartialEq)]
pub enum Shape {
    /// Single-stream filter/project/aggregate pipeline, executed inline
    /// by the runtime on each arrival.
    Single {
        /// The input stream.
        stream: String,
        /// Arity of the stream's schema (1 or 2 engine-tuple fields).
        arity: usize,
        /// Filter + projection over the arrival record.
        post: PostPipeline,
        /// Windowed aggregate, if any (applied after the filter).
        aggregate: Option<AggSpec>,
    },
    /// Windowed equi-join executed on a shared physical engine; the
    /// runtime fans each match through the post pipeline.
    Joined {
        /// The engine-sharing key.
        key: GroupKey,
        /// Arity of the left stream's schema.
        left_arity: usize,
        /// Arity of the right stream's schema.
        right_arity: usize,
        /// Filter + projection over the joined record.
        post: PostPipeline,
    },
}

/// A logical plan compiled onto the fabric.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The source logical plan.
    pub logical: LogicalPlan,
    /// The bound `fqp` plan (validation artifact; drives placement and
    /// `EXPLAIN`).
    pub plan: Plan,
    /// The placement decision over the engine-calibrated sites.
    pub placement: Placement,
    /// The chosen engine.
    pub engine: EngineKind,
    /// The physical shape the runtime executes.
    pub shape: Shape,
}

impl CompiledQuery {
    /// The engine-sharing key, for joined queries.
    pub fn group(&self) -> Option<&GroupKey> {
        match &self.shape {
            Shape::Joined { key, .. } => Some(key),
            Shape::Single { .. } => None,
        }
    }

    /// An `EXPLAIN`-style rendering: the bound pipeline plus the engine
    /// decision.
    pub fn explain(&self) -> String {
        format!("{}  Engine: {}\n", self.plan.explain(), self.engine)
    }
}

/// The canonical decomposition of a supported logical tree.
struct Normalized<'a> {
    conditions: Vec<Condition>,
    projection: Option<Vec<String>>,
    aggregate: Option<(AggFunc, Option<String>, usize, WindowKind)>,
    from: &'a LogicalPlan,
}

fn unsupported(what: impl Into<String>) -> CompileError {
    CompileError::UnsupportedShape { what: what.into() }
}

/// Walks the operator chain above the source/join, enforcing the
/// canonical order Aggregate|Project → Filter* → Source|WindowJoin.
fn normalize(plan: &LogicalPlan) -> Result<Normalized<'_>, CompileError> {
    let mut n = Normalized {
        conditions: Vec::new(),
        projection: None,
        aggregate: None,
        from: plan,
    };
    let mut node = plan;
    loop {
        match node {
            LogicalPlan::Filter { input, conditions } => {
                n.conditions.extend(conditions.iter().cloned());
                node = input;
            }
            LogicalPlan::Project { input, fields } => {
                if n.projection.is_some() {
                    return Err(unsupported("more than one projection"));
                }
                if !n.conditions.is_empty() {
                    return Err(unsupported(
                        "projection below a filter (filter first, then project)",
                    ));
                }
                if n.aggregate.is_some() {
                    return Err(unsupported("projection below an aggregate"));
                }
                n.projection = Some(fields.clone());
                node = input;
            }
            LogicalPlan::Aggregate {
                input,
                func,
                field,
                window,
                kind,
            } => {
                if n.aggregate.is_some() {
                    return Err(unsupported("nested aggregates"));
                }
                if n.projection.is_some() || !n.conditions.is_empty() {
                    return Err(unsupported(
                        "aggregate must be the topmost operator of its pipeline",
                    ));
                }
                n.aggregate = Some((*func, field.clone(), *window, *kind));
                node = input;
            }
            LogicalPlan::Source { .. } | LogicalPlan::WindowJoin { .. } => {
                n.from = node;
                return Ok(n);
            }
        }
    }
}

/// Requires a join input to be a bare source: filters below the join
/// would make window contents query-specific and defeat engine sharing.
fn source_name(node: &LogicalPlan, side: &str) -> Result<String, CompileError> {
    match node {
        LogicalPlan::Source { stream } => Ok(stream.clone()),
        LogicalPlan::Filter { .. } => Err(unsupported(format!(
            "filter below the {side} side of a join — windows run over raw \
             arrivals (CQL semantics); apply filters above the join instead",
        ))),
        other => Err(unsupported(format!(
            "the {side} side of a join must be a source stream, not {other:?}",
        ))),
    }
}

/// Engine-calibrated execution sites, in [`EngineKind`] decoding order:
/// baseline, splitjoin (scaled by `cores`), handshake chain.
///
/// Throughputs are order-of-magnitude calibrations from this repo's own
/// software measurements (Figs. 14d/16 harnesses); they exist to make
/// [`place`] pick the *right* engine for an objective, not to predict
/// absolute numbers.
pub fn engine_sites(cores: usize) -> Vec<SiteProfile> {
    let cores = cores.max(1) as f64;
    vec![
        SiteProfile {
            name: "baseline (1 core, nested loop)".into(),
            kind: SiteKind::Cpu,
            filter_tps: 50e6,
            join_tps_per_1k_window: 1.2e6,
            aggregate_tps: 30e6,
            // Synchronous full-window probe per tuple.
            tuple_latency_us: 20.0,
            transfer_latency_us: 0.0,
        },
        SiteProfile {
            name: "splitjoin router".into(),
            kind: SiteKind::Cpu,
            filter_tps: 50e6,
            join_tps_per_1k_window: 0.9e6 * cores,
            aggregate_tps: 30e6,
            // Batched distribution and collection trade latency for
            // throughput.
            tuple_latency_us: 8.0,
            transfer_latency_us: 0.5,
        },
        SiteProfile {
            name: "handshake chain".into(),
            kind: SiteKind::Cpu,
            filter_tps: 50e6,
            join_tps_per_1k_window: 0.6e6 * cores,
            aggregate_tps: 30e6,
            // Low-latency fast-forwarding through the chain.
            tuple_latency_us: 2.0,
            transfer_latency_us: 0.5,
        },
    ]
}

fn engine_of_site(site: usize) -> EngineKind {
    match site {
        0 => EngineKind::Baseline,
        1 => EngineKind::Split,
        _ => EngineKind::Handshake,
    }
}

/// Compiles `logical` against `catalog` for a worker pool of `cores`
/// threads, optimizing for `objective`.
///
/// # Errors
///
/// [`CompileError::Plan`] when binding fails (unknown stream or field),
/// [`CompileError::UnsupportedShape`] for trees the fabric cannot run,
/// and [`CompileError::Unrepresentable`] when a stream's schema does
/// not fit the 64-bit engine tuple.
pub fn compile(
    logical: &LogicalPlan,
    catalog: &Catalog,
    cores: usize,
    objective: Objective,
) -> Result<CompiledQuery, CompileError> {
    let n = normalize(logical)?;
    match n.from {
        LogicalPlan::Source { stream } => compile_single(logical, catalog, cores, objective, &n, stream),
        LogicalPlan::WindowJoin {
            left,
            right,
            on,
            window,
        } => {
            if n.aggregate.is_some() {
                return Err(unsupported("aggregate over a join"));
            }
            let left = source_name(left, "left")?;
            let right = source_name(right, "right")?;
            if left == right {
                return Err(unsupported(format!("self-join of stream {left:?}")));
            }
            compile_joined(
                logical, catalog, cores, objective, &n, &left, &right, on, *window,
            )
        }
        _ => unreachable!("normalize returns only sources and joins"),
    }
}

fn compile_single(
    logical: &LogicalPlan,
    catalog: &Catalog,
    cores: usize,
    objective: Objective,
    n: &Normalized<'_>,
    stream: &str,
) -> Result<CompiledQuery, CompileError> {
    let query = Query {
        select: match (&n.projection, &n.aggregate) {
            (Some(fields), _) => Projection::Fields(fields.clone()),
            _ => Projection::All,
        },
        from: stream.to_string(),
        conditions: n.conditions.clone(),
        where_expr: None,
        join: None,
        aggregate: n.aggregate.as_ref().map(|(func, field, window, kind)| {
            fqp::query::AggregateClause {
                func: *func,
                field: field.clone(),
                window: *window,
                kind: *kind,
            }
        }),
    };
    let plan = bind(&query, catalog)?;
    let schema = catalog.schema(stream).expect("bind resolved the stream");
    check_engine_tuple(stream, schema)?;

    // Bind the post pipeline against the *source* record: conditions and
    // projection both see the raw arrival.
    let mut post = PostPipeline::default();
    for c in &query.conditions {
        post.conditions.push(bind_against(c, schema, stream)?);
    }
    let mut aggregate = None;
    if let Some(PlanOp::Aggregate {
        func,
        field,
        window,
        kind,
    }) = plan.ops.iter().find(|op| matches!(op, PlanOp::Aggregate { .. }))
    {
        aggregate = Some(AggSpec {
            func: *func,
            field: *field,
            window: *window,
            kind: *kind,
        });
    } else if let Some(PlanOp::Project { fields }) =
        plan.ops.iter().find(|op| matches!(op, PlanOp::Project { .. }))
    {
        post.projection = Some(fields.clone());
    }

    let placement = place(&plan, &engine_sites(cores), objective);
    Ok(CompiledQuery {
        logical: logical.clone(),
        plan,
        placement,
        engine: EngineKind::Inline,
        shape: Shape::Single {
            stream: stream.to_string(),
            arity: schema.arity(),
            post,
            aggregate,
        },
    })
}

#[allow(clippy::too_many_arguments)]
fn compile_joined(
    logical: &LogicalPlan,
    catalog: &Catalog,
    cores: usize,
    objective: Objective,
    n: &Normalized<'_>,
    left: &str,
    right: &str,
    on: &str,
    window: usize,
) -> Result<CompiledQuery, CompileError> {
    // Lower to an fqp query *without* the filter conditions: fqp binds
    // conditions against the primary stream pre-join, while the standing
    // query's CQL semantics filter the joined record. The join itself,
    // the streams, and the projection are validated by the same bind.
    let query = Query {
        select: match &n.projection {
            Some(fields) => Projection::Fields(fields.clone()),
            None => Projection::All,
        },
        from: left.to_string(),
        conditions: Vec::new(),
        where_expr: None,
        join: Some(JoinClause {
            stream: right.to_string(),
            on: on.to_string(),
            window,
        }),
        aggregate: None,
    };
    let plan = bind(&query, catalog)?;

    let left_schema = catalog.schema(left).expect("bind resolved the stream");
    let right_schema = catalog.schema(right).expect("bind resolved the stream");
    check_engine_tuple(left, left_schema)?;
    check_engine_tuple(right, right_schema)?;

    // The engines join on the tuple's 32-bit key, which is field 0.
    let Some(&PlanOp::Join {
        key_left,
        key_right,
        ..
    }) = plan.ops.iter().find(|op| matches!(op, PlanOp::Join { .. }))
    else {
        unreachable!("joined query always binds a Join op");
    };
    for (stream, key) in [(left, key_left), (right, key_right)] {
        if key != 0 {
            return Err(CompileError::Unrepresentable {
                stream: stream.to_string(),
                reason: format!(
                    "join key {on:?} is field {key}, but the engine tuple \
                     joins on its first field"
                ),
            });
        }
    }

    // The post pipeline binds against the full joined record, so rebind
    // with `SELECT *` to recover the pre-projection schema.
    let joined_schema = bind(
        &Query {
            select: Projection::All,
            ..query.clone()
        },
        catalog,
    )?
    .output_schema;
    let mut post = PostPipeline::default();
    for c in &n.conditions {
        post.conditions.push(bind_against(c, &joined_schema, "joined record")?);
    }
    if let Some(PlanOp::Project { fields }) =
        plan.ops.iter().find(|op| matches!(op, PlanOp::Project { .. }))
    {
        post.projection = Some(fields.clone());
    }

    let sites = engine_sites(cores);
    let placement = place(&plan, &sites, objective);
    let join_pos = plan
        .ops
        .iter()
        .position(|op| matches!(op, PlanOp::Join { .. }))
        .expect("joined plan has a join op");
    let engine = engine_of_site(placement.sites[join_pos]);

    Ok(CompiledQuery {
        logical: logical.clone(),
        plan,
        placement,
        engine,
        shape: Shape::Joined {
            key: GroupKey {
                left: left.to_string(),
                right: right.to_string(),
                window,
            },
            left_arity: left_schema.arity(),
            right_arity: right_schema.arity(),
            post,
        },
    })
}

/// A stream fits the engines when its schema is one or two fields of at
/// most 32 bits each: field 0 maps to the tuple's join key, field 1 to
/// its payload.
fn check_engine_tuple(stream: &str, schema: &streamcore::Schema) -> Result<(), CompileError> {
    if schema.arity() > 2 {
        return Err(CompileError::Unrepresentable {
            stream: stream.to_string(),
            reason: format!(
                "{} fields, but the 64-bit engine tuple carries at most 2",
                schema.arity()
            ),
        });
    }
    for f in schema.fields() {
        if f.width_bits() > 32 {
            return Err(CompileError::Unrepresentable {
                stream: stream.to_string(),
                reason: format!(
                    "field {:?} is {} bits wide, but engine tuple halves are 32",
                    f.name(),
                    f.width_bits()
                ),
            });
        }
    }
    Ok(())
}

fn bind_against(
    c: &Condition,
    schema: &streamcore::Schema,
    context: &str,
) -> Result<BoundCondition, CompileError> {
    let field = schema
        .index_of(&c.field)
        .ok_or_else(|| PlanError::UnknownField {
            field: c.field.clone(),
            context: context.to_string(),
        })?;
    Ok(BoundCondition {
        field,
        op: c.op,
        value: c.value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqp::query::CmpOp;
    use streamcore::{Field, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_spec("trades=sym:32,qty:32").unwrap();
        c.register_spec("quotes=sym:32,px:32").unwrap();
        c.register_spec("heartbeats=node:32").unwrap();
        c.register(
            "wide",
            Schema::new(vec![
                Field::new("sym", 32).unwrap(),
                Field::new("b", 32).unwrap(),
                Field::new("c", 32).unwrap(),
            ])
            .unwrap(),
        );
        c
    }

    fn joined() -> LogicalPlan {
        LogicalPlan::source("trades").join(LogicalPlan::source("quotes"), "sym", 64)
    }

    #[test]
    fn joined_query_compiles_to_a_shared_group() {
        let q = compile(
            &joined().filter("qty", CmpOp::Gt, 10).filter("px", CmpOp::Lt, 50),
            &catalog(),
            4,
            Objective::MaxThroughput,
        )
        .unwrap();
        let Shape::Joined {
            key,
            left_arity,
            right_arity,
            post,
        } = &q.shape
        else {
            panic!("expected joined shape, got {:?}", q.shape);
        };
        assert_eq!(key.to_string(), "trades⋈quotes/w64");
        assert_eq!((*left_arity, *right_arity), (2, 2));
        // qty is field 1 of trades; px is field 3 of the joined record.
        assert_eq!(post.conditions[0].field, 1);
        assert_eq!(post.conditions[1].field, 3);
        assert_eq!(q.engine, EngineKind::Split, "{}", q.explain());
    }

    #[test]
    fn projection_binds_against_the_joined_record() {
        let q = compile(
            &joined().project(["qty", "px"]),
            &catalog(),
            2,
            Objective::MaxThroughput,
        )
        .unwrap();
        let Shape::Joined { post, .. } = &q.shape else {
            panic!("expected joined shape");
        };
        assert_eq!(post.projection, Some(vec![1, 3]));
        assert_eq!(post.apply(&[7, 100, 7, 42]), Some(vec![100, 42]));
    }

    #[test]
    fn objectives_pick_different_engines() {
        let latency = compile(&joined(), &catalog(), 4, Objective::MinLatency).unwrap();
        assert_eq!(latency.engine, EngineKind::Handshake, "{}", latency.explain());
        let single_core = compile(&joined(), &catalog(), 1, Objective::MaxThroughput).unwrap();
        assert_eq!(single_core.engine, EngineKind::Baseline);
    }

    #[test]
    fn unknown_streams_and_fields_reuse_fqp_plan_errors() {
        let cat = catalog();
        let e = compile(
            &LogicalPlan::source("nope").filter("x", CmpOp::Eq, 1),
            &cat,
            2,
            Objective::MaxThroughput,
        )
        .unwrap_err();
        assert!(matches!(e, CompileError::Plan(PlanError::UnknownStream { .. })), "{e}");

        let e = compile(
            &joined().filter("volume", CmpOp::Gt, 1),
            &cat,
            2,
            Objective::MaxThroughput,
        )
        .unwrap_err();
        assert!(matches!(e, CompileError::Plan(PlanError::UnknownField { .. })), "{e}");
        assert!(e.to_string().contains("volume"));
    }

    #[test]
    fn unsupported_shapes_are_rejected_with_reasons() {
        let cat = catalog();
        let below = LogicalPlan::source("trades")
            .filter("qty", CmpOp::Gt, 1)
            .join(LogicalPlan::source("quotes"), "sym", 8);
        let e = compile(&below, &cat, 2, Objective::MaxThroughput).unwrap_err();
        assert!(e.to_string().contains("raw arrivals"), "{e}");

        let selfjoin = LogicalPlan::source("trades").join(LogicalPlan::source("trades"), "sym", 8);
        let e = compile(&selfjoin, &cat, 2, Objective::MaxThroughput).unwrap_err();
        assert!(e.to_string().contains("self-join"), "{e}");

        let agg_over_join = joined().aggregate(AggFunc::Count, None, 8, WindowKind::Sliding);
        let e = compile(&agg_over_join, &cat, 2, Objective::MaxThroughput).unwrap_err();
        assert!(e.to_string().contains("aggregate over a join"), "{e}");
    }

    #[test]
    fn unrepresentable_schemas_are_rejected() {
        let cat = catalog();
        let wide = LogicalPlan::source("wide").join(LogicalPlan::source("quotes"), "sym", 8);
        let e = compile(&wide, &cat, 2, Objective::MaxThroughput).unwrap_err();
        assert!(
            matches!(e, CompileError::Unrepresentable { ref stream, .. } if stream == "wide"),
            "{e}"
        );

        // Join key must be field 0 on both sides: px is field 1 of quotes.
        let mut cat2 = Catalog::new();
        cat2.register_spec("a=px:32,sym:32").unwrap();
        cat2.register_spec("b=sym:32,px:32").unwrap();
        let q = LogicalPlan::source("a").join(LogicalPlan::source("b"), "px", 8);
        let e = compile(&q, &cat2, 2, Objective::MaxThroughput).unwrap_err();
        assert!(e.to_string().contains("first field"), "{e}");
    }

    #[test]
    fn single_stream_pipeline_compiles_inline() {
        let q = compile(
            &LogicalPlan::source("trades")
                .filter("qty", CmpOp::Ge, 5)
                .project(["qty"]),
            &catalog(),
            2,
            Objective::MaxThroughput,
        )
        .unwrap();
        assert_eq!(q.engine, EngineKind::Inline);
        let Shape::Single { post, aggregate, .. } = &q.shape else {
            panic!("expected single shape");
        };
        assert!(aggregate.is_none());
        assert_eq!(post.apply(&[1, 7]), Some(vec![7]));
        assert_eq!(post.apply(&[1, 3]), None);
    }

    #[test]
    fn single_stream_aggregate_compiles() {
        let q = compile(
            &LogicalPlan::source("heartbeats").aggregate(
                AggFunc::Count,
                None,
                16,
                WindowKind::Tumbling,
            ),
            &catalog(),
            2,
            Objective::MaxThroughput,
        )
        .unwrap();
        let Shape::Single { aggregate, .. } = &q.shape else {
            panic!("expected single shape");
        };
        assert_eq!(
            aggregate,
            &Some(AggSpec {
                func: AggFunc::Count,
                field: None,
                window: 16,
                kind: WindowKind::Tumbling,
            })
        );
    }
}
