//! Continuous-query front end for the acceleration landscape: standing
//! queries compiled onto the join fabric, behind one public API.
//!
//! This crate is the top of the reproduction's query stack. Where
//! [`fqp`] answers *"how would a flexible hardware query processor run
//! this query?"* (operator blocks, fabrics, reconfiguration), this
//! crate answers the operational question the paper's real-time
//! analytics setting poses: *many standing queries, one shared fabric,
//! admitted and re-planned at runtime*.
//!
//! The pipeline:
//!
//! ```text
//!   LogicalPlan ──compile──▶ fqp::plan::bind ──▶ fqp::placement::place
//!   (logical)                (validate: typed     (engine choice over
//!                             PlanErrors)          calibrated sites)
//!        │
//!        ▼
//!   CompiledQuery ──admit──▶ QueryRuntime ──▶ shared StreamJoin engines
//!   (plan + engine           (multi-tenant:      (SplitJoin / handshake
//!    + post pipeline)         groups, telemetry,  / baseline, one per
//!                             live re-plan)       stream-pair group)
//! ```
//!
//! * [`logical`] — the [`LogicalPlan`] tree:
//!   sources, filters, projections, window joins, and windowed
//!   aggregates over named streams, with fluent builders.
//! * [`mod@compile`] — validation against an
//!   [`fqp::plan::Catalog`] (reusing [`fqp::plan::bind`], so unknown
//!   streams/fields are the same typed [`fqp::plan::PlanError`]s),
//!   engine-representability checks, and engine selection via
//!   [`fqp::placement::place`] over engine-calibrated site profiles.
//! * [`runtime`] — the multi-tenant
//!   [`QueryRuntime`]: admission/cancellation,
//!   engine sharing per stream-pair group, per-query `query.<id>.*`
//!   live telemetry and [`RunManifest`](obs::RunManifest)s, and
//!   lossless drain-and-handoff re-planning.
//!
//! # Example
//!
//! ```
//! use query::prelude::*;
//! use streamcore::Tuple;
//!
//! let mut catalog = Catalog::new();
//! catalog.register_spec("trades=sym:32,qty:32").unwrap();
//! catalog.register_spec("quotes=sym:32,px:32").unwrap();
//!
//! let mut runtime = QueryRuntime::new(catalog, RuntimeConfig::new(2));
//! let plan = LogicalPlan::source("trades")
//!     .join(LogicalPlan::source("quotes"), "sym", 8)
//!     .filter("qty", CmpOp::Gt, 10);
//! runtime.admit("big-trades", &plan).unwrap();
//!
//! runtime.push("trades", Tuple::new(7, 25)).unwrap();
//! runtime.push("quotes", Tuple::new(7, 101)).unwrap();
//! let reports = runtime.finish().unwrap();
//! assert_eq!(reports[0].rows, vec![vec![7, 25, 7, 101]]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod logical;
pub mod runtime;

pub use compile::{compile, CompileError, CompiledQuery, EngineKind, GroupKey, PostPipeline};
pub use logical::LogicalPlan;
pub use runtime::{HandoffReport, QueryReport, QueryRuntime, RuntimeConfig, RuntimeError};

/// The single import for writing and running standing queries: the
/// logical-plan builder, the compiler surface, the runtime, and the
/// `fqp` vocabulary they share (catalog, comparison/aggregate
/// operators, placement objectives).
pub mod prelude {
    pub use crate::compile::{
        compile, CompileError, CompiledQuery, EngineKind, GroupKey, PostPipeline,
    };
    pub use crate::logical::LogicalPlan;
    pub use crate::runtime::{
        HandoffReport, QueryReport, QueryRuntime, RuntimeConfig, RuntimeError,
    };
    pub use fqp::placement::Objective;
    pub use fqp::plan::{Catalog, PlanError};
    pub use fqp::query::{AggFunc, CmpOp, WindowKind};
}
