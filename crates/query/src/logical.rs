//! Logical plans for standing queries.
//!
//! A [`LogicalPlan`] is the tree a client builds programmatically —
//! sources, filters, projections, window joins, and windowed aggregates
//! over *named* streams — before handing it to
//! [`compile`](crate::compile::compile) to be validated against a
//! [`Catalog`](fqp::plan::Catalog) and lowered onto a join engine.
//!
//! The builder is fluent and order-enforcing only at compile time: you
//! can construct any tree here, and the compiler rejects shapes the
//! fabric cannot run with a typed
//! [`CompileError`](crate::compile::CompileError) rather than a panic.
//!
//! # Semantics: windows over raw arrivals
//!
//! Filters and projections above a [`LogicalPlan::WindowJoin`] apply to
//! the *joined* record, CQL-style: the join windows always hold the last
//! `window` raw arrivals of each stream, and predicates prune match
//! output, not window contents. This is what lets the runtime share one
//! physical join engine between every standing query over the same
//! stream pair — see [`QueryRuntime`](crate::runtime::QueryRuntime).
//!
//! ```
//! use query::logical::LogicalPlan;
//! use fqp::query::CmpOp;
//!
//! let plan = LogicalPlan::source("trades")
//!     .join(LogicalPlan::source("quotes"), "sym", 1024)
//!     .filter("qty", CmpOp::Gt, 10)
//!     .project(["qty", "px"]);
//! assert_eq!(plan.to_string(),
//!     "SELECT qty, px FROM trades JOIN quotes ON sym WINDOW 1024 WHERE qty > 10");
//! ```

use std::fmt;

use fqp::query::{AggFunc, CmpOp, Condition, WindowKind};

/// A logical standing-query plan over named streams.
///
/// Build one with the fluent constructors ([`LogicalPlan::source`],
/// [`LogicalPlan::filter`], [`LogicalPlan::project`],
/// [`LogicalPlan::join`], [`LogicalPlan::aggregate`]), then compile it
/// with [`compile`](crate::compile::compile) or admit it directly into a
/// [`QueryRuntime`](crate::runtime::QueryRuntime).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// A named input stream (resolved against the catalog at compile
    /// time).
    Source {
        /// Stream name, case-insensitive.
        stream: String,
    },
    /// Keep only records satisfying a conjunction of comparisons.
    Filter {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// Conjunctive conditions, evaluated left to right.
        conditions: Vec<Condition>,
    },
    /// Keep only the named fields, in order.
    Project {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// Output field names.
        fields: Vec<String>,
    },
    /// Sliding-window equi-join of two streams on a shared key field.
    WindowJoin {
        /// Left (primary, `R`) input.
        left: Box<LogicalPlan>,
        /// Right (secondary, `S`) input.
        right: Box<LogicalPlan>,
        /// Join key field name (must exist on both sides).
        on: String,
        /// Per-stream window size in tuples.
        window: usize,
    },
    /// Windowed aggregate over a single stream.
    Aggregate {
        /// The input plan.
        input: Box<LogicalPlan>,
        /// Aggregate function.
        func: AggFunc,
        /// Aggregated field (`None` for `COUNT(*)`).
        field: Option<String>,
        /// Window size in tuples.
        window: usize,
        /// Sliding (emit per record) or tumbling (emit per full window).
        kind: WindowKind,
    },
}

impl LogicalPlan {
    /// Starts a plan from a named stream.
    pub fn source(stream: impl Into<String>) -> Self {
        LogicalPlan::Source {
            stream: stream.into().to_ascii_lowercase(),
        }
    }

    /// Adds one comparison to the plan's filter conjunction.
    ///
    /// Consecutive `filter` calls merge into a single conjunction rather
    /// than nesting.
    pub fn filter(self, field: impl Into<String>, op: CmpOp, value: u64) -> Self {
        let cond = Condition {
            field: field.into().to_ascii_lowercase(),
            op,
            value,
        };
        match self {
            LogicalPlan::Filter {
                input,
                mut conditions,
            } => {
                conditions.push(cond);
                LogicalPlan::Filter { input, conditions }
            }
            other => LogicalPlan::Filter {
                input: Box::new(other),
                conditions: vec![cond],
            },
        }
    }

    /// Projects the plan onto the named fields.
    pub fn project<I, S>(self, fields: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LogicalPlan::Project {
            input: Box::new(self),
            fields: fields
                .into_iter()
                .map(|f| f.into().to_ascii_lowercase())
                .collect(),
        }
    }

    /// Window-joins this plan (as the left/`R` side) with `right` on the
    /// shared key field `on`, with per-stream windows of `window`
    /// tuples.
    pub fn join(self, right: LogicalPlan, on: impl Into<String>, window: usize) -> Self {
        LogicalPlan::WindowJoin {
            left: Box::new(self),
            right: Box::new(right),
            on: on.into().to_ascii_lowercase(),
            window,
        }
    }

    /// Applies a windowed aggregate (`None` field means `COUNT(*)`).
    pub fn aggregate(
        self,
        func: AggFunc,
        field: Option<&str>,
        window: usize,
        kind: WindowKind,
    ) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            func,
            field: field.map(str::to_ascii_lowercase),
            window,
            kind,
        }
    }

    /// The names of every source stream in the tree, in left-to-right
    /// order.
    pub fn source_streams(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_sources(&mut out);
        out
    }

    fn collect_sources<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            LogicalPlan::Source { stream } => out.push(stream),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. } => input.collect_sources(out),
            LogicalPlan::WindowJoin { left, right, .. } => {
                left.collect_sources(out);
                right.collect_sources(out);
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    /// Renders the plan as the CQL-ish text the `fqp` parser accepts
    /// (for canonical tree shapes), or a best-effort rendering
    /// otherwise. Used in manifests and error messages.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decompose the tree into the canonical clauses.
        let mut conditions: Vec<&Condition> = Vec::new();
        let mut projection: Option<&[String]> = None;
        let mut aggregate = None;
        let mut node = self;
        loop {
            match node {
                LogicalPlan::Filter {
                    input,
                    conditions: c,
                } => {
                    conditions.extend(c.iter());
                    node = input;
                }
                LogicalPlan::Project { input, fields } => {
                    projection = Some(fields);
                    node = input;
                }
                LogicalPlan::Aggregate {
                    input,
                    func,
                    field,
                    window,
                    kind,
                } => {
                    aggregate = Some((func, field, window, kind));
                    node = input;
                }
                _ => break,
            }
        }
        match (projection, aggregate) {
            (_, Some((func, field, window, kind))) => {
                write!(f, "SELECT {func}({})", field.as_deref().unwrap_or("*"))?;
                write_from(f, node)?;
                write_where(f, &conditions)?;
                write!(f, " WINDOW {window}")?;
                if *kind == WindowKind::Tumbling {
                    write!(f, " TUMBLING")?;
                }
                Ok(())
            }
            (Some(fields), None) => {
                write!(f, "SELECT {}", fields.join(", "))?;
                write_from(f, node)?;
                write_where(f, &conditions)
            }
            (None, None) => {
                write!(f, "SELECT *")?;
                write_from(f, node)?;
                write_where(f, &conditions)
            }
        }
    }
}

fn write_from(f: &mut fmt::Formatter<'_>, node: &LogicalPlan) -> fmt::Result {
    match node {
        LogicalPlan::Source { stream } => write!(f, " FROM {stream}"),
        LogicalPlan::WindowJoin {
            left,
            right,
            on,
            window,
        } => {
            write_from_side(f, left, " FROM")?;
            write_from_side(f, right, " JOIN")?;
            write!(f, " ON {on} WINDOW {window}")
        }
        other => write!(f, " FROM <{other:?}>"),
    }
}

fn write_from_side(f: &mut fmt::Formatter<'_>, node: &LogicalPlan, kw: &str) -> fmt::Result {
    match node {
        LogicalPlan::Source { stream } => write!(f, "{kw} {stream}"),
        other => write!(f, "{kw} <{other:?}>"),
    }
}

fn write_where(f: &mut fmt::Formatter<'_>, conditions: &[&Condition]) -> fmt::Result {
    for (i, c) in conditions.iter().enumerate() {
        let kw = if i == 0 { " WHERE" } else { " AND" };
        write!(f, "{kw} {c}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_the_expected_tree() {
        let plan = LogicalPlan::source("Trades")
            .filter("qty", CmpOp::Gt, 5)
            .filter("sym", CmpOp::Lt, 100);
        let LogicalPlan::Filter { input, conditions } = &plan else {
            panic!("expected filter, got {plan:?}");
        };
        assert_eq!(conditions.len(), 2, "filters merge into one conjunction");
        assert_eq!(**input, LogicalPlan::source("trades"));
    }

    #[test]
    fn source_streams_walks_joins() {
        let plan = LogicalPlan::source("a")
            .join(LogicalPlan::source("b"), "k", 8)
            .filter("k", CmpOp::Ge, 1);
        assert_eq!(plan.source_streams(), vec!["a", "b"]);
    }

    #[test]
    fn display_matches_the_fqp_grammar() {
        let plan = LogicalPlan::source("trades")
            .join(LogicalPlan::source("quotes"), "sym", 64)
            .filter("qty", CmpOp::Gt, 10);
        let text = plan.to_string();
        assert_eq!(
            text,
            "SELECT * FROM trades JOIN quotes ON sym WINDOW 64 WHERE qty > 10"
        );

        let agg = LogicalPlan::source("trades").aggregate(
            AggFunc::Sum,
            Some("qty"),
            32,
            WindowKind::Tumbling,
        );
        assert_eq!(agg.to_string(), "SELECT SUM(qty) FROM trades WINDOW 32 TUMBLING");
    }

    #[test]
    fn single_stream_display_round_trips_through_the_parser() {
        let plan = LogicalPlan::source("trades").filter("qty", CmpOp::Gt, 10);
        let parsed = fqp::query::Query::parse(&plan.to_string()).unwrap();
        assert_eq!(parsed.from, "trades");
        assert_eq!(parsed.conditions.len(), 1);
    }
}
