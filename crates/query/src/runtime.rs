//! The multi-tenant standing-query runtime.
//!
//! A [`QueryRuntime`] admits compiled standing queries, shares one
//! physical join engine between every query over the same stream pair
//! and window (see [`GroupKey`]), routes arrivals, fans drained matches
//! through each query's post pipeline, and supports *live re-planning*:
//! swapping a group's engine mid-run without losing a single result.
//!
//! # Sharing model
//!
//! Window contents are raw arrivals (CQL semantics — see
//! [`crate::logical`]), so two queries
//! `trades ⋈ quotes WINDOW 1024 WHERE qty > 10` and
//! `… WHERE px < 50` need exactly the same join work. The runtime keeps
//! one engine per [`GroupKey`] and applies each query's
//! [`PostPipeline`](crate::compile::PostPipeline) to the shared match
//! stream, so N standing queries cost one engine's worker pool, not N.
//!
//! # Re-planning without loss
//!
//! [`QueryRuntime::replan`] performs drain-and-handoff:
//!
//! 1. flush + [`drain_results`](joinsw::StreamJoin::drain_results) the
//!    old engine (the drain barrier guarantees the collector caught up
//!    with every result the workers handed off) and fan the harvest out;
//! 2. shut the old engine down and verify completeness: total-ever
//!    result count equals drained + residual, nothing orphaned, nothing
//!    dropped;
//! 3. spawn the new engine and *replay* the runtime's shadow windows —
//!    the last `window` arrivals per stream, re-interleaved into their
//!    original arrival order — through its ordinary `process` path, so
//!    the new engine's windows are exactly the old engine's. The replay
//!    re-produces matches between shadow tuples; every one of them was
//!    already delivered by the old engine (both endpoints arrived, and
//!    the later probed the earlier inside the window), so the runtime
//!    drains and discards them, keeping each query's result stream an
//!    exact continuation.
//!
//! The returned [`HandoffReport`] carries the full accounting;
//! [`HandoffReport::lossless`] is the zero-lost-tuples check.
//!
//! # Exactness and the handshake chain
//!
//! Joined results must equal a single-query reference run tuple for
//! tuple. SplitJoin and the baseline are exact under pipelined feeding;
//! the handshake chain is exact only when waves are serialized (see
//! `joinsw::handshake`'s equivalence tests), so the runtime flushes
//! handshake groups after every arrival — which suits the engine's
//! role: placement only chooses it when minimizing latency.
//!
//! # Telemetry
//!
//! Every query publishes `query.<id>.rows` / `query.<id>.matches_in` /
//! `query.<id>.replans` counters and every group
//! `group.<key>.arrivals` / `group.<key>.drained` into the runtime's
//! [`LiveRegistry`](obs::live::LiveRegistry) (see
//! [`QueryRuntime::live`]), and [`QueryRuntime::finish`] emits one
//! [`RunManifest`](obs::RunManifest) per query.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use accel_error::JoinError;
use fqp::placement::Objective;
use fqp::plan::Catalog;
use joinsw::handshake::{HandshakeConfig, HandshakeJoin};
use joinsw::prelude::{BaselineJoin, JoinConfig, JoinSummary, SplitJoin, SplitJoinConfig, StreamJoin};
use streamcore::{MatchPair, StreamTag, Tuple};

use crate::compile::{compile, AggSpec, CompileError, CompiledQuery, EngineKind, GroupKey, Shape};
use crate::logical::LogicalPlan;

/// Errors surfaced by the runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Admission failed at compile time.
    Compile(CompileError),
    /// A query with this id is already admitted.
    Duplicate {
        /// The clashing id.
        id: String,
    },
    /// No admitted query has this id.
    Unknown {
        /// The missing id.
        id: String,
    },
    /// The operation only applies to joined queries.
    NotJoined {
        /// The single-stream query's id.
        id: String,
    },
    /// An engine verb failed.
    Engine(JoinError),
    /// An engine's shutdown accounting did not balance: results were
    /// produced that neither a drain nor the final outcome carried.
    Completeness {
        /// The group whose engine failed the check.
        group: String,
        /// Results the engine reports producing since spawn.
        produced: u64,
        /// Results actually delivered (drained + residual).
        delivered: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "{e}"),
            RuntimeError::Duplicate { id } => write!(f, "query {id:?} is already admitted"),
            RuntimeError::Unknown { id } => write!(f, "no standing query {id:?}"),
            RuntimeError::NotJoined { id } => {
                write!(f, "query {id:?} runs inline (no join engine to re-plan)")
            }
            RuntimeError::Engine(e) => write!(f, "{e}"),
            RuntimeError::Completeness {
                group,
                produced,
                delivered,
            } => write!(
                f,
                "group {group} engine produced {produced} results but only \
                 {delivered} were delivered"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Compile(e)
    }
}

impl From<JoinError> for RuntimeError {
    fn from(e: JoinError) -> Self {
        RuntimeError::Engine(e)
    }
}

/// Runtime construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Worker-pool size shared by every spawned engine.
    pub cores: usize,
    /// Placement objective used when compiling admitted queries.
    pub objective: Objective,
}

impl RuntimeConfig {
    /// A pool of `cores` workers optimizing for throughput.
    pub fn new(cores: usize) -> Self {
        Self {
            cores,
            objective: Objective::MaxThroughput,
        }
    }
}

/// Any physical engine behind one dispatchable surface. The
/// [`StreamJoin`] trait has engine-specific associated types, so the
/// runtime erases them with this enum rather than boxing.
enum AnyEngine {
    Baseline(Box<BaselineJoin>),
    Split(Box<SplitJoin>),
    Handshake(Box<HandshakeJoin>),
}

/// What an engine reports at shutdown, engine-erased.
struct EngineOutcome {
    residual: Vec<MatchPair>,
    result_count: u64,
    orphaned_tuples: u64,
    results_dropped: u64,
}

impl AnyEngine {
    /// Spawns an engine of `kind` with windows that realize `window`
    /// exactly: the worker count is clamped to the largest pool divisor
    /// of `window` so `effective_window == window` and shared-engine
    /// results match a single-query reference run tuple for tuple.
    fn spawn(kind: EngineKind, pool: usize, window: usize) -> Self {
        let cores = (1..=pool.max(1)).rev().find(|c| window.is_multiple_of(*c)).unwrap_or(1);
        match kind {
            EngineKind::Baseline | EngineKind::Inline => {
                AnyEngine::Baseline(Box::new(BaselineJoin::spawn(JoinConfig::new(1, window))))
            }
            EngineKind::Split => {
                AnyEngine::Split(Box::new(SplitJoin::spawn(SplitJoinConfig::new(cores, window))))
            }
            EngineKind::Handshake => {
                AnyEngine::Handshake(Box::new(HandshakeJoin::spawn(HandshakeConfig::new(cores, window))))
            }
        }
    }

    fn process(&self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError> {
        match self {
            AnyEngine::Baseline(e) => e.process(tag, tuple),
            AnyEngine::Split(e) => e.process(tag, tuple),
            AnyEngine::Handshake(e) => e.process(tag, tuple),
        }
    }

    fn flush(&self) -> Result<(), JoinError> {
        match self {
            AnyEngine::Baseline(e) => e.flush(),
            AnyEngine::Split(e) => e.flush(),
            AnyEngine::Handshake(e) => e.flush(),
        }
    }

    fn drain_results(&self) -> Result<Vec<MatchPair>, JoinError> {
        match self {
            AnyEngine::Baseline(e) => e.drain_results(),
            AnyEngine::Split(e) => e.drain_results(),
            AnyEngine::Handshake(e) => e.drain_results(),
        }
    }

    fn shutdown(self) -> Result<EngineOutcome, JoinError> {
        fn erase<O: JoinSummary>(outcome: O) -> EngineOutcome {
            EngineOutcome {
                residual: outcome.results().to_vec(),
                result_count: outcome.result_count(),
                orphaned_tuples: outcome.fault().orphaned_tuples,
                results_dropped: outcome.fault().results_dropped,
            }
        }
        match self {
            AnyEngine::Baseline(e) => e.shutdown().map(erase),
            AnyEngine::Split(e) => e.shutdown().map(erase),
            AnyEngine::Handshake(e) => e.shutdown().map(erase),
        }
    }
}

/// One engine shared by every query over the same [`GroupKey`].
struct EngineGroup {
    key: GroupKey,
    engine: AnyEngine,
    kind: EngineKind,
    members: Vec<String>,
    /// Last `window` arrivals per stream, each stamped with its global
    /// arrival sequence number — the handoff replay source
    /// (re-interleaved by stamp to reproduce arrival order).
    shadow_r: VecDeque<(u64, Tuple)>,
    shadow_s: VecDeque<(u64, Tuple)>,
    /// Global arrival counter stamping the shadows.
    seq: u64,
    /// Results harvested from the *current* engine since it spawned.
    drained_since_spawn: u64,
    replans: u64,
    arrivals: obs::live::SharedCounter,
    drained: obs::live::SharedCounter,
}

impl EngineGroup {
    fn push(&mut self, tag: StreamTag, tuple: Tuple) -> Result<(), JoinError> {
        self.engine.process(tag, tuple)?;
        // The handshake chain is only exact when waves are serialized —
        // see the module docs.
        if self.kind == EngineKind::Handshake {
            self.engine.flush()?;
        }
        let shadow = match tag {
            StreamTag::R => &mut self.shadow_r,
            StreamTag::S => &mut self.shadow_s,
        };
        shadow.push_back((self.seq, tuple));
        self.seq += 1;
        if shadow.len() > self.key.window {
            shadow.pop_front();
        }
        self.arrivals.incr();
        Ok(())
    }

    /// The shadows merged back into arrival order.
    fn replay_sequence(&self) -> Vec<(StreamTag, Tuple)> {
        let mut merged: Vec<(u64, StreamTag, Tuple)> = self
            .shadow_r
            .iter()
            .map(|&(seq, t)| (seq, StreamTag::R, t))
            .chain(self.shadow_s.iter().map(|&(seq, t)| (seq, StreamTag::S, t)))
            .collect();
        merged.sort_unstable_by_key(|&(seq, _, _)| seq);
        merged.into_iter().map(|(_, tag, t)| (tag, t)).collect()
    }

    fn metric_key(key: &GroupKey) -> String {
        format!("{}_{}_w{}", key.left, key.right, key.window)
    }
}

/// The windowed-aggregate execution state of a single-stream query.
struct AggState {
    spec: AggSpec,
    values: VecDeque<u64>,
}

impl AggState {
    fn push(&mut self, v: u64) -> Option<u64> {
        use fqp::query::WindowKind;
        self.values.push_back(v);
        match self.spec.kind {
            WindowKind::Sliding => {
                if self.values.len() > self.spec.window {
                    self.values.pop_front();
                }
                Some(self.eval())
            }
            WindowKind::Tumbling => {
                if self.values.len() == self.spec.window {
                    let out = self.eval();
                    self.values.clear();
                    Some(out)
                } else {
                    None
                }
            }
        }
    }

    fn eval(&self) -> u64 {
        use fqp::query::AggFunc;
        let n = self.values.len() as u64;
        match self.spec.func {
            AggFunc::Count => n,
            AggFunc::Sum => self.values.iter().sum(),
            AggFunc::Min => self.values.iter().copied().min().unwrap_or(0),
            AggFunc::Max => self.values.iter().copied().max().unwrap_or(0),
            AggFunc::Avg => self.values.iter().sum::<u64>().checked_div(n).unwrap_or(0),
        }
    }
}

/// One admitted standing query.
struct Standing {
    compiled: CompiledQuery,
    rows: Vec<Vec<u64>>,
    agg: Option<AggState>,
    /// Records fanned in (plain count — authoritative for reports even
    /// when the `obs` feature compiles the live counters to no-ops).
    seen: u64,
    /// Rows emitted (plain count, same reasoning).
    emitted: u64,
    matches_in: obs::live::SharedCounter,
    rows_out: obs::live::SharedCounter,
    replans: u64,
}

impl Standing {
    /// Fans one full-record value vector through the post pipeline.
    fn feed(&mut self, values: &[u64]) {
        self.seen += 1;
        self.matches_in.incr();
        let post = match &self.compiled.shape {
            Shape::Single { post, .. } | Shape::Joined { post, .. } => post,
        };
        if let Some(agg) = &mut self.agg {
            // Aggregates: filter, then fold the selected field.
            if !post.conditions.iter().all(|c| c.eval(values)) {
                return;
            }
            let v = agg.spec.field.map_or(1, |i| values[i]);
            if let Some(out) = agg.push(v) {
                self.rows.push(vec![out]);
                self.emitted += 1;
                self.rows_out.incr();
            }
        } else if let Some(row) = post.apply(values) {
            self.rows.push(row);
            self.emitted += 1;
            self.rows_out.incr();
        }
    }
}

/// The accounting of one drain-and-handoff re-plan. All counts are for
/// the group's *old* engine unless stated otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandoffReport {
    /// The re-planned group.
    pub group: GroupKey,
    /// Engine before the handoff.
    pub from: EngineKind,
    /// Engine after the handoff.
    pub to: EngineKind,
    /// Results harvested by the handoff's final drain.
    pub drained: u64,
    /// Results the shutdown outcome still carried after that drain
    /// (zero in a healthy handoff: nothing arrives between the drain
    /// barrier and shutdown).
    pub residual: u64,
    /// Total results the old engine produced over its whole life.
    pub produced_total: u64,
    /// Total results delivered to queries over the engine's life
    /// (earlier drains + final drain + residual).
    pub delivered_total: u64,
    /// Window tuples orphaned by worker loss (0 unless faults were
    /// injected).
    pub orphaned_tuples: u64,
    /// Results dropped on the engine's floor (0 unless faults).
    pub results_dropped: u64,
    /// Tuples replayed into the new engine's windows `(R, S)`.
    pub prefilled: (usize, usize),
    /// Matches the replay re-produced and the runtime discarded — each
    /// one a duplicate of a result the old engine already delivered.
    pub duplicates_discarded: u64,
}

impl HandoffReport {
    /// `true` when the handoff lost nothing: every result the old
    /// engine ever produced reached the standing queries, no window
    /// tuple was orphaned, and the new engine's windows hold exactly
    /// the old engine's contents.
    pub fn lossless(&self) -> bool {
        self.produced_total == self.delivered_total
            && self.orphaned_tuples == 0
            && self.results_dropped == 0
    }
}

impl fmt::Display for HandoffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {}, drained {} (+{} residual) of {} produced, \
             prefilled {}R/{}S{}",
            self.group,
            self.from,
            self.to,
            self.drained,
            self.residual,
            self.produced_total,
            self.prefilled.0,
            self.prefilled.1,
            if self.lossless() { ", lossless" } else { ", LOSSY" }
        )
    }
}

/// Final per-query accounting, with its archival manifest.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The query id.
    pub id: String,
    /// Engine the query ran on at the end.
    pub engine: EngineKind,
    /// Sharing group, for joined queries.
    pub group: Option<GroupKey>,
    /// Output rows not yet taken via [`QueryRuntime::take_rows`].
    pub rows: Vec<Vec<u64>>,
    /// Records fanned into the query (arrivals or join matches).
    pub matches_in: u64,
    /// Output rows emitted over the query's life.
    pub rows_emitted: u64,
    /// Re-plans this query lived through.
    pub replans: u64,
    /// The per-query archival manifest (`query_<id>`), carrying the
    /// query text, engine, group, and counters.
    pub manifest: obs::RunManifest,
}

/// The multi-tenant standing-query runtime. See the module docs for the
/// sharing and re-planning model.
pub struct QueryRuntime {
    catalog: Catalog,
    config: RuntimeConfig,
    live: obs::live::LiveRegistry,
    groups: BTreeMap<GroupKey, EngineGroup>,
    queries: BTreeMap<String, Standing>,
}

impl QueryRuntime {
    /// Creates a runtime over `catalog`.
    pub fn new(catalog: Catalog, config: RuntimeConfig) -> Self {
        Self {
            catalog,
            config,
            live: obs::live::LiveRegistry::new(),
            groups: BTreeMap::new(),
            queries: BTreeMap::new(),
        }
    }

    /// The runtime's live-metric registry (`query.*` and `group.*`
    /// series) — hand it to an [`obs::live::Sampler`] or scrape
    /// endpoint to watch standing queries in flight.
    pub fn live(&self) -> &obs::live::LiveRegistry {
        &self.live
    }

    /// Admitted query ids, sorted.
    pub fn query_ids(&self) -> Vec<&str> {
        self.queries.keys().map(String::as_str).collect()
    }

    /// Number of live engine groups (shared engines).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The engine a query currently runs on.
    pub fn engine_of(&self, id: &str) -> Option<EngineKind> {
        let q = self.queries.get(id)?;
        match q.compiled.group() {
            Some(key) => self.groups.get(key).map(|g| g.kind),
            None => Some(EngineKind::Inline),
        }
    }

    /// Compiles and admits a standing query under `id`. Joined queries
    /// attach to an existing engine group when one matches their
    /// [`GroupKey`] (the group keeps its current engine); otherwise the
    /// compiled engine choice is spawned. Returns the engine the query
    /// runs on.
    ///
    /// A query admitted after arrivals have already flowed only sees
    /// matches from its admission point onward (its group's windows are
    /// shared, its result stream starts now).
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Duplicate`] for an id collision, or any
    /// [`CompileError`] via [`RuntimeError::Compile`].
    pub fn admit(&mut self, id: &str, logical: &LogicalPlan) -> Result<EngineKind, RuntimeError> {
        if self.queries.contains_key(id) {
            return Err(RuntimeError::Duplicate { id: id.to_string() });
        }
        let compiled = compile(logical, &self.catalog, self.config.cores, self.config.objective)?;
        let engine = match &compiled.shape {
            Shape::Single { .. } => EngineKind::Inline,
            Shape::Joined { key, .. } => {
                if let Some(group) = self.groups.get_mut(key) {
                    group.members.push(id.to_string());
                    group.kind
                } else {
                    let metric = EngineGroup::metric_key(key);
                    let group = EngineGroup {
                        key: key.clone(),
                        engine: AnyEngine::spawn(compiled.engine, self.config.cores, key.window),
                        kind: compiled.engine,
                        members: vec![id.to_string()],
                        shadow_r: VecDeque::with_capacity(key.window + 1),
                        shadow_s: VecDeque::with_capacity(key.window + 1),
                        seq: 0,
                        drained_since_spawn: 0,
                        replans: 0,
                        arrivals: self.live.counter(&format!("group.{metric}.arrivals")),
                        drained: self.live.counter(&format!("group.{metric}.drained")),
                    };
                    self.groups.insert(key.clone(), group);
                    compiled.engine
                }
            }
        };
        let agg = match &compiled.shape {
            Shape::Single {
                aggregate: Some(spec),
                ..
            } => Some(AggState {
                spec: *spec,
                values: VecDeque::new(),
            }),
            _ => None,
        };
        self.queries.insert(
            id.to_string(),
            Standing {
                compiled,
                rows: Vec::new(),
                agg,
                seen: 0,
                emitted: 0,
                matches_in: self.live.counter(&format!("query.{id}.matches_in")),
                rows_out: self.live.counter(&format!("query.{id}.rows")),
                replans: 0,
            },
        );
        Ok(engine)
    }

    /// Routes one arrival on `stream` to every standing query and
    /// engine group that consumes it.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Engine`] when an engine rejects the tuple.
    pub fn push(&mut self, stream: &str, tuple: Tuple) -> Result<(), RuntimeError> {
        let stream = stream.to_ascii_lowercase();
        for group in self.groups.values_mut() {
            if group.key.left == stream {
                group.push(StreamTag::R, tuple)?;
            }
            if group.key.right == stream {
                group.push(StreamTag::S, tuple)?;
            }
        }
        for q in self.queries.values_mut() {
            if let Shape::Single {
                stream: s, arity, ..
            } = &q.compiled.shape
            {
                if *s == stream {
                    let values = [tuple.key() as u64, tuple.payload() as u64];
                    let arity = *arity;
                    q.feed(&values[..arity]);
                }
            }
        }
        Ok(())
    }

    /// Routes a batch of arrivals on `stream`.
    ///
    /// # Errors
    ///
    /// See [`QueryRuntime::push`].
    pub fn push_batch(&mut self, stream: &str, tuples: &[Tuple]) -> Result<(), RuntimeError> {
        for &t in tuples {
            self.push(stream, t)?;
        }
        Ok(())
    }

    /// Harvests every group engine's pending matches and fans them
    /// through the member queries' post pipelines. Returns the total
    /// number of matches drained.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Engine`] — including
    /// [`JoinError::DrainStalled`]
    /// if a collector fails to catch up with its workers.
    pub fn poll(&mut self) -> Result<u64, RuntimeError> {
        let mut total = 0;
        let keys: Vec<GroupKey> = self.groups.keys().cloned().collect();
        for key in keys {
            total += self.drain_group(&key)?;
        }
        Ok(total)
    }

    fn drain_group(&mut self, key: &GroupKey) -> Result<u64, RuntimeError> {
        let group = self.groups.get_mut(key).expect("caller verified the group");
        let matches = group.engine.drain_results()?;
        group.drained_since_spawn += matches.len() as u64;
        group.drained.add(matches.len() as u64);
        let members = group.members.clone();
        self.fan_out(&members, &matches);
        Ok(matches.len() as u64)
    }

    fn fan_out(&mut self, members: &[String], matches: &[MatchPair]) {
        for id in members {
            let Some(q) = self.queries.get_mut(id) else { continue };
            let Shape::Joined {
                left_arity,
                right_arity,
                ..
            } = q.compiled.shape
            else {
                continue;
            };
            let mut values = [0u64; 4];
            for m in matches {
                let left = [m.r.key() as u64, m.r.payload() as u64];
                let right = [m.s.key() as u64, m.s.payload() as u64];
                values[..left_arity].copy_from_slice(&left[..left_arity]);
                values[left_arity..left_arity + right_arity]
                    .copy_from_slice(&right[..right_arity]);
                q.feed(&values[..left_arity + right_arity]);
            }
        }
    }

    /// Takes the rows a query has produced since the last take.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`] for an unadmitted id.
    pub fn take_rows(&mut self, id: &str) -> Result<Vec<Vec<u64>>, RuntimeError> {
        let q = self.queries.get_mut(id).ok_or_else(|| RuntimeError::Unknown {
            id: id.to_string(),
        })?;
        Ok(std::mem::take(&mut q.rows))
    }

    /// Re-plans a joined query's group onto the engine `objective`
    /// prefers, using drain-and-handoff (see the module docs). Every
    /// member query of the group moves with it. Returns the handoff
    /// accounting; a no-op handoff (same engine) still drains and
    /// reports.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`], [`RuntimeError::NotJoined`] for
    /// inline queries, [`RuntimeError::Engine`] on a failed verb, or
    /// [`RuntimeError::Completeness`] if the old engine's accounting
    /// does not balance.
    pub fn replan(&mut self, id: &str, objective: Objective) -> Result<HandoffReport, RuntimeError> {
        let q = self.queries.get(id).ok_or_else(|| RuntimeError::Unknown {
            id: id.to_string(),
        })?;
        let key = q
            .compiled
            .group()
            .ok_or_else(|| RuntimeError::NotJoined { id: id.to_string() })?
            .clone();
        let target = compile(&q.compiled.logical, &self.catalog, self.config.cores, objective)?
            .engine;

        // 1. Drain the old engine and fan the harvest out.
        let drained = self.drain_group(&key)?;
        let group = self.groups.get_mut(&key).expect("drained above");
        let from = group.kind;
        let delivered_before = group.drained_since_spawn;

        // 2. Shut it down and verify completeness. The residual is
        // whatever slipped between the drain barrier and shutdown
        // (nothing, absent concurrent pushes); it is fanned out too, so
        // it is delivered, not lost.
        let engine = std::mem::replace(
            &mut group.engine,
            AnyEngine::spawn(target, self.config.cores, key.window),
        );
        group.kind = target;
        group.drained_since_spawn = 0;
        group.replans += 1;
        let outcome = engine.shutdown()?;
        let members = group.members.clone();
        let replay = group.replay_sequence();
        let prefilled = (group.shadow_r.len(), group.shadow_s.len());
        self.fan_out(&members, &outcome.residual);
        let delivered_total = delivered_before + outcome.residual.len() as u64;
        if delivered_total != outcome.result_count {
            return Err(RuntimeError::Completeness {
                group: key.to_string(),
                produced: outcome.result_count,
                delivered: delivered_total,
            });
        }

        // 3. Replay the shadow through the new engine in original
        // arrival order, then discard the duplicate matches it
        // re-produces (already delivered by the old engine — see the
        // module docs). After this the new engine's windows are exactly
        // the old engine's and its result stream continues seamlessly.
        let group = self.groups.get_mut(&key).expect("still present");
        for &(tag, tuple) in &replay {
            group.engine.process(tag, tuple)?;
            if group.kind == EngineKind::Handshake {
                group.engine.flush()?;
            }
        }
        let duplicates = group.engine.drain_results()?;
        group.drained_since_spawn += duplicates.len() as u64;

        for id in &members {
            if let Some(q) = self.queries.get_mut(id) {
                q.compiled.engine = target;
                q.replans += 1;
                self.live.counter(&format!("query.{id}.replans")).incr();
            }
        }

        Ok(HandoffReport {
            group: key,
            from,
            to: target,
            drained,
            residual: outcome.residual.len() as u64,
            produced_total: outcome.result_count,
            delivered_total,
            orphaned_tuples: outcome.orphaned_tuples,
            results_dropped: outcome.results_dropped,
            prefilled,
            duplicates_discarded: duplicates.len() as u64,
        })
    }

    /// Cancels a standing query. When it was the last member of its
    /// engine group, the group's engine is drained (the final harvest
    /// still reaches the query's report) and shut down with the same
    /// completeness check as [`QueryRuntime::finish`].
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Unknown`], [`RuntimeError::Engine`], or
    /// [`RuntimeError::Completeness`].
    pub fn cancel(&mut self, id: &str) -> Result<QueryReport, RuntimeError> {
        if !self.queries.contains_key(id) {
            return Err(RuntimeError::Unknown { id: id.to_string() });
        }
        let key = self.queries[id].compiled.group().cloned();
        if let Some(key) = &key {
            self.drain_group(key)?;
            let group = self.groups.get_mut(key).expect("member implies group");
            group.members.retain(|m| m != id);
            if group.members.is_empty() {
                let group = self.groups.remove(key).expect("present");
                let delivered = group.drained_since_spawn;
                let outcome = group.engine.shutdown()?;
                // The last member is gone, so the residual has no
                // audience — but it must still balance the books.
                let delivered = delivered + outcome.residual.len() as u64;
                if delivered != outcome.result_count {
                    return Err(RuntimeError::Completeness {
                        group: key.to_string(),
                        produced: outcome.result_count,
                        delivered,
                    });
                }
            }
        }
        let q = self.queries.remove(id).expect("checked above");
        Ok(self.report(id, q))
    }

    /// Drains and shuts down every engine, verifies completeness, and
    /// returns one [`QueryReport`] (with archival manifest) per query,
    /// sorted by id.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Engine`] or [`RuntimeError::Completeness`].
    pub fn finish(mut self) -> Result<Vec<QueryReport>, RuntimeError> {
        let keys: Vec<GroupKey> = self.groups.keys().cloned().collect();
        for key in keys {
            self.drain_group(&key)?;
            let group = self.groups.remove(&key).expect("just listed");
            let members = group.members.clone();
            let delivered_before = group.drained_since_spawn;
            let outcome = group.engine.shutdown()?;
            self.fan_out(&members, &outcome.residual);
            let delivered = delivered_before + outcome.residual.len() as u64;
            if delivered != outcome.result_count {
                return Err(RuntimeError::Completeness {
                    group: key.to_string(),
                    produced: outcome.result_count,
                    delivered,
                });
            }
        }
        let queries = std::mem::take(&mut self.queries);
        Ok(queries
            .into_iter()
            .map(|(id, q)| self.report(&id, q))
            .collect())
    }

    fn report(&self, id: &str, q: Standing) -> QueryReport {
        let engine = match q.compiled.group() {
            Some(key) => self
                .groups
                .get(key)
                .map_or(q.compiled.engine, |g| g.kind),
            None => EngineKind::Inline,
        };
        let mut manifest = obs::RunManifest::new(format!("query_{id}"));
        manifest.config("query", &q.compiled.logical);
        manifest.config("engine", engine);
        manifest.config("objective", format!("{:?}", self.config.objective));
        manifest.config("cores", self.config.cores);
        if let Some(key) = q.compiled.group() {
            manifest.config("group", key);
        }
        manifest.counter(format!("query.{id}.matches_in"), q.seen);
        manifest.counter(format!("query.{id}.rows"), q.emitted);
        manifest.counter(format!("query.{id}.replans"), q.replans);
        QueryReport {
            id: id.to_string(),
            engine,
            group: q.compiled.group().cloned(),
            matches_in: q.seen,
            rows_emitted: q.emitted,
            replans: q.replans,
            rows: q.rows,
            manifest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fqp::query::{AggFunc, CmpOp, WindowKind};
    use joinsw::baseline::reference_join;
    use streamcore::JoinPredicate;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_spec("trades=sym:32,qty:32").unwrap();
        c.register_spec("quotes=sym:32,px:32").unwrap();
        c
    }

    fn runtime(cores: usize) -> QueryRuntime {
        QueryRuntime::new(catalog(), RuntimeConfig::new(cores))
    }

    fn joined() -> LogicalPlan {
        LogicalPlan::source("trades").join(LogicalPlan::source("quotes"), "sym", 16)
    }

    /// Deterministic interleaved workload over both streams.
    fn workload(tuples: usize, domain: u32) -> Vec<(StreamTag, Tuple)> {
        use streamcore::workload::{KeyDist, WorkloadSpec};
        WorkloadSpec::new(tuples, KeyDist::Zipf { domain, s: 0.8 })
            .with_seed(7)
            .generate()
            .collect()
    }

    fn feed(rt: &mut QueryRuntime, inputs: &[(StreamTag, Tuple)]) {
        for &(tag, t) in inputs {
            let stream = match tag {
                StreamTag::R => "trades",
                StreamTag::S => "quotes",
            };
            rt.push(stream, t).unwrap();
        }
    }

    fn sorted(mut rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
        rows.sort();
        rows
    }

    #[test]
    fn shared_group_fans_matches_through_each_query() {
        let mut rt = runtime(4);
        rt.admit("all", &joined()).unwrap();
        rt.admit("big", &joined().filter("qty", CmpOp::Gt, 500)).unwrap();
        rt.admit("slim", &joined().project(["qty", "px"])).unwrap();
        assert_eq!(rt.group_count(), 1, "all three share one engine");

        let inputs = workload(400, 24);
        feed(&mut rt, &inputs);
        let reports = rt.finish().unwrap();

        let reference = reference_join(&inputs, 16, JoinPredicate::Equi);
        let whole: Vec<Vec<u64>> = reference
            .iter()
            .map(|m| {
                vec![
                    m.r.key() as u64,
                    m.r.payload() as u64,
                    m.s.key() as u64,
                    m.s.payload() as u64,
                ]
            })
            .collect();
        assert!(!whole.is_empty(), "workload produced no matches");

        let by_id: BTreeMap<&str, &QueryReport> =
            reports.iter().map(|r| (r.id.as_str(), r)).collect();
        assert_eq!(sorted(by_id["all"].rows.clone()), sorted(whole.clone()));
        assert_eq!(
            sorted(by_id["big"].rows.clone()),
            sorted(whole.iter().filter(|v| v[1] > 500).cloned().collect())
        );
        assert_eq!(
            sorted(by_id["slim"].rows.clone()),
            sorted(whole.iter().map(|v| vec![v[1], v[3]]).collect())
        );
    }

    #[test]
    fn replan_is_lossless_and_preserves_equivalence() {
        let mut rt = runtime(4);
        rt.admit("q", &joined()).unwrap();
        assert_eq!(rt.engine_of("q"), Some(EngineKind::Split));

        let inputs = workload(600, 16);
        let (first, rest) = inputs.split_at(300);
        feed(&mut rt, first);
        let handoff = rt.replan("q", Objective::MinLatency).unwrap();
        assert!(handoff.lossless(), "{handoff}");
        assert_eq!(handoff.to, EngineKind::Handshake);
        assert_eq!(rt.engine_of("q"), Some(EngineKind::Handshake));
        assert_eq!(handoff.prefilled, (
            first.iter().filter(|(t, _)| *t == StreamTag::R).count().min(16),
            first.iter().filter(|(t, _)| *t == StreamTag::S).count().min(16),
        ));
        feed(&mut rt, rest);

        let reports = rt.finish().unwrap();
        let reference = reference_join(&inputs, 16, JoinPredicate::Equi);
        let want: Vec<Vec<u64>> = reference
            .iter()
            .map(|m| {
                vec![
                    m.r.key() as u64,
                    m.r.payload() as u64,
                    m.s.key() as u64,
                    m.s.payload() as u64,
                ]
            })
            .collect();
        assert_eq!(sorted(reports[0].rows.clone()), sorted(want));
        assert_eq!(reports[0].replans, 1);
    }

    #[test]
    fn single_stream_pipelines_run_inline() {
        let mut rt = runtime(2);
        rt.admit(
            "hot",
            &LogicalPlan::source("trades")
                .filter("qty", CmpOp::Gt, 10)
                .project(["sym"]),
        )
        .unwrap();
        rt.admit(
            "volume",
            &LogicalPlan::source("trades").aggregate(
                AggFunc::Sum,
                Some("qty"),
                4,
                WindowKind::Tumbling,
            ),
        )
        .unwrap();
        assert_eq!(rt.group_count(), 0);

        for (i, qty) in [5u32, 20, 30, 40].iter().enumerate() {
            rt.push("trades", Tuple::new(i as u32, *qty)).unwrap();
        }
        assert_eq!(rt.take_rows("hot").unwrap(), vec![vec![1], vec![2], vec![3]]);
        // Tumbling SUM over the unfiltered arrivals: one row per 4.
        assert_eq!(rt.take_rows("volume").unwrap(), vec![vec![95]]);
    }

    #[test]
    fn duplicate_unknown_and_inline_replans_are_typed_errors() {
        let mut rt = runtime(2);
        rt.admit("q", &joined()).unwrap();
        assert!(matches!(
            rt.admit("q", &joined()),
            Err(RuntimeError::Duplicate { .. })
        ));
        assert!(matches!(
            rt.take_rows("ghost"),
            Err(RuntimeError::Unknown { .. })
        ));
        rt.admit("inline", &LogicalPlan::source("trades")).unwrap();
        assert!(matches!(
            rt.replan("inline", Objective::MinLatency),
            Err(RuntimeError::NotJoined { .. })
        ));
        assert!(matches!(
            rt.admit("bad", &LogicalPlan::source("nope")),
            Err(RuntimeError::Compile(_))
        ));
    }

    #[test]
    fn cancel_detaches_and_reaps_empty_groups() {
        let mut rt = runtime(2);
        rt.admit("a", &joined()).unwrap();
        rt.admit("b", &joined().filter("qty", CmpOp::Gt, 0)).unwrap();
        assert_eq!(rt.group_count(), 1);

        let inputs = workload(100, 8);
        feed(&mut rt, &inputs);
        let report = rt.cancel("a").unwrap();
        assert!(report.matches_in > 0);
        assert_eq!(rt.group_count(), 1, "b still holds the group");
        let report = rt.cancel("b").unwrap();
        assert_eq!(rt.group_count(), 0, "last member reaps the engine");
        assert!(report.rows_emitted > 0);
        assert!(rt.finish().unwrap().is_empty());
    }

    // Snapshot assertions need real live cells; without the `obs`
    // feature every counter is a compiled-out no-op (report fields and
    // manifests still carry the plain counts — see `Standing`).
    #[cfg(feature = "obs")]
    #[test]
    fn live_counters_and_manifests_are_tagged_per_query() {
        let mut rt = runtime(2);
        rt.admit("tagged", &joined()).unwrap();
        let inputs = workload(120, 8);
        feed(&mut rt, &inputs);
        rt.poll().unwrap();

        let snap = rt.live().snapshot();
        assert!(snap.get("group.trades_quotes_w16.arrivals").unwrap() > 0);
        assert!(snap.get("query.tagged.matches_in").unwrap() > 0);

        let reports = rt.finish().unwrap();
        let manifest = &reports[0].manifest;
        assert_eq!(manifest.name(), "query_tagged");
        let json = manifest.to_json();
        assert!(json.contains("query.tagged.rows"), "{json}");
        assert!(json.contains("trades"), "{json}");
    }

    #[test]
    fn poll_mid_run_streams_rows_incrementally() {
        let mut rt = runtime(2);
        rt.admit("inc", &joined()).unwrap();
        let inputs = workload(200, 8);
        let mut seen = 0u64;
        for chunk in inputs.chunks(50) {
            feed(&mut rt, chunk);
            rt.poll().unwrap();
            seen += rt.take_rows("inc").unwrap().len() as u64;
        }
        let reports = rt.finish().unwrap();
        let reference = reference_join(&inputs, 16, JoinPredicate::Equi);
        assert_eq!(seen + reports[0].rows.len() as u64, reference.len() as u64);
    }
}
