//! Acceptance test for the ISSUE's multi-tenancy bar: at least four
//! concurrent standing queries sharing one worker pool, each query's
//! rows matching its single-query reference run exactly (multiset
//! equality), and a live re-plan completing with zero lost tuples.

use query::prelude::*;
use streamcore::workload::{KeyDist, WorkloadSpec};
use streamcore::{StreamTag, Tuple};

const TUPLES: usize = 6_000;
const WINDOW: usize = 64;
const CORES: usize = 4;

fn catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register_spec("trades=sym:32,qty:32").unwrap();
    catalog.register_spec("quotes=sym:32,px:32").unwrap();
    catalog
}

fn workload() -> Vec<(StreamTag, Tuple)> {
    WorkloadSpec::new(TUPLES, KeyDist::Zipf { domain: 32, s: 1.0 })
        .with_seed(7)
        .generate()
        .collect()
}

fn fleet() -> Vec<(&'static str, LogicalPlan)> {
    let join = || LogicalPlan::source("trades").join(LogicalPlan::source("quotes"), "sym", WINDOW);
    vec![
        ("all-pairs", join()),
        ("big-qty", join().filter("qty", CmpOp::Gt, TUPLES as u64 / 2)),
        (
            "px-view",
            join().filter("px", CmpOp::Gt, TUPLES as u64 / 4).project(["qty", "px"]),
        ),
        ("sym-only", join().project(["sym", "px"])),
    ]
}

fn stream_of(tag: StreamTag) -> &'static str {
    match tag {
        StreamTag::R => "trades",
        StreamTag::S => "quotes",
    }
}

fn solo_rows(id: &str, plan: &LogicalPlan, inputs: &[(StreamTag, Tuple)]) -> Vec<Vec<u64>> {
    let mut runtime = QueryRuntime::new(catalog(), RuntimeConfig::new(CORES));
    runtime.admit(id, plan).unwrap();
    for &(tag, tuple) in inputs {
        runtime.push(stream_of(tag), tuple).unwrap();
    }
    let mut reports = runtime.finish().unwrap();
    reports.remove(0).rows
}

fn sorted(mut rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    rows.sort_unstable();
    rows
}

#[test]
fn four_concurrent_queries_share_one_pool_and_survive_a_live_replan() {
    let fleet = fleet();
    let inputs = workload();

    let mut runtime = QueryRuntime::new(catalog(), RuntimeConfig::new(CORES));
    for (id, plan) in &fleet {
        runtime.admit(id, plan).unwrap();
    }
    assert_eq!(
        runtime.group_count(),
        1,
        "all four queries must share one engine group (one worker pool)"
    );

    let halfway = inputs.len() / 2;
    for (seq, &(tag, tuple)) in inputs.iter().enumerate() {
        if seq == halfway {
            let handoff = runtime.replan("all-pairs", Objective::MinLatency).unwrap();
            assert!(handoff.lossless(), "live re-plan must lose nothing: {handoff}");
            assert_ne!(handoff.from, handoff.to, "objective flip should switch engines");
        }
        runtime.push(stream_of(tag), tuple).unwrap();
        if seq % 1024 == 1023 {
            runtime.poll().unwrap();
        }
    }
    let reports = runtime.finish().unwrap();
    assert_eq!(reports.len(), fleet.len());

    for report in &reports {
        let (id, plan) = fleet
            .iter()
            .find(|(id, _)| *id == report.id)
            .expect("report matches an admitted query");
        assert_eq!(report.replans, 1, "{id} rides the group re-plan");
        let reference = solo_rows(id, plan, &inputs);
        assert!(!reference.is_empty(), "{id} reference run must produce rows");
        assert_eq!(
            sorted(report.rows.clone()),
            sorted(reference),
            "{id}: shared (re-planned) run must equal its solo reference as a multiset"
        );
    }
}
