//! Optional CPU affinity for join-core threads — std-only, no libc
//! crate: on Linux the `sched_setaffinity` symbol is already linked
//! through std's libc dependency, so a direct `extern "C"` declaration
//! is enough; everywhere else pinning is a no-op.
//!
//! Pinning matters to the SPSC transport for the same reason the
//! hardware design hard-wires its distribution network: a ring's two
//! hot cache lines (head and tail) are cheapest when each side stays on
//! one core and the lines never migrate. It is off by default because
//! it only helps when the host actually has a core per worker.

/// Pins the calling thread to `core` (mod the number of configured
/// CPUs is the caller's business). Returns `true` on success, `false`
/// when the kernel refused or the platform has no affinity support —
/// callers treat failure as "run unpinned", never as an error.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    // A fixed 1024-CPU mask, the size of glibc's cpu_set_t. Bit `core`
    // of the little-endian unsigned-long array is byte core/8, bit
    // core%8 — this crate only builds the Linux path on little-endian
    // targets in practice.
    const MASK_BYTES: usize = 128;
    if core >= MASK_BYTES * 8 {
        return false;
    }
    let mut mask = [0u8; MASK_BYTES];
    mask[core / 8] |= 1 << (core % 8);
    #[allow(unsafe_code)]
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u8) -> i32;
    }
    // SAFETY: pid 0 targets the calling thread; the mask pointer and
    // length describe a live, correctly sized local buffer.
    #[allow(unsafe_code)]
    unsafe {
        sched_setaffinity(0, MASK_BYTES, mask.as_ptr()) == 0
    }
}

/// Non-Linux platforms: affinity is a no-op and reports failure.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_the_first_core_succeeds_on_linux() {
        // Core 0 always exists; miri has no syscalls, so skip there.
        #[cfg(not(miri))]
        assert!(pin_to_core(0));
    }

    #[test]
    fn out_of_range_core_is_rejected_not_ub() {
        assert!(!pin_to_core(usize::MAX));
    }
}
