//! Blocked batch×window probe kernels — the software analog of the
//! paper's comparator array.
//!
//! The hardware join wins by evaluating many comparators per cycle; the
//! scalar software path pays O(window) per probe with a fresh pass over
//! the stored keys for every tuple. These kernels restructure that work
//! as a *block*: all B probe keys of a distribution batch are compared
//! against the window's struct-of-arrays key slice in cache-sized tiles
//! of [`TILE_KEYS`] keys, so each tile is loaded from memory once and
//! reused across the whole batch instead of B times.
//!
//! The inner loops are 8-wide manually unrolled compare-and-accumulate
//! (counting) or compare-and-mask (materializing) sweeps over plain
//! `u32` slices; on stable Rust the autovectorizer lowers them to SIMD
//! compares. The materializing path first builds an 8-bit match mask
//! per key group and then walks its set bits (`trailing_zeros` +
//! clear-lowest-bit), which keeps the hot compare loop branch-free —
//! mispredicted per-key `if match { push }` branches are what make the
//! scalar emitter slow on selective predicates.
//!
//! Per-predicate specializations mirror
//! [`JoinPredicate::count_matches`]: the predicate dispatch and the
//! [`JoinPredicate::LessThan`] orientation are hoisted out of the loops,
//! and [`JoinPredicate::All`] short-circuits to `B * window` without
//! touching a single key.
//!
//! ```
//! use streamcore::kernel::{count_block, KernelStats};
//! use streamcore::JoinPredicate;
//!
//! let probes = [3u32, 5, 7, 9];
//! let window = [5u32, 5, 9, 11, 2];
//! let mut stats = KernelStats::default();
//! let n = count_block(JoinPredicate::Equi, true, &probes, &window, &mut stats);
//! assert_eq!(n, 3); // 5 twice, 9 once
//! assert_eq!(stats.lanes, (probes.len() * window.len()) as u64);
//! ```

use crate::JoinPredicate;

/// Keys per tile of the blocked sweep. 1024 × 4-byte keys = 4 KiB, far
/// inside L1, so a tile stays resident while every probe of the batch
/// sweeps it.
pub const TILE_KEYS: usize = 1024;

/// Below this many probes a blocked pass cannot amortize its per-batch
/// setup (window snapshotting in the caller); callers fall back to the
/// scalar per-tuple path and count the probes in
/// [`KernelStats::scalar_fallbacks`].
pub const MIN_BLOCK_PROBES: usize = 8;

/// Telemetry for the blocked kernels, surfaced as `splitjoin.kernel.*`
/// in run manifests.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Key tiles swept (a tile shorter than [`TILE_KEYS`] still counts
    /// as one). [`JoinPredicate::All`] blocks short-circuit and sweep
    /// zero tiles.
    pub tiles: u64,
    /// Probe×key comparator lanes evaluated (logical lanes for the
    /// `All` short-circuit).
    pub lanes: u64,
    /// Lanes that matched — set bits across all produced masks.
    pub match_bits: u64,
    /// Probes handled by the scalar path instead: batches below
    /// [`MIN_BLOCK_PROBES`], plus per-probe correction scans the caller
    /// runs outside the block (expired snapshot prefixes, intra-batch
    /// stores).
    pub scalar_fallbacks: u64,
}

impl KernelStats {
    /// Folds another worker's counters into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.tiles += other.tiles;
        self.lanes += other.lanes;
        self.match_bits += other.match_bits;
        self.scalar_fallbacks += other.scalar_fallbacks;
    }

    /// Match-bit density in fixed-point thousandths (`match_bits /
    /// lanes × 1000`), the registry's fraction idiom. Zero when no
    /// lanes ran.
    #[must_use]
    pub fn density_x1000(&self) -> u64 {
        (self.match_bits * 1000).checked_div(self.lanes).unwrap_or(0)
    }
}

/// Sums a predicate over one 8-key group against one probe key. The
/// eight independent terms are what the autovectorizer turns into a
/// SIMD compare + accumulate.
#[inline(always)]
fn sum8(g: &[u32], p: u32, f: impl Fn(u32, u32) -> bool + Copy) -> u32 {
    (f(g[0], p) as u32)
        + (f(g[1], p) as u32)
        + (f(g[2], p) as u32)
        + (f(g[3], p) as u32)
        + (f(g[4], p) as u32)
        + (f(g[5], p) as u32)
        + (f(g[6], p) as u32)
        + (f(g[7], p) as u32)
}

/// Builds the 8-bit match mask of one key group against one probe key
/// (bit i set ⇔ `f(g[i], p)`).
#[inline(always)]
fn mask8(g: &[u32], p: u32, f: impl Fn(u32, u32) -> bool + Copy) -> u32 {
    (f(g[0], p) as u32)
        | ((f(g[1], p) as u32) << 1)
        | ((f(g[2], p) as u32) << 2)
        | ((f(g[3], p) as u32) << 3)
        | ((f(g[4], p) as u32) << 4)
        | ((f(g[5], p) as u32) << 5)
        | ((f(g[6], p) as u32) << 6)
        | ((f(g[7], p) as u32) << 7)
}

/// The blocked counting sweep, monomorphized per predicate arm.
/// Probes advance in register quads so four probe keys share every
/// 8-key tile load (4 × 8 comparator lanes per unrolled step).
#[inline(always)]
fn count_block_with(
    probes: &[u32],
    keys: &[u32],
    stats: &mut KernelStats,
    f: impl Fn(u32, u32) -> bool + Copy,
) -> u64 {
    let mut total = 0u64;
    for tile in keys.chunks(TILE_KEYS) {
        stats.tiles += 1;
        stats.lanes += (tile.len() * probes.len()) as u64;
        let mut quads = probes.chunks_exact(4);
        for q in quads.by_ref() {
            let (p0, p1, p2, p3) = (q[0], q[1], q[2], q[3]);
            // Per-probe accumulators stay u32: a tile holds at most
            // TILE_KEYS keys, far below u32::MAX.
            let (mut a0, mut a1, mut a2, mut a3) = (0u32, 0u32, 0u32, 0u32);
            let mut groups = tile.chunks_exact(8);
            for g in groups.by_ref() {
                a0 += sum8(g, p0, f);
                a1 += sum8(g, p1, f);
                a2 += sum8(g, p2, f);
                a3 += sum8(g, p3, f);
            }
            for &k in groups.remainder() {
                a0 += f(k, p0) as u32;
                a1 += f(k, p1) as u32;
                a2 += f(k, p2) as u32;
                a3 += f(k, p3) as u32;
            }
            total += u64::from(a0) + u64::from(a1) + u64::from(a2) + u64::from(a3);
        }
        for &p in quads.remainder() {
            let mut acc = 0u32;
            let mut groups = tile.chunks_exact(8);
            for g in groups.by_ref() {
                acc += sum8(g, p, f);
            }
            for &k in groups.remainder() {
                acc += f(k, p) as u32;
            }
            total += u64::from(acc);
        }
    }
    stats.match_bits += total;
    total
}

/// The blocked materializing sweep: per 8-key group build the match
/// mask, then emit only its set bits.
#[inline(always)]
fn emit_block_with(
    probes: &[u32],
    keys: &[u32],
    stats: &mut KernelStats,
    f: impl Fn(u32, u32) -> bool + Copy,
    on_match: &mut impl FnMut(usize, usize),
) {
    let mut base = 0usize;
    for tile in keys.chunks(TILE_KEYS) {
        stats.tiles += 1;
        stats.lanes += (tile.len() * probes.len()) as u64;
        for (pi, &p) in probes.iter().enumerate() {
            let mut off = 0usize;
            let mut groups = tile.chunks_exact(8);
            for g in groups.by_ref() {
                let mut mask = mask8(g, p, f);
                stats.match_bits += u64::from(mask.count_ones());
                while mask != 0 {
                    let bit = mask.trailing_zeros() as usize;
                    on_match(pi, base + off + bit);
                    mask &= mask - 1;
                }
                off += 8;
            }
            for (i, &k) in groups.remainder().iter().enumerate() {
                if f(k, p) {
                    stats.match_bits += 1;
                    on_match(pi, base + off + i);
                }
            }
        }
        base += tile.len();
    }
}

/// Counts all matching (probe, key) pairs of a batch of probe keys
/// against a window key slice.
///
/// Equivalent to summing [`JoinPredicate::count_matches`] over the
/// probes, but tiled so every [`TILE_KEYS`]-key slice of the window is
/// loaded once for the whole batch. `probe_is_r` orients the one
/// asymmetric predicate exactly as `count_matches` does.
pub fn count_block(
    pred: JoinPredicate,
    probe_is_r: bool,
    probes: &[u32],
    keys: &[u32],
    stats: &mut KernelStats,
) -> u64 {
    match pred {
        JoinPredicate::Equi => count_block_with(probes, keys, stats, |k, p| k == p),
        JoinPredicate::Band { delta } => {
            count_block_with(probes, keys, stats, move |k, p| k.abs_diff(p) <= delta)
        }
        JoinPredicate::LessThan => {
            if probe_is_r {
                count_block_with(probes, keys, stats, |k, p| p < k)
            } else {
                count_block_with(probes, keys, stats, |k, p| k < p)
            }
        }
        JoinPredicate::All => {
            // Cross product: every lane matches, so the count is known
            // without sweeping a single tile.
            let n = probes.len() as u64 * keys.len() as u64;
            stats.lanes += n;
            stats.match_bits += n;
            n
        }
    }
}

/// Emits every matching `(probe_idx, key_idx)` pair of a batch of probe
/// keys against a window key slice, per probe in ascending key order.
///
/// The pair indices let the caller materialize full tuples from its own
/// payload arrays (and filter per-probe index ranges, e.g. entries that
/// had already slid out of the window at that probe's logical time).
pub fn emit_block(
    pred: JoinPredicate,
    probe_is_r: bool,
    probes: &[u32],
    keys: &[u32],
    stats: &mut KernelStats,
    mut on_match: impl FnMut(usize, usize),
) {
    match pred {
        JoinPredicate::Equi => emit_block_with(probes, keys, stats, |k, p| k == p, &mut on_match),
        JoinPredicate::Band { delta } => emit_block_with(
            probes,
            keys,
            stats,
            move |k, p| k.abs_diff(p) <= delta,
            &mut on_match,
        ),
        JoinPredicate::LessThan => {
            if probe_is_r {
                emit_block_with(probes, keys, stats, |k, p| p < k, &mut on_match)
            } else {
                emit_block_with(probes, keys, stats, |k, p| k < p, &mut on_match)
            }
        }
        JoinPredicate::All => {
            let n = probes.len() as u64 * keys.len() as u64;
            stats.lanes += n;
            stats.match_bits += n;
            for pi in 0..probes.len() {
                for ki in 0..keys.len() {
                    on_match(pi, ki);
                }
            }
        }
    }
}

/// Issues a best-effort read prefetch for `slice[idx]`; out-of-bounds
/// indices and non-x86_64 targets are no-ops.
///
/// Used by hash-indexed chain walks to overlap the next chain node's
/// cache miss with the current node's compare — the pointer-chasing
/// analog of the blocked kernels' tile reuse.
#[inline(always)]
#[allow(unsafe_code)]
pub fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < slice.len() {
        // SAFETY: `idx` is in bounds, so the pointer derives from the
        // slice's live allocation; PREFETCHT0 is a pure hint with no
        // architectural effect on memory either way.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                slice.as_ptr().add(idx).cast::<i8>(),
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i.wrapping_mul(2_654_435_761) % 97).collect()
    }

    fn reference_count(
        pred: JoinPredicate,
        probe_is_r: bool,
        probes: &[u32],
        window: &[u32],
    ) -> u64 {
        probes
            .iter()
            .map(|&p| {
                window
                    .iter()
                    .filter(|&&k| {
                        if probe_is_r {
                            pred.matches_keys(p, k)
                        } else {
                            pred.matches_keys(k, p)
                        }
                    })
                    .count() as u64
            })
            .sum()
    }

    const PREDICATES: [JoinPredicate; 5] = [
        JoinPredicate::Equi,
        JoinPredicate::Band { delta: 0 },
        JoinPredicate::Band { delta: 5 },
        JoinPredicate::LessThan,
        JoinPredicate::All,
    ];

    #[test]
    fn count_block_matches_reference_across_shapes() {
        // Sizes straddle the 8-wide unroll, the probe quads, and the
        // tile boundary.
        for &np in &[1usize, 3, 4, 7, 8, 9, 31] {
            for &nk in &[0usize, 1, 7, 8, 9, 64, TILE_KEYS - 1, TILE_KEYS + 3] {
                let probes = keys(np);
                let window = keys(nk);
                for pred in PREDICATES {
                    for probe_is_r in [true, false] {
                        let mut stats = KernelStats::default();
                        let got = count_block(pred, probe_is_r, &probes, &window, &mut stats);
                        let want = reference_count(pred, probe_is_r, &probes, &window);
                        assert_eq!(got, want, "{pred:?} r={probe_is_r} np={np} nk={nk}");
                        assert_eq!(stats.match_bits, want);
                        assert_eq!(stats.lanes, (np * nk) as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn emit_block_agrees_with_count_and_orders_keys_per_probe() {
        let probes = keys(13);
        let window = keys(200);
        for pred in PREDICATES {
            for probe_is_r in [true, false] {
                let mut stats = KernelStats::default();
                let mut pairs = Vec::new();
                emit_block(pred, probe_is_r, &probes, &window, &mut stats, |pi, ki| {
                    pairs.push((pi, ki));
                });
                let want = reference_count(pred, probe_is_r, &probes, &window);
                assert_eq!(pairs.len() as u64, want, "{pred:?} r={probe_is_r}");
                assert_eq!(stats.match_bits, want);
                for (pi, ki) in &pairs {
                    let (p, k) = (probes[*pi], window[*ki]);
                    let hit = if probe_is_r {
                        pred.matches_keys(p, k)
                    } else {
                        pred.matches_keys(k, p)
                    };
                    assert!(hit, "{pred:?} emitted non-match ({pi}, {ki})");
                }
                // Per probe, key indices come out ascending (callers
                // range-filter on them).
                let mut per_probe = vec![Vec::new(); probes.len()];
                for (pi, ki) in pairs {
                    per_probe[pi].push(ki);
                }
                for kis in per_probe {
                    assert!(kis.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }

    #[test]
    fn all_predicate_short_circuits_without_tiles() {
        let probes = keys(16);
        let window = keys(3 * TILE_KEYS);
        let mut stats = KernelStats::default();
        let n = count_block(JoinPredicate::All, true, &probes, &window, &mut stats);
        assert_eq!(n, (16 * 3 * TILE_KEYS) as u64);
        assert_eq!(stats.tiles, 0, "All must not sweep tiles");
        assert_eq!(stats.density_x1000(), 1000);
    }

    #[test]
    fn band_edges_saturate_correctly() {
        // abs_diff handles the 0 / u32::MAX rim without overflow.
        let probes = [0u32, u32::MAX];
        let window = [0u32, 1, u32::MAX - 1, u32::MAX];
        let mut stats = KernelStats::default();
        let n = count_block(
            JoinPredicate::Band { delta: 1 },
            true,
            &probes,
            &window,
            &mut stats,
        );
        assert_eq!(n, 4); // 0→{0,1}, MAX→{MAX-1,MAX}
        let mut stats = KernelStats::default();
        let all = count_block(
            JoinPredicate::Band { delta: u32::MAX },
            false,
            &probes,
            &window,
            &mut stats,
        );
        assert_eq!(all, 8);
    }

    #[test]
    fn stats_merge_and_density() {
        let mut a = KernelStats {
            tiles: 1,
            lanes: 100,
            match_bits: 10,
            scalar_fallbacks: 2,
        };
        let b = KernelStats {
            tiles: 2,
            lanes: 100,
            match_bits: 40,
            scalar_fallbacks: 0,
        };
        a.merge(&b);
        assert_eq!(a.tiles, 3);
        assert_eq!(a.lanes, 200);
        assert_eq!(a.density_x1000(), 250);
        assert_eq!(KernelStats::default().density_x1000(), 0);
    }

    #[test]
    fn prefetch_is_safe_at_any_index() {
        let v = vec![1u32, 2, 3];
        prefetch_read(&v, 0);
        prefetch_read(&v, 2);
        prefetch_read(&v, 3); // out of bounds: no-op
        prefetch_read::<u32>(&[], 0);
    }
}
