//! Stream-processing substrate shared by the hardware and software paths of
//! the acceleration-landscape reproduction.
//!
//! The paper's case study joins two unbounded streams, *R* and *S*, of
//! 64-bit tuples under count-based sliding windows. This crate provides the
//! domain vocabulary both realizations share:
//!
//! * [`Tuple`], [`StreamTag`], [`Frame`], [`MatchPair`] — the 64-bit tuple
//!   model with the 2-bit bus header of the hardware design;
//! * [`Record`], [`Schema`] — wider, schema-described records for the
//!   Flexible Query Processor;
//! * [`SlidingWindow`] — count-based sliding window semantics (the
//!   generic `VecDeque` reference backend), plus the flat
//!   struct-of-arrays backends [`FlatWindow`] and [`HashIndexWindow`]
//!   used by the software join hot paths, and the key-sharded
//!   [`PartitionedWindow`] behind hash-partitioned dispatch;
//! * [`PartitionMap`] — round-robin ownership of storage turns over live
//!   worker positions, used by the software SplitJoin coordinator to
//!   re-partition around a lost core, plus rendezvous-hashed key
//!   ownership ([`PartitionMap::key_owner`]) for content partitioning;
//! * [`FreqSketch`] — bounded Misra–Gries heavy-hitter summary driving
//!   online hot-key splitting;
//! * [`kernel`] — blocked batch×window probe kernels (tiled,
//!   autovectorizer-friendly compare sweeps), the software analog of
//!   the paper's comparator array;
//! * [`workload`] — reproducible stream generators with controllable key
//!   domains, skew, arrival interleaving, and bounded disorder;
//! * [`metrics`] — throughput and latency recorders used by every
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use streamcore::{SlidingWindow, Tuple};
//!
//! let mut window: SlidingWindow<Tuple> = SlidingWindow::new(3);
//! for k in 0..5u32 {
//!     window.insert(Tuple::new(k, 0));
//! }
//! // Capacity 3: only the last three tuples remain.
//! let keys: Vec<u32> = window.iter().map(|t| t.key()).collect();
//! assert_eq!(keys, vec![2, 3, 4]);
//! ```

// `deny` instead of `forbid`: the lock-free ring/arena transport, the
// affinity shim, and the probe-kernel prefetch hint are the only
// modules allowed to opt back in, each with per-block safety arguments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod kernel;
pub mod metrics;
mod partition;
pub mod ring;
mod predicate;
mod record;
mod sketch;
mod tuple;
mod window;
pub mod workload;

pub use partition::PartitionMap;
pub use predicate::JoinPredicate;
pub use record::{Field, Record, Schema, SchemaError};
pub use sketch::FreqSketch;
pub use tuple::{Frame, MatchPair, StreamTag, Tuple};
pub use window::{FlatWindow, HashIndexWindow, PartitionedWindow, ProbeHits, SlidingWindow};
