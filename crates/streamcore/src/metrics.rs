//! Throughput and latency measurement used by every experiment harness.

use std::fmt;
use std::time::Duration;

/// Accumulates event counts over wall-clock or simulated time and reports
/// rates.
///
/// # Example
///
/// ```
/// use streamcore::metrics::Throughput;
/// use std::time::Duration;
///
/// let t = Throughput::over_duration(1_500_000, Duration::from_millis(500));
/// assert_eq!(t.per_second(), 3_000_000.0);
/// assert_eq!(t.million_per_second(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    events: u64,
    seconds: f64,
}

impl Throughput {
    /// Throughput of `events` over `elapsed` wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    pub fn over_duration(events: u64, elapsed: Duration) -> Self {
        let seconds = elapsed.as_secs_f64();
        assert!(seconds > 0.0, "elapsed time must be positive");
        Self { events, seconds }
    }

    /// Throughput of `events` over `cycles` clock cycles at `mhz` — used by
    /// the hardware experiments, which measure in cycles and convert via
    /// the synthesis clock.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero or `mhz` is not positive.
    pub fn over_cycles(events: u64, cycles: u64, mhz: f64) -> Self {
        assert!(cycles > 0, "cycle count must be positive");
        assert!(mhz > 0.0, "clock frequency must be positive");
        Self {
            events,
            seconds: cycles as f64 / (mhz * 1e6),
        }
    }

    /// Total events counted.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Events per second.
    pub fn per_second(&self) -> f64 {
        self.events as f64 / self.seconds
    }

    /// Events per second, in millions — the unit of the paper's throughput
    /// figures.
    pub fn million_per_second(&self) -> f64 {
        self.per_second() / 1e6
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} M tuples/s", self.million_per_second())
    }
}

/// Collects latency samples and reports order statistics.
///
/// Samples are stored as nanoseconds. The recorder makes no distributional
/// assumptions; percentiles are exact (nearest-rank on the sorted sample).
///
/// # Example
///
/// ```
/// use streamcore::metrics::LatencyRecorder;
/// use std::time::Duration;
///
/// let mut rec = LatencyRecorder::new();
/// for ms in [1u64, 2, 3, 4, 100] {
///     rec.record(Duration::from_millis(ms));
/// }
/// assert_eq!(rec.len(), 5);
/// assert_eq!(rec.max().unwrap().as_millis(), 100);
/// assert_eq!(rec.percentile(50.0).unwrap().as_millis(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, sample: Duration) {
        self.samples_ns.push(sample.as_nanos() as u64);
        self.sorted = false;
    }

    /// Records a latency expressed in clock cycles at `mhz`.
    pub fn record_cycles(&mut self, cycles: u64, mhz: f64) {
        assert!(mhz > 0.0, "clock frequency must be positive");
        let ns = cycles as f64 * 1_000.0 / mhz;
        self.record(Duration::from_nanos(ns as u64));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<Duration> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let sum: u128 = self.samples_ns.iter().map(|&n| n as u128).sum();
        Some(Duration::from_nanos(
            (sum / self.samples_ns.len() as u128) as u64,
        ))
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<Duration> {
        self.samples_ns.iter().max().map(|&n| Duration::from_nanos(n))
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<Duration> {
        self.samples_ns.iter().min().map(|&n| Duration::from_nanos(n))
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<Duration> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.samples_ns.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        let n = self.samples_ns.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(Duration::from_nanos(self.samples_ns[rank - 1]))
    }

    /// Summarizes into (mean, p50, p95, p99, max). Empty recorder yields
    /// `None`.
    pub fn summary(&mut self) -> Option<LatencySummary> {
        Some(LatencySummary {
            mean: self.mean()?,
            p50: self.percentile(50.0)?,
            p95: self.percentile(95.0)?,
            p99: self.percentile(99.0)?,
            max: self.max()?,
            samples: self.len(),
        })
    }

    /// A log2-bucketed histogram of the recorded samples.
    pub fn histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &ns in &self.samples_ns {
            h.record_ns(ns);
        }
        h
    }
}

/// The log2-bucketed histogram, re-exported from the [`obs`] crate.
///
/// This was once a bucket-counts-only type local to this module; it now
/// lives in `obs` and additionally tracks exact count/sum/min/max and
/// reports p50/p95/p99 estimates, so the experiment harnesses can emit
/// full distributions into their JSON run manifests
/// ([`obs::RunManifest`]). The original API (`record_ns`, `record`,
/// `total`, `mode_bucket_ns`, `rows`, `Display`) is unchanged.
///
/// ```
/// use streamcore::metrics::Histogram;
///
/// let mut h = Histogram::new();
/// h.record_ns(100);   // bucket 6 (64..128 ns)
/// h.record_ns(100);
/// h.record_ns(5_000); // bucket 12 (4096..8192 ns)
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.mode_bucket_ns(), Some((64, 128)));
/// assert_eq!(h.p99(), Some(5_000));
/// ```
pub use obs::Histogram;

/// Condensed latency statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum observed.
    pub max: Duration,
    /// Number of samples.
    pub samples: usize,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:?}, p50 {:?}, p95 {:?}, p99 {:?}, max {:?} over {} samples",
            self.mean, self.p50, self.p95, self.p99, self.max, self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_over_duration() {
        let t = Throughput::over_duration(2_000_000, Duration::from_secs(2));
        assert_eq!(t.per_second(), 1e6);
        assert_eq!(t.million_per_second(), 1.0);
        assert_eq!(t.events(), 2_000_000);
    }

    #[test]
    fn throughput_over_cycles_matches_hand_math() {
        // 1000 tuples over 100_000 cycles at 100 MHz = 1 ms -> 1 M/s.
        let t = Throughput::over_cycles(1_000, 100_000, 100.0);
        assert!((t.per_second() - 1e6).abs() < 1e-3);
    }

    #[test]
    fn throughput_display() {
        let t = Throughput::over_duration(500, Duration::from_secs(1));
        assert_eq!(t.to_string(), "0.0005 M tuples/s");
    }

    #[test]
    #[should_panic(expected = "elapsed time must be positive")]
    fn zero_duration_panics() {
        let _ = Throughput::over_duration(1, Duration::ZERO);
    }

    #[test]
    fn latency_statistics() {
        let mut rec = LatencyRecorder::new();
        for us in 1..=100u64 {
            rec.record(Duration::from_micros(us));
        }
        assert_eq!(rec.len(), 100);
        assert_eq!(rec.mean().unwrap(), Duration::from_nanos(50_500));
        assert_eq!(rec.min().unwrap(), Duration::from_micros(1));
        assert_eq!(rec.max().unwrap(), Duration::from_micros(100));
        assert_eq!(rec.percentile(50.0).unwrap(), Duration::from_micros(50));
        assert_eq!(rec.percentile(99.0).unwrap(), Duration::from_micros(99));
        assert_eq!(rec.percentile(100.0).unwrap(), Duration::from_micros(100));
    }

    #[test]
    fn empty_recorder_yields_none() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.mean(), None);
        assert_eq!(rec.max(), None);
        assert_eq!(rec.percentile(50.0), None);
        assert_eq!(rec.summary(), None);
    }

    #[test]
    fn record_cycles_converts_via_clock() {
        let mut rec = LatencyRecorder::new();
        rec.record_cycles(300, 300.0); // 300 cycles at 300 MHz = 1 us
        assert_eq!(rec.max().unwrap(), Duration::from_micros(1));
    }

    #[test]
    fn summary_reports_all_fields() {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_millis(1));
        rec.record(Duration::from_millis(3));
        let s = rec.summary().unwrap();
        assert_eq!(s.samples, 2);
        assert_eq!(s.mean, Duration::from_millis(2));
        assert_eq!(s.max, Duration::from_millis(3));
        assert_eq!(s.p50, Duration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn out_of_range_percentile_panics() {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_millis(1));
        let _ = rec.percentile(101.0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        h.record_ns(1); // bucket 0: [1, 2)
        h.record_ns(2); // bucket 1: [2, 4)
        h.record_ns(3);
        h.record_ns(1023); // bucket 9: [512, 1024)
        h.record_ns(1024); // bucket 10
        assert_eq!(h.total(), 5);
        assert_eq!(
            h.rows(),
            vec![(1, 2, 1), (2, 4, 2), (512, 1024, 1), (1024, 2048, 1)]
        );
        assert_eq!(h.mode_bucket_ns(), Some((2, 4)));
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.mode_bucket_ns(), None);
        h.record_ns(0); // clamped into bucket 0
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn recorder_histogram_matches_samples() {
        let mut rec = LatencyRecorder::new();
        for us in [1u64, 1, 2, 100] {
            rec.record(Duration::from_micros(us));
        }
        let h = rec.histogram();
        assert_eq!(h.total(), 4);
        // 1 µs = 1000 ns -> bucket [512, 1024).
        assert_eq!(h.mode_bucket_ns(), Some((512, 1024)));
        let rendered = h.to_string();
        assert!(rendered.contains('#'));
    }
}
