//! Round-robin partition map: which worker owns which storage turn.
//!
//! The SplitJoin storage discipline is decentralized round-robin: every
//! worker sees every tuple and stores the ones whose per-stream sequence
//! number is "its turn" (`seq % num_cores == position`). [`PartitionMap`]
//! abstracts that modulo so the set of owning workers can shrink when a
//! core is lost: the coordinator retires the dead position and broadcasts
//! the updated map, and from the next message boundary on, the survivors
//! share the turns among themselves. While every position is live the map
//! is exactly the original modulo — re-partitioning support costs the
//! healthy path nothing.
//!
//! The hash-partitioned (PanJoin-style) dispatch reuses the same live
//! set through [`PartitionMap::key_owner`]: join keys map to live
//! positions by rendezvous hashing, so retiring a position re-homes only
//! the dead position's keys and the survivors' stored partitions remain
//! valid without moving a tuple.

/// Maps per-stream storage turns (sequence numbers) to live worker
/// positions, round-robin over the survivors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    /// Number of positions the join started with.
    total: usize,
    /// Live positions, ascending. Turn `seq` belongs to
    /// `live[seq % live.len()]`.
    live: Vec<usize>,
    /// Bumped every time the live set changes.
    epoch: u64,
}

impl PartitionMap {
    /// The identity map over `num_cores` live positions.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero.
    #[must_use]
    pub fn identity(num_cores: usize) -> Self {
        assert!(num_cores > 0, "need at least one partition");
        Self {
            total: num_cores,
            live: (0..num_cores).collect(),
            epoch: 0,
        }
    }

    /// Number of positions the join started with.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of live positions.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The live positions, ascending.
    #[must_use]
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// True while no position has been retired (owner == `seq % total`).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.live.len() == self.total
    }

    /// True when `position` is still live.
    #[must_use]
    pub fn is_live(&self, position: usize) -> bool {
        if self.is_full() {
            position < self.total
        } else {
            self.live.binary_search(&position).is_ok()
        }
    }

    /// Times the live set has changed.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The live position that owns storage turn `seq`.
    ///
    /// # Panics
    ///
    /// Panics if no positions are live.
    #[must_use]
    pub fn owner(&self, seq: u64) -> usize {
        if self.is_full() {
            // Fast path: the original decentralized modulo.
            (seq % self.total as u64) as usize
        } else {
            assert!(!self.live.is_empty(), "no live partitions");
            self.live[(seq % self.live.len() as u64) as usize]
        }
    }

    /// The live position that owns join key `key` under content
    /// (hash) partitioning.
    ///
    /// Ownership is decided by rendezvous (highest-random-weight)
    /// hashing over the live set: every `(key, position)` pair gets a
    /// pseudo-random weight and the live position with the highest
    /// weight wins. Unlike `key % live_count`, retiring a position only
    /// re-homes the keys that position owned — every other key keeps
    /// its owner, so the survivors' stored partitions stay valid across
    /// a re-partitioning (see `keys_are_sticky_across_retires`).
    ///
    /// # Panics
    ///
    /// Panics if no positions are live.
    #[must_use]
    pub fn key_owner(&self, key: u32) -> usize {
        assert!(!self.live.is_empty(), "no live partitions");
        // Pre-mix the key once so consecutive keys don't produce
        // correlated weight sequences.
        let mixed = (key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut best = self.live[0];
        let mut best_weight = rendezvous_weight(mixed, best);
        for &position in &self.live[1..] {
            let weight = rendezvous_weight(mixed, position);
            if weight > best_weight {
                best = position;
                best_weight = weight;
            }
        }
        best
    }

    /// Retires `position` from the live set, re-partitioning future turns
    /// over the survivors. Returns `false` if it was already retired.
    pub fn retire(&mut self, position: usize) -> bool {
        match self.live.binary_search(&position) {
            Ok(idx) => {
                self.live.remove(idx);
                self.epoch += 1;
                true
            }
            Err(_) => false,
        }
    }
}

/// The rendezvous weight of a (pre-mixed key, position) pair: a
/// splitmix64-style finalizer so every pair looks independently random.
#[inline]
fn rendezvous_weight(mixed_key: u64, position: usize) -> u64 {
    let mut x = mixed_key ^ (position as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_map_is_the_plain_modulo() {
        let map = PartitionMap::identity(4);
        assert!(map.is_full());
        for seq in 0..100u64 {
            assert_eq!(map.owner(seq), (seq % 4) as usize);
        }
    }

    #[test]
    fn retiring_redistributes_over_survivors() {
        let mut map = PartitionMap::identity(4);
        assert!(map.retire(1));
        assert!(!map.retire(1), "second retire is a no-op");
        assert_eq!(map.live(), &[0, 2, 3]);
        assert_eq!(map.epoch(), 1);
        assert!(!map.is_live(1));
        // Turns cycle over the three survivors.
        let owners: Vec<usize> = (0..6u64).map(|s| map.owner(s)).collect();
        assert_eq!(owners, vec![0, 2, 3, 0, 2, 3]);
    }

    #[test]
    fn survivor_shares_are_balanced() {
        let mut map = PartitionMap::identity(8);
        map.retire(0);
        map.retire(5);
        let mut counts = [0u32; 8];
        for seq in 0..6_000u64 {
            counts[map.owner(seq)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[5], 0);
        for w in [1, 2, 3, 4, 6, 7] {
            assert_eq!(counts[w], 1_000, "worker {w} share");
        }
    }

    #[test]
    fn key_owner_is_deterministic_and_roughly_balanced() {
        let map = PartitionMap::identity(4);
        let mut counts = [0u32; 4];
        for key in 0..8_000u32 {
            let owner = map.key_owner(key);
            assert_eq!(owner, map.key_owner(key), "same key, same owner");
            counts[owner] += 1;
        }
        // Rendezvous hashing balances uniform keys to within a few
        // percent of the fair share (2000 each here).
        for (w, &c) in counts.iter().enumerate() {
            assert!(
                (1_700..=2_300).contains(&c),
                "worker {w} owns {c} of 8000 keys"
            );
        }
    }

    #[test]
    fn keys_are_sticky_across_retires() {
        // Retiring a position must only move the keys it owned; every
        // other key keeps its owner, so survivors' partitions stay
        // valid without any data movement.
        let mut map = PartitionMap::identity(4);
        let before: Vec<usize> = (0..4_000u32).map(|k| map.key_owner(k)).collect();
        map.retire(2);
        let mut moved = 0u32;
        for (k, &owner_before) in before.iter().enumerate() {
            let owner_after = map.key_owner(k as u32);
            if owner_before == 2 {
                assert_ne!(owner_after, 2, "key {k} must leave the dead position");
                moved += 1;
            } else {
                assert_eq!(owner_after, owner_before, "key {k} must not move");
            }
        }
        assert!(moved > 0, "position 2 owned some keys");
    }

    #[test]
    #[should_panic(expected = "no live partitions")]
    fn key_owner_panics_with_no_survivors() {
        let mut map = PartitionMap::identity(1);
        map.retire(0);
        let _ = map.key_owner(7);
    }

    #[test]
    #[should_panic(expected = "no live partitions")]
    fn owner_panics_with_no_survivors() {
        let mut map = PartitionMap::identity(1);
        map.retire(0);
        let _ = map.owner(0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = PartitionMap::identity(0);
    }
}
