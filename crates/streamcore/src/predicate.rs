//! Join predicates shared by the hardware and software join realizations.

use crate::Tuple;

/// The join condition evaluated between an R tuple and an S tuple.
///
/// The paper's experiments use an equi-join "though there is no limitation
/// on the condition(s) used"; the other variants exercise that freedom.
///
/// ```
/// use streamcore::{JoinPredicate, Tuple};
///
/// let r = Tuple::new(10, 0);
/// let s = Tuple::new(12, 0);
/// assert!(!JoinPredicate::Equi.matches(r, s));
/// assert!(JoinPredicate::Band { delta: 2 }.matches(r, s));
/// assert!(JoinPredicate::LessThan.matches(r, s));
/// assert!(JoinPredicate::All.matches(r, s));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinPredicate {
    /// Keys are equal: `r.key == s.key`.
    Equi,
    /// Band join: `|r.key - s.key| <= delta`.
    Band {
        /// Half-width of the band.
        delta: u32,
    },
    /// Inequality join: `r.key < s.key`.
    LessThan,
    /// Cross product: every pair matches (useful for calibration).
    All,
}

impl JoinPredicate {
    /// Evaluates the predicate on an (R, S) tuple pair.
    pub fn matches(&self, r: Tuple, s: Tuple) -> bool {
        self.matches_keys(r.key(), s.key())
    }

    /// Evaluates the predicate on the join keys alone.
    ///
    /// Every predicate in this vocabulary depends only on the keys, which
    /// lets struct-of-arrays window scans (see
    /// [`FlatWindow`](crate::FlatWindow)) walk the contiguous key array
    /// and touch payloads only for actual matches.
    #[inline]
    pub fn matches_keys(&self, r_key: u32, s_key: u32) -> bool {
        match *self {
            JoinPredicate::Equi => r_key == s_key,
            JoinPredicate::Band { delta } => r_key.abs_diff(s_key) <= delta,
            JoinPredicate::LessThan => r_key < s_key,
            JoinPredicate::All => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_matches_only_equal_keys() {
        assert!(JoinPredicate::Equi.matches(Tuple::new(5, 0), Tuple::new(5, 9)));
        assert!(!JoinPredicate::Equi.matches(Tuple::new(5, 0), Tuple::new(6, 0)));
    }

    #[test]
    fn band_is_symmetric_and_inclusive() {
        let p = JoinPredicate::Band { delta: 3 };
        assert!(p.matches(Tuple::new(10, 0), Tuple::new(13, 0)));
        assert!(p.matches(Tuple::new(13, 0), Tuple::new(10, 0)));
        assert!(!p.matches(Tuple::new(10, 0), Tuple::new(14, 0)));
    }

    #[test]
    fn less_than_is_directional() {
        assert!(JoinPredicate::LessThan.matches(Tuple::new(1, 0), Tuple::new(2, 0)));
        assert!(!JoinPredicate::LessThan.matches(Tuple::new(2, 0), Tuple::new(2, 0)));
    }

    #[test]
    fn all_matches_everything() {
        assert!(JoinPredicate::All.matches(Tuple::new(0, 0), Tuple::new(u32::MAX, 0)));
    }
}
