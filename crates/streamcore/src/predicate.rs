//! Join predicates shared by the hardware and software join realizations.

use crate::Tuple;

/// The join condition evaluated between an R tuple and an S tuple.
///
/// The paper's experiments use an equi-join "though there is no limitation
/// on the condition(s) used"; the other variants exercise that freedom.
///
/// ```
/// use streamcore::{JoinPredicate, Tuple};
///
/// let r = Tuple::new(10, 0);
/// let s = Tuple::new(12, 0);
/// assert!(!JoinPredicate::Equi.matches(r, s));
/// assert!(JoinPredicate::Band { delta: 2 }.matches(r, s));
/// assert!(JoinPredicate::LessThan.matches(r, s));
/// assert!(JoinPredicate::All.matches(r, s));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinPredicate {
    /// Keys are equal: `r.key == s.key`.
    Equi,
    /// Band join: `|r.key - s.key| <= delta`.
    Band {
        /// Half-width of the band.
        delta: u32,
    },
    /// Inequality join: `r.key < s.key`.
    LessThan,
    /// Cross product: every pair matches (useful for calibration).
    All,
}

impl JoinPredicate {
    /// Evaluates the predicate on an (R, S) tuple pair.
    pub fn matches(&self, r: Tuple, s: Tuple) -> bool {
        self.matches_keys(r.key(), s.key())
    }

    /// Evaluates the predicate on the join keys alone.
    ///
    /// Every predicate in this vocabulary depends only on the keys, which
    /// lets struct-of-arrays window scans (see
    /// [`FlatWindow`](crate::FlatWindow)) walk the contiguous key array
    /// and touch payloads only for actual matches.
    #[inline]
    pub fn matches_keys(&self, r_key: u32, s_key: u32) -> bool {
        match *self {
            JoinPredicate::Equi => r_key == s_key,
            JoinPredicate::Band { delta } => r_key.abs_diff(s_key) <= delta,
            JoinPredicate::LessThan => r_key < s_key,
            JoinPredicate::All => true,
        }
    }

    /// Evaluates the predicate with an explicit probe orientation: the
    /// probe key sits on the R side of the pair when `probe_is_r`, on
    /// the S side otherwise. This is the per-pair form of the
    /// orientation handling in [`JoinPredicate::count_matches`] and the
    /// blocked kernels ([`kernel`](crate::kernel)).
    #[inline]
    pub fn matches_oriented(&self, probe_key: u32, probe_is_r: bool, stored_key: u32) -> bool {
        if probe_is_r {
            self.matches_keys(probe_key, stored_key)
        } else {
            self.matches_keys(stored_key, probe_key)
        }
    }

    /// Counts the stored keys matching a probe key in one sweep —
    /// semantically `keys.filter(|k| matches_keys(..)).count()` with the
    /// predicate dispatch hoisted out of the loop, so each arm is a
    /// branch-light scan the compiler can vectorize. `probe_is_r` gives
    /// the probe's stream side ([`JoinPredicate::LessThan`] is the only
    /// asymmetric predicate). This is the counting-only fast path of
    /// window scans: no per-match work, just the tally.
    #[inline]
    pub fn count_matches(&self, probe_key: u32, probe_is_r: bool, keys: &[u32]) -> usize {
        match *self {
            JoinPredicate::Equi => keys.iter().filter(|&&k| k == probe_key).count(),
            JoinPredicate::Band { delta } => {
                keys.iter().filter(|&&k| k.abs_diff(probe_key) <= delta).count()
            }
            JoinPredicate::LessThan => {
                if probe_is_r {
                    keys.iter().filter(|&&k| probe_key < k).count()
                } else {
                    keys.iter().filter(|&&k| k < probe_key).count()
                }
            }
            JoinPredicate::All => keys.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_matches_only_equal_keys() {
        assert!(JoinPredicate::Equi.matches(Tuple::new(5, 0), Tuple::new(5, 9)));
        assert!(!JoinPredicate::Equi.matches(Tuple::new(5, 0), Tuple::new(6, 0)));
    }

    #[test]
    fn band_is_symmetric_and_inclusive() {
        let p = JoinPredicate::Band { delta: 3 };
        assert!(p.matches(Tuple::new(10, 0), Tuple::new(13, 0)));
        assert!(p.matches(Tuple::new(13, 0), Tuple::new(10, 0)));
        assert!(!p.matches(Tuple::new(10, 0), Tuple::new(14, 0)));
    }

    #[test]
    fn less_than_is_directional() {
        assert!(JoinPredicate::LessThan.matches(Tuple::new(1, 0), Tuple::new(2, 0)));
        assert!(!JoinPredicate::LessThan.matches(Tuple::new(2, 0), Tuple::new(2, 0)));
    }

    #[test]
    fn all_matches_everything() {
        assert!(JoinPredicate::All.matches(Tuple::new(0, 0), Tuple::new(u32::MAX, 0)));
    }

    #[test]
    fn count_matches_agrees_with_per_key_evaluation() {
        // Pseudo-random keys around the probe so every predicate arm has
        // hits and misses on both orientations.
        let keys: Vec<u32> = (0u32..257)
            .map(|i| i.wrapping_mul(2_654_435_761) % 64)
            .collect();
        let probe = 31u32;
        for p in [
            JoinPredicate::Equi,
            JoinPredicate::Band { delta: 0 },
            JoinPredicate::Band { delta: 7 },
            JoinPredicate::LessThan,
            JoinPredicate::All,
        ] {
            for probe_is_r in [true, false] {
                let slow = keys
                    .iter()
                    .filter(|&&k| {
                        if probe_is_r {
                            p.matches_keys(probe, k)
                        } else {
                            p.matches_keys(k, probe)
                        }
                    })
                    .count();
                assert_eq!(
                    p.count_matches(probe, probe_is_r, &keys),
                    slow,
                    "{p:?} probe_is_r={probe_is_r}"
                );
            }
        }
    }
}
