//! Schema-described records for the Flexible Query Processor.
//!
//! While the flow-based join case study uses fixed 64-bit [`crate::Tuple`]s,
//! FQP queries operate over richer events (e.g. the paper's customer /
//! product streams with `Age`, `Gender`, and `ProductID` attributes). A
//! [`Schema`] names the fields and their bit widths; a [`Record`] carries
//! the values.
//!
//! Schemas also support *vertical partitioning* into fixed-width segments —
//! the paper's "parametrized data segments", which let a hardware fabric
//! with a fixed wiring budget carry tuples of varying schema sizes.

use std::error::Error;
use std::fmt;
use std::ops::Range;

/// A named field with a width in bits (1–64).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    name: String,
    width_bits: u8,
}

impl Field {
    /// Creates a field.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::InvalidWidth`] unless `1 <= width_bits <= 64`.
    pub fn new(name: impl Into<String>, width_bits: u8) -> Result<Self, SchemaError> {
        if width_bits == 0 || width_bits > 64 {
            return Err(SchemaError::InvalidWidth { width_bits });
        }
        Ok(Self {
            name: name.into(),
            width_bits,
        })
    }

    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field width in bits.
    pub fn width_bits(&self) -> u8 {
        self.width_bits
    }
}

/// An ordered collection of uniquely named [`Field`]s.
///
/// # Example
///
/// ```
/// use streamcore::{Field, Schema};
///
/// let schema = Schema::new(vec![
///     Field::new("product_id", 32)?,
///     Field::new("age", 8)?,
///     Field::new("gender", 1)?,
/// ])?;
/// assert_eq!(schema.width_bits(), 41);
/// assert_eq!(schema.index_of("age"), Some(1));
/// # Ok::<(), streamcore::SchemaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from `fields`.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::DuplicateField`] if two fields share a name,
    /// or [`SchemaError::Empty`] for an empty field list.
    pub fn new(fields: Vec<Field>) -> Result<Self, SchemaError> {
        if fields.is_empty() {
            return Err(SchemaError::Empty);
        }
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(SchemaError::DuplicateField {
                    name: f.name.clone(),
                });
            }
        }
        Ok(Self { fields })
    }

    /// The fields, in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Total width of one record in bits.
    pub fn width_bits(&self) -> u32 {
        self.fields.iter().map(|f| f.width_bits as u32).sum()
    }

    /// The position of the field called `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Vertically partitions the fields into segments whose total width
    /// does not exceed `segment_bits` — the paper's parametrized data
    /// segments. Each returned range indexes into [`Schema::fields`].
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::SegmentTooNarrow`] if any single field is
    /// wider than `segment_bits`.
    pub fn segments(&self, segment_bits: u32) -> Result<Vec<Range<usize>>, SchemaError> {
        let mut out = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u32;
        for (i, f) in self.fields.iter().enumerate() {
            let w = f.width_bits as u32;
            if w > segment_bits {
                return Err(SchemaError::SegmentTooNarrow {
                    field: f.name.clone(),
                    width_bits: f.width_bits,
                    segment_bits,
                });
            }
            if acc + w > segment_bits {
                out.push(start..i);
                start = i;
                acc = 0;
            }
            acc += w;
        }
        out.push(start..self.fields.len());
        Ok(out)
    }

    /// Validates that `record` matches this schema (arity and per-field
    /// range).
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::ArityMismatch`] or
    /// [`SchemaError::ValueOutOfRange`].
    pub fn check(&self, record: &Record) -> Result<(), SchemaError> {
        if record.values().len() != self.fields.len() {
            return Err(SchemaError::ArityMismatch {
                expected: self.fields.len(),
                actual: record.values().len(),
            });
        }
        for (f, &v) in self.fields.iter().zip(record.values()) {
            if f.width_bits < 64 {
                let max = (1u64 << f.width_bits) - 1;
                if v > max {
                    return Err(SchemaError::ValueOutOfRange {
                        field: f.name.clone(),
                        value: v,
                        max,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A record: one unsigned value per schema field.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Record {
    values: Vec<u64>,
}

impl Record {
    /// Creates a record from field values in schema order.
    pub fn new(values: Vec<u64>) -> Self {
        Self { values }
    }

    /// The field values in schema order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The value at field position `index`, if in range.
    pub fn get(&self, index: usize) -> Option<u64> {
        self.values.get(index).copied()
    }
}

impl From<Vec<u64>> for Record {
    fn from(values: Vec<u64>) -> Self {
        Record::new(values)
    }
}

impl FromIterator<u64> for Record {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Record::new(iter.into_iter().collect())
    }
}

/// Errors arising from schema construction or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A schema must contain at least one field.
    Empty,
    /// Field width outside 1–64 bits.
    InvalidWidth {
        /// The offending width.
        width_bits: u8,
    },
    /// Two fields share a name.
    DuplicateField {
        /// The duplicated name.
        name: String,
    },
    /// A field is wider than the requested data segment.
    SegmentTooNarrow {
        /// The field that does not fit.
        field: String,
        /// Its width.
        width_bits: u8,
        /// The segment budget.
        segment_bits: u32,
    },
    /// Record arity differs from the schema's.
    ArityMismatch {
        /// Fields in the schema.
        expected: usize,
        /// Values in the record.
        actual: usize,
    },
    /// A value does not fit its field width.
    ValueOutOfRange {
        /// The field name.
        field: String,
        /// The offending value.
        value: u64,
        /// Largest representable value.
        max: u64,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::Empty => write!(f, "schema has no fields"),
            SchemaError::InvalidWidth { width_bits } => {
                write!(f, "field width {width_bits} outside 1..=64 bits")
            }
            SchemaError::DuplicateField { name } => {
                write!(f, "duplicate field name {name:?}")
            }
            SchemaError::SegmentTooNarrow {
                field,
                width_bits,
                segment_bits,
            } => write!(
                f,
                "field {field:?} ({width_bits} bits) exceeds segment budget of {segment_bits} bits"
            ),
            SchemaError::ArityMismatch { expected, actual } => {
                write!(f, "record has {actual} values but schema has {expected} fields")
            }
            SchemaError::ValueOutOfRange { field, value, max } => {
                write!(f, "value {value} exceeds maximum {max} of field {field:?}")
            }
        }
    }
}

impl Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn customer_schema() -> Schema {
        Schema::new(vec![
            Field::new("product_id", 32).unwrap(),
            Field::new("age", 8).unwrap(),
            Field::new("gender", 1).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn width_and_lookup() {
        let s = customer_schema();
        assert_eq!(s.width_bits(), 41);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("gender"), Some(2));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn rejects_empty_and_duplicates_and_bad_widths() {
        assert_eq!(Schema::new(vec![]).unwrap_err(), SchemaError::Empty);
        let dup = Schema::new(vec![
            Field::new("a", 8).unwrap(),
            Field::new("a", 8).unwrap(),
        ]);
        assert!(matches!(dup, Err(SchemaError::DuplicateField { .. })));
        assert!(matches!(
            Field::new("x", 0),
            Err(SchemaError::InvalidWidth { .. })
        ));
        assert!(matches!(
            Field::new("x", 65),
            Err(SchemaError::InvalidWidth { .. })
        ));
        assert!(Field::new("x", 64).is_ok());
    }

    #[test]
    fn segments_respect_budget() {
        let s = customer_schema();
        // 32 | 8+1 with a 32-bit budget.
        let segs = s.segments(32).unwrap();
        assert_eq!(segs, vec![0..1, 1..3]);
        // Everything fits in one 64-bit segment.
        assert_eq!(s.segments(64).unwrap(), vec![0..3]);
    }

    #[test]
    fn segments_reject_oversized_field() {
        let s = customer_schema();
        let err = s.segments(16).unwrap_err();
        assert!(matches!(err, SchemaError::SegmentTooNarrow { .. }));
    }

    #[test]
    fn check_validates_arity_and_ranges() {
        let s = customer_schema();
        assert!(s.check(&Record::new(vec![1, 30, 1])).is_ok());
        assert!(matches!(
            s.check(&Record::new(vec![1, 30])),
            Err(SchemaError::ArityMismatch { expected: 3, actual: 2 })
        ));
        assert!(matches!(
            s.check(&Record::new(vec![1, 300, 1])),
            Err(SchemaError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn record_accessors() {
        let r: Record = vec![5u64, 6, 7].into();
        assert_eq!(r.get(1), Some(6));
        assert_eq!(r.get(9), None);
        let collected: Record = (0..3u64).collect();
        assert_eq!(collected.values(), &[0, 1, 2]);
    }

    #[test]
    fn full_width_field_accepts_any_value() {
        let s = Schema::new(vec![Field::new("wide", 64).unwrap()]).unwrap();
        assert!(s.check(&Record::new(vec![u64::MAX])).is_ok());
    }
}
