//! Lock-free single-producer/single-consumer rings and the shared batch
//! arena behind the SplitJoin `ring` transport.
//!
//! The paper attributes the software join's ceiling to inter-core
//! communication: every tuple crosses from the distribution thread to
//! every join core and every match crosses back. The channel transport
//! pays a mutex + condvar handoff per message; this module replaces it
//! with the software analogue of the hardware design's dedicated
//! point-to-point links — one bounded SPSC ring per direction per
//! worker, plus a shared **batch arena** so a broadcast ships one
//! sequence number per worker instead of `N` reference-count bumps on an
//! `Arc`-boxed copy of the batch.
//!
//! # The head/tail protocol
//!
//! A ring is a power-free (any capacity ≥ 1) Lamport queue over
//! monotonically increasing `u64` positions:
//!
//! * the **producer** owns `tail`: it loads `head` with `Acquire` to
//!   check for space (`tail - head < capacity`), writes the slot
//!   `tail % capacity`, then stores `tail + 1` with `Release`;
//! * the **consumer** owns `head`: it loads `tail` with `Acquire` to
//!   check for data (`head < tail`), reads the slot `head % capacity`,
//!   then stores `head + 1` with `Release`.
//!
//! The `Release` store on `tail` publishes the slot write; the matching
//! `Acquire` load on the consumer side makes it visible before the slot
//! read (and symmetrically for `head`, which licenses the producer to
//! overwrite the slot). Each side caches the other's index locally and
//! refreshes only on apparent-full/apparent-empty, so the steady-state
//! cost of a transfer is one atomic store per side. Head and tail live
//! on separate [`CachePadded`] cache lines to keep the two sides from
//! false-sharing.
//!
//! Disconnect semantics mirror a channel: dropping the [`RingProducer`]
//! closes the ring (the consumer drains what is queued, then sees
//! [`PopError::Disconnected`]); dropping the [`RingConsumer`] makes
//! further pushes fail with [`PushError::Disconnected`]. Whatever is
//! still queued when both ends are gone is dropped with the ring.
//!
//! # The batch arena
//!
//! [`batch_arena`] carves `slots` reusable buffers shared by one writer
//! and `readers` readers. The writer publishes batch `seq` into slot
//! `seq % slots`; each reader maps the sequence number it received (over
//! its ring) back to the slice, probes it **in place**, and releases the
//! sequence. Slot reuse waits until every *active* reader's released
//! watermark has passed the slot's previous occupant, so the writer
//! never overwrites a batch a reader may still be probing; a reader that
//! died is deactivated (see [`ArenaWriter::deactivate`]) and drops out
//! of the watermark minimum. The ring's `Release`/`Acquire` pair carries
//! the happens-before edge from the slot write to the slot read, and the
//! per-slot published sequence number turns any protocol violation into
//! a panic instead of a data race.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Pads and aligns a value to (at least) one cache line, so two hot
/// atomics owned by different threads never share a line. 128 bytes
/// covers the spatial-prefetcher pair on x86 and the line size on
/// every target this crate builds for.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T>(
    /// The padded value.
    pub T,
);

/// Why a push could not complete.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the value is handed back for a retry.
    Full(T),
    /// The consumer is gone; the value is handed back.
    Disconnected(T),
}

/// Why a pop could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// Nothing queued right now, but the producer is still alive.
    Empty,
    /// Nothing queued and the producer is gone: the ring is finished.
    Disconnected,
}

struct RingShared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer position: the next slot to read. Only the consumer
    /// stores it (Release); the producer loads it (Acquire) to bound
    /// the slots it may overwrite.
    head: CachePadded<AtomicU64>,
    /// Producer position: one past the last published slot. Only the
    /// producer stores it (Release); the consumer loads it (Acquire)
    /// to bound the slots it may read.
    tail: CachePadded<AtomicU64>,
    /// Producer dropped or closed; queued items stay readable.
    closed: AtomicBool,
    /// Consumer dropped; further pushes are pointless.
    receiver_gone: AtomicBool,
}

// SAFETY: the one-producer/one-consumer discipline (enforced by the
// !Clone handle types) means a slot is written by exactly one thread
// and read by exactly one thread, with the head/tail Release/Acquire
// pairs ordering every write before the read that consumes it. T only
// needs to be Send, as values merely move across threads.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for RingShared<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for RingShared<T> {}

impl<T> Drop for RingShared<T> {
    fn drop(&mut self) {
        // Sole owner at this point: both handles are gone, so the
        // plain loads are the final published values.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let cap = self.buf.len() as u64;
        for pos in head..tail {
            let slot = self.buf[(pos % cap) as usize].get();
            // SAFETY: slots in [head, tail) hold initialized values
            // that neither handle will touch again.
            #[allow(unsafe_code)]
            unsafe {
                (*slot).assume_init_drop();
            }
        }
    }
}

/// The sending half of a bounded SPSC ring (see the
/// [module docs](self) for the protocol). Not cloneable — exactly one
/// producer exists per ring.
pub struct RingProducer<T> {
    shared: Arc<RingShared<T>>,
    /// Local copy of our own tail (we are its only writer).
    tail: u64,
    /// Last observed consumer head; refreshed only on apparent-full.
    cached_head: u64,
}

/// The receiving half of a bounded SPSC ring. Not cloneable — exactly
/// one consumer exists per ring.
pub struct RingConsumer<T> {
    shared: Arc<RingShared<T>>,
    /// Local copy of our own head (we are its only writer).
    head: u64,
    /// Last observed producer tail; refreshed only on apparent-empty.
    cached_tail: u64,
}

impl<T> fmt::Debug for RingProducer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingProducer")
            .field("capacity", &self.capacity())
            .field("tail", &self.tail)
            .finish()
    }
}

impl<T> fmt::Debug for RingConsumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingConsumer")
            .field("capacity", &self.shared.buf.len())
            .field("head", &self.head)
            .finish()
    }
}

/// Creates a bounded SPSC ring of `capacity` slots (≥ 1).
///
/// # Panics
///
/// Panics if `capacity` is zero — a zero-slot ring could never transfer
/// anything.
pub fn spsc<T: Send>(capacity: usize) -> (RingProducer<T>, RingConsumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..capacity).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let shared = Arc::new(RingShared {
        buf,
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        closed: AtomicBool::new(false),
        receiver_gone: AtomicBool::new(false),
    });
    (
        RingProducer { shared: Arc::clone(&shared), tail: 0, cached_head: 0 },
        RingConsumer { shared, head: 0, cached_tail: 0 },
    )
}

/// Splits `len` logical slots starting at absolute position `pos` into
/// the at-most-two contiguous index ranges they occupy in a `cap`-slot
/// buffer: `[(start, len); 2]`, second range possibly empty. This is
/// the index arithmetic behind every batch claim/publish; the property
/// tests in the ring battery pin its invariants.
pub fn wrap_ranges(pos: u64, len: usize, cap: usize) -> [(usize, usize); 2] {
    debug_assert!(cap > 0 && len <= cap);
    let start = (pos % cap as u64) as usize;
    let first = len.min(cap - start);
    [(start, first), (0, len - first)]
}

impl<T> RingProducer<T> {
    /// Total slots in the ring.
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Queued items from the producer's point of view (exact for our
    /// own pushes, conservative for concurrent pops).
    pub fn len(&self) -> usize {
        (self.tail - self.shared.head.0.load(Ordering::Relaxed)) as usize
    }

    /// `true` when nothing is queued (producer's view).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once the consumer has been dropped.
    pub fn is_disconnected(&self) -> bool {
        self.shared.receiver_gone.load(Ordering::Acquire)
    }

    /// Free slots, refreshing the cached consumer position.
    fn free_slots(&mut self) -> usize {
        let cap = self.capacity() as u64;
        if self.tail - self.cached_head == cap {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
        }
        (cap - (self.tail - self.cached_head)) as usize
    }

    /// Pushes one value without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when no slot is free, [`PushError::Disconnected`]
    /// when the consumer is gone; both return the value.
    pub fn try_push(&mut self, value: T) -> Result<(), PushError<T>> {
        if self.is_disconnected() {
            return Err(PushError::Disconnected(value));
        }
        if self.free_slots() == 0 {
            return Err(PushError::Full(value));
        }
        let slot = (self.tail % self.capacity() as u64) as usize;
        // SAFETY: `free_slots() > 0` means the consumer has released
        // this slot (its head, read with Acquire, is past the slot's
        // previous occupant), and only this producer writes slots.
        #[allow(unsafe_code)]
        unsafe {
            (*self.shared.buf[slot].get()).write(value);
        }
        self.tail += 1;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Copies as many leading `items` as fit into the ring in one
    /// claim/publish cycle (one `head` load, one `tail` store), and
    /// returns how many were accepted — `0` when the ring is full.
    ///
    /// # Errors
    ///
    /// [`PushError::Disconnected`] (carrying `()`) when the consumer is
    /// gone.
    pub fn push_batch(&mut self, items: &[T]) -> Result<usize, PushError<()>>
    where
        T: Copy,
    {
        if self.is_disconnected() {
            return Err(PushError::Disconnected(()));
        }
        let n = self.free_slots().min(items.len());
        if n == 0 {
            return Ok(0);
        }
        let cap = self.capacity();
        let mut taken = 0usize;
        for (start, len) in wrap_ranges(self.tail, n, cap) {
            for i in 0..len {
                // SAFETY: the n claimed slots are released by the
                // consumer (see `try_push`); wrap_ranges covers
                // exactly positions tail..tail+n.
                #[allow(unsafe_code)]
                unsafe {
                    (*self.shared.buf[start + i].get()).write(items[taken]);
                }
                taken += 1;
            }
        }
        self.tail += n as u64;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(n)
    }
}

impl<T> Drop for RingProducer<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
    }
}

impl<T> RingConsumer<T> {
    /// Total slots in the ring.
    pub fn capacity(&self) -> usize {
        self.shared.buf.len()
    }

    /// Queued items from the consumer's point of view.
    pub fn len(&self) -> usize {
        (self.shared.tail.0.load(Ordering::Relaxed) - self.head) as usize
    }

    /// `true` when nothing is queued (consumer's view).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued items, refreshing the cached producer position.
    fn available(&mut self) -> usize {
        if self.head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
        }
        (self.cached_tail - self.head) as usize
    }

    /// `true` when the ring is finished: producer gone and nothing
    /// left to drain.
    fn finished(&mut self) -> bool {
        if !self.shared.closed.load(Ordering::Acquire) {
            return false;
        }
        // The close flag is stored after the final tail publish; one
        // more refresh observes anything pushed right before the drop.
        self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
        self.head == self.cached_tail
    }

    /// Pops one value without blocking.
    ///
    /// # Errors
    ///
    /// [`PopError::Empty`] when nothing is queued yet,
    /// [`PopError::Disconnected`] when the producer is gone and the ring
    /// is drained.
    pub fn try_pop(&mut self) -> Result<T, PopError> {
        if self.available() == 0 {
            return Err(if self.finished() { PopError::Disconnected } else { PopError::Empty });
        }
        let slot = (self.head % self.capacity() as u64) as usize;
        // SAFETY: `available() > 0` means the producer published this
        // slot (its tail, read with Acquire, is past it), and only
        // this consumer reads slots.
        #[allow(unsafe_code)]
        let value = unsafe { (*self.shared.buf[slot].get()).assume_init_read() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Ok(value)
    }

    /// Drains up to `max` queued values into `out` in one claim/release
    /// cycle (one `tail` load, one `head` store). Returns how many were
    /// drained — `Ok(0)` means empty-but-open.
    ///
    /// # Errors
    ///
    /// [`PopError::Disconnected`] when the producer is gone and the
    /// ring is drained.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> Result<usize, PopError> {
        let n = self.available().min(max);
        if n == 0 {
            return if self.finished() { Err(PopError::Disconnected) } else { Ok(0) };
        }
        let cap = self.capacity();
        out.reserve(n);
        for (start, len) in wrap_ranges(self.head, n, cap) {
            for i in 0..len {
                // SAFETY: the n claimed slots are published by the
                // producer (see `try_pop`).
                #[allow(unsafe_code)]
                let value = unsafe { (*self.shared.buf[start + i].get()).assume_init_read() };
                out.push(value);
            }
        }
        self.head += n as u64;
        self.shared.head.0.store(self.head, Ordering::Release);
        Ok(n)
    }
}

impl<T> Drop for RingConsumer<T> {
    fn drop(&mut self) {
        self.shared.receiver_gone.store(true, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Batch arena
// ---------------------------------------------------------------------------

/// The writer's claim failed because a slot it must reuse is still held
/// by an active reader that has not yet released the slot's previous
/// occupant. Retry after the laggard makes progress (or is deactivated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaFull;

struct ArenaSlot<T> {
    data: UnsafeCell<Vec<T>>,
    /// Sequence number currently resident in this slot (0 = never
    /// written). Stored with Release after the data write; readers
    /// check it with Acquire before touching the data, so a stale or
    /// wild sequence number panics instead of racing.
    published: AtomicU64,
}

struct ArenaShared<T> {
    slots: Box<[ArenaSlot<T>]>,
    /// Per-reader released watermark: the highest sequence number the
    /// reader has finished with. Padded — each is written by a
    /// different worker thread on every batch.
    released: Box<[CachePadded<AtomicU64>]>,
}

// SAFETY: the watermark protocol (writer waits for every active
// reader's released watermark before reusing a slot; readers check the
// published sequence before reading and cannot release a sequence while
// still borrowing its slice — `release` takes &mut self) gives each
// slot alternating exclusive-write / shared-read phases, ordered by the
// Release/Acquire pairs on `published` and `released`.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for ArenaShared<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send + Sync> Sync for ArenaShared<T> {}

/// The writing half of a batch arena: publishes batches, tracks which
/// readers still participate in the reuse watermark.
pub struct ArenaWriter<T> {
    shared: Arc<ArenaShared<T>>,
    /// Highest sequence number published (0 = none yet).
    seq: u64,
    /// Readers still counted in the reuse minimum. Deactivated readers
    /// (dead workers) no longer hold slots back.
    active: Box<[bool]>,
}

/// One reader's handle: maps received sequence numbers back to slices
/// and releases them once probed.
pub struct ArenaReader<T> {
    shared: Arc<ArenaShared<T>>,
    index: usize,
    /// Local copy of our own released watermark.
    released: u64,
}

impl<T> fmt::Debug for ArenaWriter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaWriter")
            .field("slots", &self.shared.slots.len())
            .field("seq", &self.seq)
            .finish()
    }
}

impl<T> fmt::Debug for ArenaReader<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArenaReader")
            .field("index", &self.index)
            .field("released", &self.released)
            .finish()
    }
}

/// Creates a batch arena of `slots` reusable buffers shared by one
/// writer and `readers` readers (returned in reader-index order).
///
/// # Panics
///
/// Panics if `slots` or `readers` is zero.
pub fn batch_arena<T: Send + Sync>(
    slots: usize,
    readers: usize,
) -> (ArenaWriter<T>, Vec<ArenaReader<T>>) {
    assert!(slots > 0, "arena needs at least one slot");
    assert!(readers > 0, "arena needs at least one reader");
    let shared = Arc::new(ArenaShared {
        slots: (0..slots)
            .map(|_| ArenaSlot {
                data: UnsafeCell::new(Vec::new()),
                published: AtomicU64::new(0),
            })
            .collect(),
        released: (0..readers).map(|_| CachePadded(AtomicU64::new(0))).collect(),
    });
    let handles = (0..readers)
        .map(|index| ArenaReader { shared: Arc::clone(&shared), index, released: 0 })
        .collect();
    (
        ArenaWriter { shared, seq: 0, active: vec![true; readers].into_boxed_slice() },
        handles,
    )
}

impl<T> ArenaWriter<T> {
    /// Slot count (the bound on batches in flight).
    pub fn slots(&self) -> usize {
        self.shared.slots.len()
    }

    /// Highest sequence number published so far (0 = none).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The lowest released watermark over the active readers, or
    /// `u64::MAX` when none remain active.
    pub fn min_released(&self) -> u64 {
        self.active
            .iter()
            .zip(self.shared.released.iter())
            .filter(|(active, _)| **active)
            .map(|(_, cell)| cell.0.load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// The active reader holding the reuse watermark back (lowest
    /// released), if any reader is still active — who a supervisor
    /// should health-check when a claim keeps failing.
    pub fn laggard(&self) -> Option<usize> {
        self.active
            .iter()
            .enumerate()
            .zip(self.shared.released.iter())
            .filter(|((_, active), _)| **active)
            .min_by_key(|(_, cell)| cell.0.load(Ordering::Acquire))
            .map(|((index, _), _)| index)
    }

    /// Removes a reader from the reuse watermark. Call only for a
    /// reader that will never read again (its worker thread has exited)
    /// — the writer may immediately overwrite anything it had not
    /// released.
    pub fn deactivate(&mut self, reader: usize) {
        self.active[reader] = false;
    }

    /// `true` while `reader` still participates in the reuse watermark.
    pub fn is_active(&self, reader: usize) -> bool {
        self.active[reader]
    }

    /// Publishes `items` as the next batch and returns its sequence
    /// number. The batch is copied into the slot's reused buffer — no
    /// allocation once every slot has grown to the steady-state batch
    /// size.
    ///
    /// # Errors
    ///
    /// [`ArenaFull`] when the slot's previous occupant is still held by
    /// an active reader; nothing is written and the claim can be
    /// retried.
    pub fn try_publish(&mut self, items: &[T]) -> Result<u64, ArenaFull>
    where
        T: Copy,
    {
        let seq = self.seq + 1;
        let slots = self.slots() as u64;
        if seq > slots && self.min_released() < seq - slots {
            return Err(ArenaFull);
        }
        let slot = &self.shared.slots[(seq % slots) as usize];
        // SAFETY: the slot's previous occupant is `seq - slots`, and
        // every active reader has released it (checked above with
        // Acquire loads that pair with the readers' Release stores, so
        // their in-place reads happen-before this overwrite). Inactive
        // readers never read again by the `deactivate` contract. No
        // reader reads *this* sequence until it observes the
        // `published` store below via its ring message.
        #[allow(unsafe_code)]
        unsafe {
            let buf = &mut *slot.data.get();
            buf.clear();
            buf.extend_from_slice(items);
        }
        slot.published.store(seq, Ordering::Release);
        self.seq = seq;
        Ok(seq)
    }
}

impl<T> ArenaReader<T> {
    /// This reader's index (its position in the `released` watermark
    /// array).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The slice published as batch `seq`, read in place. The borrow
    /// keeps `self` shared, so the sequence cannot be released (and
    /// hence the slot cannot be reused) while the slice is alive.
    ///
    /// # Panics
    ///
    /// Panics if `seq` was already released by this reader or is not
    /// the sequence currently resident in its slot — both protocol
    /// violations that would otherwise be data races.
    pub fn read(&self, seq: u64) -> &[T] {
        assert!(seq > self.released, "arena read of a released batch {seq}");
        let slots = self.shared.slots.len() as u64;
        let slot = &self.shared.slots[(seq % slots) as usize];
        let resident = slot.published.load(Ordering::Acquire);
        assert_eq!(resident, seq, "arena slot holds batch {resident}, not {seq}");
        // SAFETY: `published == seq` (Acquire, pairing with the
        // writer's Release) proves the writer's data write
        // happens-before this read, and the writer will not overwrite
        // the slot until this reader releases `seq` (watermark check),
        // which the borrow rules forbid while the slice is alive.
        #[allow(unsafe_code)]
        unsafe {
            (*slot.data.get()).as_slice()
        }
    }

    /// `true` once batch `seq` is resident in its slot — a non-blocking
    /// publish poll (Acquire, pairing with the writer's Release store)
    /// for callers sequencing reads without a message channel alongside
    /// the arena.
    pub fn peek_published(&self, seq: u64) -> bool {
        let slots = self.shared.slots.len() as u64;
        self.shared.slots[(seq % slots) as usize]
            .published
            .load(Ordering::Acquire)
            == seq
    }

    /// Marks every sequence up to and including `seq` as finished,
    /// allowing the writer to reuse their slots. Watermarks only move
    /// forward; releasing an older sequence is a no-op.
    pub fn release(&mut self, seq: u64) {
        if seq <= self.released {
            return;
        }
        self.released = seq;
        self.shared.released[self.index].0.store(seq, Ordering::Release);
    }

    /// The highest sequence this reader has released.
    pub fn released(&self) -> u64 {
        self.released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity_then_rejects() {
        let (mut tx, mut rx) = spsc::<u32>(3);
        for i in 0..3 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(9), Err(PushError::Full(9)));
        assert_eq!(tx.len(), 3);
        assert_eq!(rx.try_pop(), Ok(0));
        tx.try_push(9).unwrap();
        assert_eq!(rx.try_pop(), Ok(1));
        assert_eq!(rx.try_pop(), Ok(2));
        assert_eq!(rx.try_pop(), Ok(9));
        assert_eq!(rx.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn capacity_one_alternates() {
        let (mut tx, mut rx) = spsc::<u64>(1);
        for i in 0..100u64 {
            tx.try_push(i).unwrap();
            assert_eq!(tx.try_push(i), Err(PushError::Full(i)));
            assert_eq!(rx.try_pop(), Ok(i));
            assert_eq!(rx.try_pop(), Err(PopError::Empty));
        }
    }

    #[test]
    fn producer_drop_lets_consumer_drain_then_disconnect() {
        let (mut tx, mut rx) = spsc::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        drop(tx);
        assert_eq!(rx.try_pop(), Ok(1));
        assert_eq!(rx.try_pop(), Ok(2));
        assert_eq!(rx.try_pop(), Err(PopError::Disconnected));
    }

    #[test]
    fn consumer_drop_fails_pushes() {
        let (mut tx, rx) = spsc::<u32>(4);
        tx.try_push(1).unwrap();
        drop(rx);
        assert_eq!(tx.try_push(2), Err(PushError::Disconnected(2)));
        assert!(tx.is_disconnected());
    }

    #[test]
    fn queued_items_are_dropped_with_the_ring() {
        let marker = Arc::new(());
        let (mut tx, rx) = spsc::<Arc<()>>(4);
        for _ in 0..3 {
            tx.try_push(Arc::clone(&marker)).unwrap();
        }
        assert_eq!(Arc::strong_count(&marker), 4);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&marker), 1, "ring drop must free queued items");
    }

    #[test]
    fn batch_push_and_pop_straddle_the_wrap() {
        let (mut tx, mut rx) = spsc::<u32>(5);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        let mut out = Vec::new();
        // Offset the positions so batches repeatedly cross the wrap.
        for round in 0..50 {
            let want = 1 + (round % 5);
            let items: Vec<u32> = (next_in..next_in + want as u32).collect();
            let pushed = tx.push_batch(&items).unwrap();
            next_in += pushed as u32;
            out.clear();
            let popped = rx.pop_batch(&mut out, usize::MAX).unwrap();
            assert_eq!(popped, out.len());
            for &v in &out {
                assert_eq!(v, next_out, "reordered or lost at {next_out}");
                next_out += 1;
            }
        }
        assert_eq!(next_in, next_out);
    }

    #[test]
    fn wrap_ranges_cover_exactly_the_claim() {
        // 5-slot ring, position 3, length 4: indices 3,4 then 0,1.
        assert_eq!(wrap_ranges(3, 4, 5), [(3, 2), (0, 2)]);
        assert_eq!(wrap_ranges(8, 4, 5), [(3, 2), (0, 2)]);
        assert_eq!(wrap_ranges(0, 5, 5), [(0, 5), (0, 0)]);
        assert_eq!(wrap_ranges(7, 0, 5), [(2, 0), (0, 0)]);
    }

    #[test]
    fn arena_publishes_and_reuses_slots() {
        let (mut w, mut readers) = batch_arena::<u64>(2, 2);
        let s1 = w.try_publish(&[1, 2, 3]).unwrap();
        let s2 = w.try_publish(&[4]).unwrap();
        assert_eq!((s1, s2), (1, 2));
        // Both slots occupied and unreleased: the claim must fail.
        assert_eq!(w.try_publish(&[5]), Err(ArenaFull));
        assert_eq!(readers[0].read(1), &[1, 2, 3]);
        assert_eq!(readers[1].read(1), &[1, 2, 3]);
        for r in &mut readers {
            r.release(1);
        }
        let s3 = w.try_publish(&[5]).unwrap();
        assert_eq!(s3, 3);
        assert_eq!(readers[0].read(2), &[4]);
        assert_eq!(readers[1].read(3), &[5]);
    }

    #[test]
    fn arena_deactivated_reader_stops_holding_slots() {
        let (mut w, mut readers) = batch_arena::<u64>(1, 2);
        w.try_publish(&[7]).unwrap();
        readers[0].release(1);
        // Reader 1 never released: full until it is deactivated.
        assert_eq!(w.try_publish(&[8]), Err(ArenaFull));
        assert_eq!(w.laggard(), Some(1));
        w.deactivate(1);
        assert!(!w.is_active(1));
        assert_eq!(w.try_publish(&[8]), Ok(2));
        assert_eq!(readers[0].read(2), &[8]);
    }

    #[test]
    #[should_panic(expected = "released batch")]
    fn arena_read_after_release_panics() {
        let (mut w, mut readers) = batch_arena::<u64>(2, 1);
        w.try_publish(&[1]).unwrap();
        readers[0].release(1);
        let _ = readers[0].read(1);
    }

    #[test]
    #[should_panic(expected = "arena slot holds batch")]
    fn arena_read_of_unpublished_sequence_panics() {
        let (mut w, readers) = batch_arena::<u64>(2, 1);
        w.try_publish(&[1]).unwrap();
        let _ = readers[0].read(2);
    }
}
