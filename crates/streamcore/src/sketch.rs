//! Key-frequency sketch for online hot-key detection.
//!
//! The hash-partitioned dispatch routes every tuple of a join key to one
//! owning worker, which is exactly wrong for a skewed stream: the owner
//! of the hottest key absorbs an unbounded share of the window. The
//! router therefore feeds every routed key through a [`FreqSketch`] — a
//! bounded Misra–Gries heavy-hitter summary — and promotes a key to
//! *hot* (split across all live workers) once its estimated share of the
//! stream exceeds a configured multiple of the fair per-worker share.
//!
//! Misra–Gries keeps at most `capacity` counters. A key already tracked
//! increments its counter; an untracked key takes a free counter if one
//! exists, and otherwise decrements *every* counter by one (dropping
//! zeros) — an O(capacity) round paid for by `capacity` prior arrivals,
//! so updates are amortized O(1). Estimates undercount by at most
//! `total / (capacity + 1)` ([`FreqSketch::error_bound`]), which is far
//! below the promotion thresholds the join uses (a key worth splitting
//! holds ≥ 1/(2·workers) of the stream; the sketch's default capacity
//! bounds the error to ~1.5%).

use std::collections::HashMap;

/// A bounded Misra–Gries frequency summary over `u32` join keys.
///
/// # Example
///
/// ```
/// use streamcore::FreqSketch;
///
/// let mut sketch = FreqSketch::new(8);
/// for _ in 0..60 {
///     sketch.observe(7); // hot key: 60% of the stream
/// }
/// for k in 0..40 {
///     sketch.observe(1000 + k); // long uniform tail
/// }
/// assert_eq!(sketch.total(), 100);
/// // The hot key's estimate is within the error bound of its true count.
/// assert!(sketch.estimate(7) + sketch.error_bound() >= 60);
/// ```
#[derive(Debug, Clone)]
pub struct FreqSketch {
    capacity: usize,
    counts: HashMap<u32, u64>,
    total: u64,
}

impl FreqSketch {
    /// Creates an empty sketch tracking at most `capacity` keys.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sketch capacity must be at least 1");
        Self {
            capacity,
            counts: HashMap::with_capacity(capacity + 1),
            total: 0,
        }
    }

    /// Maximum number of keys tracked at once.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one occurrence of `key`.
    pub fn observe(&mut self, key: u32) {
        self.total += 1;
        if let Some(count) = self.counts.get_mut(&key) {
            *count += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(key, 1);
            return;
        }
        // Misra–Gries decrement round: the untracked arrival and one
        // unit of every tracked key annihilate each other.
        self.counts.retain(|_, count| {
            *count -= 1;
            *count > 0
        });
    }

    /// Estimated occurrence count of `key` (an undercount by at most
    /// [`FreqSketch::error_bound`]; zero for untracked keys).
    #[must_use]
    pub fn estimate(&self, key: u32) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Maximum undercount of any estimate: `total / (capacity + 1)`.
    #[must_use]
    pub fn error_bound(&self) -> u64 {
        self.total / (self.capacity as u64 + 1)
    }

    /// Keys whose estimated share of the stream is at least `min_share`
    /// (in `0.0..=1.0`), unordered.
    #[must_use]
    pub fn heavy_hitters(&self, min_share: f64) -> Vec<u32> {
        if self.total == 0 {
            return Vec::new();
        }
        let threshold = min_share * self.total as f64;
        self.counts
            .iter()
            .filter(|(_, &count)| count as f64 >= threshold)
            .map(|(&key, _)| key)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut sketch = FreqSketch::new(16);
        for key in 0..10u32 {
            for _ in 0..=key {
                sketch.observe(key);
            }
        }
        for key in 0..10u32 {
            assert_eq!(sketch.estimate(key), key as u64 + 1);
        }
        assert_eq!(sketch.total(), 55);
        assert_eq!(sketch.estimate(99), 0);
    }

    #[test]
    fn heavy_hitter_survives_a_long_tail() {
        let mut sketch = FreqSketch::new(8);
        // 30% hot key interleaved with a 70% uniform tail of 7000
        // distinct keys — far more keys than counters.
        for i in 0..10_000u32 {
            if i % 10 < 3 {
                sketch.observe(42);
            } else {
                sketch.observe(1_000 + i);
            }
        }
        let est = sketch.estimate(42);
        assert!(
            est + sketch.error_bound() >= 3_000,
            "estimate {est} + bound {} must cover the true count",
            sketch.error_bound()
        );
        assert!(est <= 3_000, "Misra–Gries never overcounts");
        assert_eq!(sketch.heavy_hitters(0.2), vec![42]);
    }

    #[test]
    fn never_tracks_more_than_capacity() {
        let mut sketch = FreqSketch::new(4);
        for key in 0..1_000u32 {
            sketch.observe(key);
        }
        let tracked = (0..1_000u32).filter(|&k| sketch.estimate(k) > 0).count();
        assert!(tracked <= 4, "tracked {tracked} keys with capacity 4");
    }

    #[test]
    fn error_bound_grows_with_total() {
        let mut sketch = FreqSketch::new(9);
        assert_eq!(sketch.error_bound(), 0);
        for i in 0..100u32 {
            sketch.observe(i);
        }
        assert_eq!(sketch.error_bound(), 10);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = FreqSketch::new(0);
    }
}
