//! The 64-bit tuple model of the paper's case study.

use std::fmt;

/// Which input stream a tuple belongs to.
///
/// The stream join compares every *R* tuple against the sliding window of
/// *S* and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StreamTag {
    /// The R input stream.
    R,
    /// The S input stream.
    S,
}

impl StreamTag {
    /// The opposite stream: the one whose window this tuple probes.
    pub fn other(self) -> StreamTag {
        match self {
            StreamTag::R => StreamTag::S,
            StreamTag::S => StreamTag::R,
        }
    }
}

impl fmt::Display for StreamTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamTag::R => write!(f, "R"),
            StreamTag::S => write!(f, "S"),
        }
    }
}

/// A 64-bit stream tuple: a 32-bit join key and a 32-bit payload.
///
/// Matches the input format of the paper's experiments ("the input streams
/// consist of 64-bit tuples that are joined against each other using an
/// equi-join").
///
/// ```
/// use streamcore::Tuple;
///
/// let t = Tuple::new(7, 99);
/// assert_eq!(t.key(), 7);
/// assert_eq!(t.payload(), 99);
/// assert_eq!(Tuple::from_raw(t.raw()), t);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    raw: u64,
}

impl Tuple {
    /// Creates a tuple from its join key and payload.
    pub fn new(key: u32, payload: u32) -> Self {
        Self {
            raw: (payload as u64) << 32 | key as u64,
        }
    }

    /// Reconstructs a tuple from its 64-bit wire representation.
    pub fn from_raw(raw: u64) -> Self {
        Self { raw }
    }

    /// The 64-bit wire representation (payload in the high half).
    pub fn raw(&self) -> u64 {
        self.raw
    }

    /// The 32-bit join key.
    pub fn key(&self) -> u32 {
        self.raw as u32
    }

    /// The 32-bit payload.
    pub fn payload(&self) -> u32 {
        (self.raw >> 32) as u32
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.key(), self.payload())
    }
}

impl From<(u32, u32)> for Tuple {
    fn from((key, payload): (u32, u32)) -> Self {
        Tuple::new(key, payload)
    }
}

/// One word on the hardware data bus: a 2-bit header plus payload.
///
/// The paper's buses carry "tuples, including their 2-bit headers. The
/// header defines whether we are dealing with a new join operator or a
/// tuple belonging to either the R or S stream."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Frame {
    /// A tuple from the R stream.
    TupleR(Tuple),
    /// A tuple from the S stream.
    TupleS(Tuple),
    /// Half of a join-operator instruction (operators are programmed in two
    /// consecutive words; see the storage-core FSM, Fig. 12).
    Operator(u64),
}

impl Frame {
    /// Wraps `tuple` in the frame variant for `tag`.
    pub fn tuple(tag: StreamTag, tuple: Tuple) -> Self {
        match tag {
            StreamTag::R => Frame::TupleR(tuple),
            StreamTag::S => Frame::TupleS(tuple),
        }
    }

    /// The tuple carried, if this is a tuple frame.
    pub fn as_tuple(&self) -> Option<(StreamTag, Tuple)> {
        match *self {
            Frame::TupleR(t) => Some((StreamTag::R, t)),
            Frame::TupleS(t) => Some((StreamTag::S, t)),
            Frame::Operator(_) => None,
        }
    }

    /// `true` if this frame programs the join operator.
    pub fn is_operator(&self) -> bool {
        matches!(self, Frame::Operator(_))
    }
}

/// A join result: the pair of input tuples that satisfied the join
/// condition. On the result bus this is twice the input width plus the
/// header, as the paper notes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatchPair {
    /// The tuple from the R stream.
    pub r: Tuple,
    /// The tuple from the S stream.
    pub s: Tuple,
}

impl MatchPair {
    /// Creates a result pair, orienting `probe` and `stored` by
    /// `probe_tag`.
    pub fn oriented(probe_tag: StreamTag, probe: Tuple, stored: Tuple) -> Self {
        match probe_tag {
            StreamTag::R => MatchPair { r: probe, s: stored },
            StreamTag::S => MatchPair { r: stored, s: probe },
        }
    }
}

impl fmt::Display for MatchPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[R{} ⋈ S{}]", self.r, self.s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_round_trips_key_and_payload() {
        let t = Tuple::new(u32::MAX, 0);
        assert_eq!(t.key(), u32::MAX);
        assert_eq!(t.payload(), 0);
        let t2 = Tuple::new(0, u32::MAX);
        assert_eq!(t2.key(), 0);
        assert_eq!(t2.payload(), u32::MAX);
    }

    #[test]
    fn tuple_raw_round_trip() {
        let t = Tuple::new(0xdead_beef, 0x1234_5678);
        assert_eq!(Tuple::from_raw(t.raw()), t);
        assert_eq!(t.raw(), 0x1234_5678_dead_beef);
    }

    #[test]
    fn tuple_from_pair() {
        let t: Tuple = (3u32, 4u32).into();
        assert_eq!(t, Tuple::new(3, 4));
    }

    #[test]
    fn stream_tag_other_is_involutive() {
        assert_eq!(StreamTag::R.other(), StreamTag::S);
        assert_eq!(StreamTag::S.other(), StreamTag::R);
        assert_eq!(StreamTag::R.other().other(), StreamTag::R);
    }

    #[test]
    fn frame_tuple_round_trip() {
        let t = Tuple::new(1, 2);
        for tag in [StreamTag::R, StreamTag::S] {
            let f = Frame::tuple(tag, t);
            assert_eq!(f.as_tuple(), Some((tag, t)));
            assert!(!f.is_operator());
        }
        let op = Frame::Operator(0xff);
        assert!(op.is_operator());
        assert_eq!(op.as_tuple(), None);
    }

    #[test]
    fn match_pair_orientation() {
        let probe = Tuple::new(1, 10);
        let stored = Tuple::new(1, 20);
        let from_r = MatchPair::oriented(StreamTag::R, probe, stored);
        assert_eq!(from_r.r, probe);
        assert_eq!(from_r.s, stored);
        let from_s = MatchPair::oriented(StreamTag::S, probe, stored);
        assert_eq!(from_s.r, stored);
        assert_eq!(from_s.s, probe);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tuple::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(StreamTag::R.to_string(), "R");
        let m = MatchPair { r: Tuple::new(1, 0), s: Tuple::new(1, 5) };
        assert_eq!(m.to_string(), "[R(1, 0) ⋈ S(1, 5)]");
    }
}
