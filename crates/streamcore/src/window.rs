//! Count-based sliding windows.
//!
//! Two storage backends implement the same count-based semantics:
//!
//! * [`SlidingWindow`] — the generic `VecDeque` reference backend. Every
//!   other realization in the workspace is validated against it, and the
//!   hardware simulation (`joinhw`) keeps building on it, so its
//!   semantics (and the golden cycle pins downstream of them) never
//!   move.
//! * [`FlatWindow`] / [`HashIndexWindow`] — flat ring buffers over
//!   [`Tuple`]s for the software join hot paths. `FlatWindow` stores
//!   keys and payloads in separate contiguous arrays
//!   (struct-of-arrays), so a nested-loop probe is a linear scan of a
//!   dense `u32` array; `HashIndexWindow` adds an open-addressing
//!   equi-join index over the same ring. Both are cross-checked against
//!   `SlidingWindow` by randomized property tests
//!   (`tests/window_backends.rs`).

use std::collections::VecDeque;

use crate::Tuple;

/// A count-based sliding window of capacity `W`.
///
/// Inserting into a full window expires the oldest element — the semantics
/// the paper inherits from Kang's three-step procedure: a new tuple is
/// (1) probed against the other stream's window, (2) inserted into its own
/// window, (3) the oldest tuple is expired.
///
/// # Example
///
/// ```
/// use streamcore::SlidingWindow;
///
/// let mut w = SlidingWindow::new(2);
/// assert_eq!(w.insert(1), None);
/// assert_eq!(w.insert(2), None);
/// assert_eq!(w.insert(3), Some(1)); // capacity reached: 1 expires
/// assert_eq!(w.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlidingWindow<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> SlidingWindow<T> {
    /// Creates an empty window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of tuples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of tuples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` once the window has filled to capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Inserts `value`, returning the expired oldest element if the window
    /// was full.
    pub fn insert(&mut self, value: T) -> Option<T> {
        let expired = if self.is_full() {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(value);
        expired
    }

    /// Iterates from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The most recently inserted element.
    pub fn newest(&self) -> Option<&T> {
        self.items.back()
    }

    /// The oldest retained element (the next to expire).
    pub fn oldest(&self) -> Option<&T> {
        self.items.front()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<'a, T> IntoIterator for &'a SlidingWindow<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T> Extend<T> for SlidingWindow<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

/// A count-based sliding window of [`Tuple`]s stored as a flat
/// struct-of-arrays ring buffer.
///
/// Semantics are identical to [`SlidingWindow`]`<Tuple>` — inserting into
/// a full window expires the oldest tuple — but the storage layout is
/// built for the nested-loop probe of the software joins: all join keys
/// live in one contiguous `u32` array (and all payloads in another), so a
/// window scan streams through dense cache lines instead of chasing
/// 64-bit tuples interleaved with `VecDeque` bookkeeping. Payloads are
/// only touched when a key satisfies the predicate (see
/// [`JoinPredicate::matches_keys`](crate::JoinPredicate::matches_keys)).
///
/// # Example
///
/// ```
/// use streamcore::{FlatWindow, Tuple};
///
/// let mut w = FlatWindow::new(2);
/// assert_eq!(w.insert(Tuple::new(1, 10)), None);
/// assert_eq!(w.insert(Tuple::new(2, 20)), None);
/// // Capacity reached: the oldest tuple expires.
/// assert_eq!(w.insert(Tuple::new(3, 30)), Some(Tuple::new(1, 10)));
/// let keys: Vec<u32> = w.iter().map(|t| t.key()).collect();
/// assert_eq!(keys, vec![2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatWindow {
    keys: Box<[u32]>,
    payloads: Box<[u32]>,
    /// Index of the oldest element.
    head: usize,
    len: usize,
}

impl FlatWindow {
    /// Creates an empty window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        Self {
            keys: vec![0; capacity].into_boxed_slice(),
            payloads: vec![0; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of tuples retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Current number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the window holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once the window has filled to capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Inserts `value`, returning the expired oldest tuple if the window
    /// was full.
    pub fn insert(&mut self, value: Tuple) -> Option<Tuple> {
        let cap = self.capacity();
        if self.len == cap {
            // Full: the head slot is both the expiring tuple and the
            // write position for the new one.
            let old = Tuple::new(self.keys[self.head], self.payloads[self.head]);
            self.keys[self.head] = value.key();
            self.payloads[self.head] = value.payload();
            self.head = (self.head + 1) % cap;
            Some(old)
        } else {
            let slot = (self.head + self.len) % cap;
            self.keys[slot] = value.key();
            self.payloads[slot] = value.payload();
            self.len += 1;
            None
        }
    }

    /// The window contents as up to two contiguous `(keys, payloads)`
    /// runs, oldest run first — the shape the nested-loop probe consumes.
    /// Within each run, `keys[i]` and `payloads[i]` belong to the same
    /// tuple; an empty second run means the ring has not wrapped.
    #[must_use]
    pub fn segments(&self) -> [(&[u32], &[u32]); 2] {
        let cap = self.capacity();
        if self.head + self.len <= cap {
            let r = self.head..self.head + self.len;
            [(&self.keys[r.clone()], &self.payloads[r]), (&[], &[])]
        } else {
            let wrap = self.head + self.len - cap;
            [
                (&self.keys[self.head..], &self.payloads[self.head..]),
                (&self.keys[..wrap], &self.payloads[..wrap]),
            ]
        }
    }

    /// Copies the window contents, oldest first, into contiguous
    /// scratch vectors (cleared first). Payloads are copied only when
    /// `with_payloads` — the counting path of the blocked probe kernels
    /// ([`kernel`](crate::kernel)) never touches them. Index `i` of the
    /// snapshot is the window's `i`-th oldest tuple, so per-probe
    /// expiry can be expressed as an index range over the snapshot.
    pub fn snapshot_into(
        &self,
        keys: &mut Vec<u32>,
        payloads: &mut Vec<u32>,
        with_payloads: bool,
    ) {
        keys.clear();
        payloads.clear();
        for (k, p) in self.segments() {
            keys.extend_from_slice(k);
            if with_payloads {
                payloads.extend_from_slice(p);
            }
        }
    }

    /// Iterates from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        let [(k1, p1), (k2, p2)] = self.segments();
        k1.iter()
            .zip(p1)
            .chain(k2.iter().zip(p2))
            .map(|(&k, &p)| Tuple::new(k, p))
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

const NIL: u32 = u32::MAX;

/// Open-addressing table entry state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Empty,
    Tombstone,
    Occupied,
}

/// One open-addressing table entry: a key and its FIFO chain of ring
/// slots (oldest first).
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    state: SlotState,
    key: u32,
    first: u32,
    last: u32,
}

impl IndexEntry {
    const EMPTY: IndexEntry = IndexEntry {
        state: SlotState::Empty,
        key: 0,
        first: NIL,
        last: NIL,
    };
}

/// A count-based sliding window of [`Tuple`]s with an open-addressing
/// equi-join index over a flat ring buffer.
///
/// Storage is the same struct-of-arrays ring as [`FlatWindow`], plus a
/// per-slot `next` link threading all tuples that share a join key into
/// an insertion-ordered chain, and an open-addressing hash table mapping
/// each live key to its chain. [`HashIndexWindow::probe`] therefore
/// visits exactly the stored tuples equal to the probe key, oldest
/// first, in O(matches) — the hash backend of the software SplitJoin.
///
/// Expiry keeps the index exact: evicting the globally-oldest tuple pops
/// the head of its key chain (insertion order makes them the same
/// element), and key entries whose chain empties are tombstoned; the
/// table rebuilds in place when tombstones pile up.
///
/// # Example
///
/// ```
/// use streamcore::{HashIndexWindow, Tuple};
///
/// let mut w = HashIndexWindow::new(3);
/// w.insert(Tuple::new(7, 0));
/// w.insert(Tuple::new(9, 1));
/// w.insert(Tuple::new(7, 2));
/// let hits: Vec<u32> = w.probe(7).map(|t| t.payload()).collect();
/// assert_eq!(hits, vec![0, 2]); // oldest first
/// assert_eq!(w.probe(8).count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct HashIndexWindow {
    keys: Box<[u32]>,
    payloads: Box<[u32]>,
    /// Next newer ring slot holding the same key (`NIL` terminates).
    next: Box<[u32]>,
    head: usize,
    len: usize,
    table: Box<[IndexEntry]>,
    mask: usize,
    occupied: usize,
    tombstones: usize,
}

impl HashIndexWindow {
    /// Creates an empty window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u32::MAX - 1` slots (the
    /// ring is `u32`-indexed).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        assert!(
            capacity < NIL as usize,
            "window capacity must fit u32 slot indices"
        );
        let table_len = (capacity * 2).next_power_of_two().max(8);
        Self {
            keys: vec![0; capacity].into_boxed_slice(),
            payloads: vec![0; capacity].into_boxed_slice(),
            next: vec![NIL; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
            table: vec![IndexEntry::EMPTY; table_len].into_boxed_slice(),
            mask: table_len - 1,
            occupied: 0,
            tombstones: 0,
        }
    }

    /// Maximum number of tuples retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Current number of tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the window holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` once the window has filled to capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    #[inline]
    fn hash(&self, key: u32) -> usize {
        // Fibonacci multiplicative hash over the table's power-of-two size.
        ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Finds the table position of `key`: `Ok(pos)` if present,
    /// `Err(pos)` with the best insertion position (first tombstone on
    /// the probe path, else the terminating empty slot) if absent.
    fn find(&self, key: u32) -> Result<usize, usize> {
        let mut pos = self.hash(key);
        let mut insert_at = None;
        loop {
            let e = &self.table[pos];
            match e.state {
                SlotState::Empty => return Err(insert_at.unwrap_or(pos)),
                SlotState::Tombstone => {
                    insert_at.get_or_insert(pos);
                }
                SlotState::Occupied if e.key == key => return Ok(pos),
                SlotState::Occupied => {}
            }
            pos = (pos + 1) & self.mask;
        }
    }

    /// Rebuilds the table in place, dropping accumulated tombstones. The
    /// live-key count is bounded by the ring capacity (≤ half the table),
    /// so the same table size always suffices.
    fn rebuild(&mut self) {
        self.table.fill(IndexEntry::EMPTY);
        self.occupied = 0;
        self.tombstones = 0;
        self.next.fill(NIL);
        let cap = self.capacity();
        for i in 0..self.len {
            let slot = ((self.head + i) % cap) as u32;
            self.link_slot(slot);
        }
    }

    /// Appends ring slot `slot` (whose key/payload are already written)
    /// to its key chain, creating the table entry if needed.
    fn link_slot(&mut self, slot: u32) {
        let key = self.keys[slot as usize];
        match self.find(key) {
            Ok(pos) => {
                let last = self.table[pos].last;
                self.next[last as usize] = slot;
                self.table[pos].last = slot;
            }
            Err(pos) => {
                if self.table[pos].state == SlotState::Tombstone {
                    self.tombstones -= 1;
                }
                self.table[pos] = IndexEntry {
                    state: SlotState::Occupied,
                    key,
                    first: slot,
                    last: slot,
                };
                self.occupied += 1;
            }
        }
    }

    /// Unlinks the current head slot (the globally-oldest tuple) from its
    /// key chain ahead of its eviction.
    fn unlink_oldest(&mut self) {
        let slot = self.head as u32;
        let key = self.keys[self.head];
        let pos = self
            .find(key)
            .expect("evicted key must be indexed");
        debug_assert_eq!(
            self.table[pos].first, slot,
            "global oldest must head its key chain"
        );
        let rest = self.next[self.head];
        self.next[self.head] = NIL;
        if rest == NIL {
            self.table[pos].state = SlotState::Tombstone;
            self.occupied -= 1;
            self.tombstones += 1;
        } else {
            self.table[pos].first = rest;
        }
    }

    /// Inserts `value`, returning the expired oldest tuple if the window
    /// was full.
    pub fn insert(&mut self, value: Tuple) -> Option<Tuple> {
        let cap = self.capacity();
        let mut expired = None;
        if self.len == cap {
            self.unlink_oldest();
            expired = Some(Tuple::new(self.keys[self.head], self.payloads[self.head]));
            self.head = (self.head + 1) % cap;
            self.len -= 1;
        }
        if self.tombstones + self.occupied > self.table.len() * 3 / 4 {
            self.rebuild();
        }
        let slot = ((self.head + self.len) % cap) as u32;
        self.keys[slot as usize] = value.key();
        self.payloads[slot as usize] = value.payload();
        self.next[slot as usize] = NIL;
        self.len += 1;
        self.link_slot(slot);
        expired
    }

    /// Visits the stored tuples whose key equals `key`, oldest first.
    pub fn probe(&self, key: u32) -> ProbeHits<'_> {
        let cur = match self.find(key) {
            Ok(pos) => self.table[pos].first,
            Err(_) => NIL,
        };
        ProbeHits {
            window: self,
            cur,
            prefetch: false,
        }
    }

    /// [`HashIndexWindow::probe`] with software prefetching: while each
    /// chain node is evaluated, the next node's ring slots are hinted
    /// into cache ([`kernel::prefetch_read`](crate::kernel::prefetch_read)),
    /// overlapping the pointer-chase latency of long equi-chains. Yields
    /// exactly the same tuples as `probe`.
    pub fn probe_prefetch(&self, key: u32) -> ProbeHits<'_> {
        let mut hits = self.probe(key);
        hits.prefetch = true;
        if hits.cur != NIL {
            let slot = hits.cur as usize;
            crate::kernel::prefetch_read(&self.keys, slot);
            crate::kernel::prefetch_read(&self.payloads, slot);
            crate::kernel::prefetch_read(&self.next, slot);
        }
        hits
    }

    /// Iterates every stored tuple from oldest to newest (test support;
    /// the hot path uses [`HashIndexWindow::probe`]).
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        let cap = self.capacity();
        (0..self.len).map(move |i| {
            let slot = (self.head + i) % cap;
            Tuple::new(self.keys[slot], self.payloads[slot])
        })
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.table.fill(IndexEntry::EMPTY);
        self.next.fill(NIL);
        self.occupied = 0;
        self.tombstones = 0;
    }
}

/// Iterator over the equi-join hits of one [`HashIndexWindow::probe`]
/// (or [`HashIndexWindow::probe_prefetch`]).
#[derive(Debug)]
pub struct ProbeHits<'a> {
    window: &'a HashIndexWindow,
    cur: u32,
    /// Hint the next chain node into cache while this one is consumed.
    prefetch: bool,
}

impl Iterator for ProbeHits<'_> {
    type Item = Tuple;

    #[inline]
    fn next(&mut self) -> Option<Tuple> {
        if self.cur == NIL {
            return None;
        }
        let slot = self.cur as usize;
        self.cur = self.window.next[slot];
        if self.prefetch && self.cur != NIL {
            let nxt = self.cur as usize;
            crate::kernel::prefetch_read(&self.window.keys, nxt);
            crate::kernel::prefetch_read(&self.window.payloads, nxt);
            crate::kernel::prefetch_read(&self.window.next, nxt);
        }
        Some(Tuple::new(
            self.window.keys[slot],
            self.window.payloads[slot],
        ))
    }
}

/// One key-partitioned shard of a count-based sliding window, expired by
/// global per-stream sequence number.
///
/// Under hash-partitioned dispatch each worker holds only the window
/// tuples whose join key it owns, so a count-based capacity cannot be
/// local: "the last `W` tuples of the stream" is a property of the
/// *global* stream, and a shard's share of it grows and shrinks with the
/// key distribution. The router therefore stamps every tuple with its
/// global per-stream sequence number, and the shard expires by an
/// explicit watermark instead of a fixed capacity:
/// [`PartitionedWindow::evict_below`]`(count - W)` drops exactly the
/// tuples a capacity-`W` global window would have expired. This keeps
/// the partitioned realization's result multiset identical to the
/// broadcast one.
///
/// Storage is a per-key FIFO chain plus a global arrival-order queue, so
/// an equi-probe visits exactly the stored tuples equal to the probe key
/// (oldest first, like [`HashIndexWindow::probe`]) and eviction pops
/// from the front of both structures.
///
/// Sequence numbers must be inserted in ascending order (the router's
/// per-worker lanes are FIFO, so routed sub-streams arrive sorted).
///
/// # Example
///
/// ```
/// use streamcore::{PartitionedWindow, Tuple};
///
/// let mut w = PartitionedWindow::new();
/// w.insert(0, Tuple::new(7, 100));
/// w.insert(3, Tuple::new(9, 101));
/// w.insert(5, Tuple::new(7, 102));
/// // A global window of 4 at stream count 8 keeps seqs 4..8:
/// // seqs 0 and 3 expire, only seq 5 survives.
/// w.evict_below(4);
/// let hits: Vec<u32> = w.probe(7).map(|t| t.payload()).collect();
/// assert_eq!(hits, vec![102]);
/// assert_eq!(w.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PartitionedWindow {
    /// Per-key FIFO chains of `(seq, payload)`, ascending by seq.
    chains: std::collections::HashMap<u32, VecDeque<(u64, u32)>>,
    /// Global arrival order as `(seq, key)`, ascending by seq.
    order: VecDeque<(u64, u32)>,
}

impl PartitionedWindow {
    /// Creates an empty shard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of live (unexpired) tuples in this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if the shard holds no tuples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of distinct keys with live tuples.
    #[must_use]
    pub fn key_count(&self) -> usize {
        self.chains.len()
    }

    /// Stores `tuple` under global sequence number `seq`.
    ///
    /// `seq` must be strictly greater than every previously inserted
    /// sequence number (checked in debug builds).
    pub fn insert(&mut self, seq: u64, tuple: Tuple) {
        debug_assert!(
            self.order.back().is_none_or(|&(last, _)| last < seq),
            "sequence numbers must arrive ascending"
        );
        self.order.push_back((seq, tuple.key()));
        self.chains
            .entry(tuple.key())
            .or_default()
            .push_back((seq, tuple.payload()));
    }

    /// Expires every tuple with sequence number below `min_seq` — the
    /// shard's slice of a global window whose oldest live sequence
    /// number is `min_seq`.
    pub fn evict_below(&mut self, min_seq: u64) {
        while let Some(&(seq, key)) = self.order.front() {
            if seq >= min_seq {
                break;
            }
            self.order.pop_front();
            let chain = self
                .chains
                .get_mut(&key)
                .expect("ordered tuple must have a chain");
            let evicted = chain.pop_front();
            debug_assert_eq!(evicted.map(|(s, _)| s), Some(seq), "chain head is global head");
            if chain.is_empty() {
                self.chains.remove(&key);
            }
        }
    }

    /// Number of live tuples whose key equals `key`, in O(1) — the
    /// counting-only shortcut of the blocked kernel integration: every
    /// chain entry of an equi-probe is a match, so the tally needs no
    /// chain walk.
    #[must_use]
    pub fn probe_len(&self, key: u32) -> usize {
        self.chains.get(&key).map_or(0, VecDeque::len)
    }

    /// Visits the live tuples whose key equals `key`, oldest first.
    pub fn probe(&self, key: u32) -> impl Iterator<Item = Tuple> + '_ {
        self.chains
            .get(&key)
            .into_iter()
            .flat_map(|chain| chain.iter())
            .map(move |&(_, payload)| Tuple::new(key, payload))
    }

    /// Iterates every live tuple from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Tuple)> + '_ {
        self.order.iter().map(|&(seq, key)| {
            let chain = &self.chains[&key];
            let idx = chain
                .binary_search_by_key(&seq, |&(s, _)| s)
                .expect("ordered tuple must be in its chain");
            (seq, Tuple::new(key, chain[idx].1))
        })
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.chains.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_until_capacity_then_slides() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for i in 0..3 {
            assert_eq!(w.insert(i), None);
        }
        assert!(w.is_full());
        assert_eq!(w.insert(3), Some(0));
        assert_eq!(w.insert(4), Some(1));
        let v: Vec<_> = w.iter().copied().collect();
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn oldest_and_newest() {
        let mut w = SlidingWindow::new(2);
        assert_eq!(w.oldest(), None);
        assert_eq!(w.newest(), None);
        w.insert(10);
        w.insert(20);
        assert_eq!(w.oldest(), Some(&10));
        assert_eq!(w.newest(), Some(&20));
    }

    #[test]
    fn extend_applies_sliding_semantics() {
        let mut w = SlidingWindow::new(2);
        w.extend(0..5);
        let v: Vec<_> = (&w).into_iter().copied().collect();
        assert_eq!(v, vec![3, 4]);
    }

    #[test]
    fn clear_empties_window() {
        let mut w = SlidingWindow::new(2);
        w.insert(1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::<u8>::new(0);
    }

    #[test]
    fn window_of_one_always_keeps_latest() {
        let mut w = SlidingWindow::new(1);
        for i in 0..10 {
            w.insert(i);
            assert_eq!(w.newest(), Some(&i));
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn flat_snapshot_is_oldest_first_across_wrap() {
        let mut w = FlatWindow::new(4);
        for i in 0..6u32 {
            w.insert(Tuple::new(i, i + 100));
        }
        let (mut keys, mut pays) = (Vec::new(), Vec::new());
        w.snapshot_into(&mut keys, &mut pays, true);
        assert_eq!(keys, vec![2, 3, 4, 5]);
        assert_eq!(pays, vec![102, 103, 104, 105]);
        // Counting mode leaves payloads empty; scratch is reset each call.
        w.snapshot_into(&mut keys, &mut pays, false);
        assert_eq!(keys, vec![2, 3, 4, 5]);
        assert!(pays.is_empty());
    }

    #[test]
    fn hash_probe_prefetch_yields_identical_hits() {
        let mut w = HashIndexWindow::new(8);
        for i in 0..12u32 {
            w.insert(Tuple::new(i % 3, i));
        }
        for key in 0..4u32 {
            let plain: Vec<Tuple> = w.probe(key).collect();
            let pre: Vec<Tuple> = w.probe_prefetch(key).collect();
            assert_eq!(plain, pre, "prefetch must be perf-only (key {key})");
        }
    }

    #[test]
    fn partitioned_probe_len_counts_the_chain() {
        let mut w = PartitionedWindow::new();
        assert_eq!(w.probe_len(7), 0);
        w.insert(0, Tuple::new(7, 1));
        w.insert(1, Tuple::new(7, 2));
        w.insert(2, Tuple::new(9, 3));
        assert_eq!(w.probe_len(7), 2);
        assert_eq!(w.probe_len(9), 1);
        w.evict_below(1);
        assert_eq!(w.probe_len(7), 1);
    }

    #[test]
    fn partitioned_probe_hits_oldest_first() {
        let mut w = PartitionedWindow::new();
        w.insert(0, Tuple::new(7, 100));
        w.insert(1, Tuple::new(9, 200));
        w.insert(4, Tuple::new(7, 101));
        let hits: Vec<u32> = w.probe(7).map(|t| t.payload()).collect();
        assert_eq!(hits, vec![100, 101]);
        assert_eq!(w.probe(8).count(), 0);
        assert_eq!(w.len(), 3);
        assert_eq!(w.key_count(), 2);
    }

    #[test]
    fn partitioned_eviction_matches_a_global_capacity_window() {
        // A shard owning a subset of keys, expired by watermark, must
        // hold exactly the owned slice of a capacity-W SlidingWindow
        // over the full stream.
        const W: u64 = 16;
        let owned = |key: u32| key.is_multiple_of(3);
        let mut shard = PartitionedWindow::new();
        let mut global = SlidingWindow::new(W as usize);
        for seq in 0..200u64 {
            let t = Tuple::new((seq % 23) as u32, seq as u32);
            global.insert((seq, t));
            if owned(t.key()) {
                shard.evict_below((seq + 1).saturating_sub(W));
                shard.insert(seq, t);
            }
        }
        shard.evict_below(200u64.saturating_sub(W));
        let expect: Vec<(u64, Tuple)> = global
            .iter()
            .filter(|(_, t)| owned(t.key()))
            .copied()
            .collect();
        let got: Vec<(u64, Tuple)> = shard.iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn partitioned_eviction_drops_emptied_keys() {
        let mut w = PartitionedWindow::new();
        w.insert(2, Tuple::new(5, 0));
        w.insert(3, Tuple::new(6, 1));
        w.evict_below(3);
        assert_eq!(w.key_count(), 1);
        assert_eq!(w.probe(5).count(), 0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.key_count(), 0);
    }
}
