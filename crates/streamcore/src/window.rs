//! Count-based sliding windows.

use std::collections::VecDeque;

/// A count-based sliding window of capacity `W`.
///
/// Inserting into a full window expires the oldest element — the semantics
/// the paper inherits from Kang's three-step procedure: a new tuple is
/// (1) probed against the other stream's window, (2) inserted into its own
/// window, (3) the oldest tuple is expired.
///
/// # Example
///
/// ```
/// use streamcore::SlidingWindow;
///
/// let mut w = SlidingWindow::new(2);
/// assert_eq!(w.insert(1), None);
/// assert_eq!(w.insert(2), None);
/// assert_eq!(w.insert(3), Some(1)); // capacity reached: 1 expires
/// assert_eq!(w.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlidingWindow<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> SlidingWindow<T> {
    /// Creates an empty window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be at least 1");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of tuples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of tuples.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the window holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` once the window has filled to capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Inserts `value`, returning the expired oldest element if the window
    /// was full.
    pub fn insert(&mut self, value: T) -> Option<T> {
        let expired = if self.is_full() {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(value);
        expired
    }

    /// Iterates from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// The most recently inserted element.
    pub fn newest(&self) -> Option<&T> {
        self.items.back()
    }

    /// The oldest retained element (the next to expire).
    pub fn oldest(&self) -> Option<&T> {
        self.items.front()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

impl<'a, T> IntoIterator for &'a SlidingWindow<T> {
    type Item = &'a T;
    type IntoIter = std::collections::vec_deque::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl<T> Extend<T> for SlidingWindow<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_until_capacity_then_slides() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        for i in 0..3 {
            assert_eq!(w.insert(i), None);
        }
        assert!(w.is_full());
        assert_eq!(w.insert(3), Some(0));
        assert_eq!(w.insert(4), Some(1));
        let v: Vec<_> = w.iter().copied().collect();
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn oldest_and_newest() {
        let mut w = SlidingWindow::new(2);
        assert_eq!(w.oldest(), None);
        assert_eq!(w.newest(), None);
        w.insert(10);
        w.insert(20);
        assert_eq!(w.oldest(), Some(&10));
        assert_eq!(w.newest(), Some(&20));
    }

    #[test]
    fn extend_applies_sliding_semantics() {
        let mut w = SlidingWindow::new(2);
        w.extend(0..5);
        let v: Vec<_> = (&w).into_iter().copied().collect();
        assert_eq!(v, vec![3, 4]);
    }

    #[test]
    fn clear_empties_window() {
        let mut w = SlidingWindow::new(2);
        w.insert(1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::<u8>::new(0);
    }

    #[test]
    fn window_of_one_always_keeps_latest() {
        let mut w = SlidingWindow::new(1);
        for i in 0..10 {
            w.insert(i);
            assert_eq!(w.newest(), Some(&i));
            assert_eq!(w.len(), 1);
        }
    }
}
