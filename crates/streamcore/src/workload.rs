//! Reproducible stream workload generation.
//!
//! Experiments need interleaved R/S streams with controllable key
//! distributions: the key domain sets join selectivity (under uniform
//! keys a probe matches a window tuple with probability
//! `1 / key_domain`), while [`KeyDist::Zipf`] models the skewed feeds
//! that stress hash-partitioned dispatch. Arrival interleaving
//! ([`ArrivalPattern`]) and bounded out-of-order delivery
//! ([`WorkloadSpec::with_disorder`]) are controlled the same way.
//!
//! Generators are deterministic given a seed, so every realization of a
//! join — hardware simulation, broadcast SplitJoin, partitioned
//! SplitJoin, handshake chain — sees the identical tuple sequence and
//! their result multisets can be compared exactly. A workload feeds a
//! join through the fallible `StreamJoin` API (`process` /
//! `process_batch`, both `Result`-returning); the measurement loops in
//! `joinsw::harness` and the equivalence suites in
//! `tests/cross_impl_equivalence.rs` are the canonical consumers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{StreamTag, Tuple};

/// Distribution of join keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Keys uniform over `0..domain`.
    Uniform {
        /// Number of distinct keys.
        domain: u32,
    },
    /// Zipf-distributed keys over `0..domain` with exponent `s` — models
    /// skewed IoT feeds where a few sensors dominate.
    Zipf {
        /// Number of distinct keys.
        domain: u32,
        /// Skew exponent (0 = uniform, 1 = classic Zipf).
        s: f64,
    },
}

impl KeyDist {
    fn domain(&self) -> u32 {
        match *self {
            KeyDist::Uniform { domain } | KeyDist::Zipf { domain, .. } => domain,
        }
    }
}

/// How tuples are interleaved between the R and S streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Strict alternation R, S, R, S… (the default; equal rates).
    Alternating,
    /// The origin of each tuple is drawn uniformly at random.
    RandomOrigin,
    /// Runs of `burst` consecutive tuples from the same stream, streams
    /// alternating between runs — models sensors that report in batches.
    Bursty {
        /// Length of each same-stream run.
        burst: usize,
    },
}

/// Specification of a two-stream workload.
///
/// # Example
///
/// ```
/// use streamcore::workload::{KeyDist, WorkloadSpec};
/// use streamcore::StreamTag;
///
/// let spec = WorkloadSpec::new(1_000, KeyDist::Uniform { domain: 64 });
/// let tuples: Vec<_> = spec.generate().collect();
/// assert_eq!(tuples.len(), 1_000);
/// // Alternating R/S by default: exactly half from each stream.
/// let r = tuples.iter().filter(|(tag, _)| *tag == StreamTag::R).count();
/// assert_eq!(r, 500);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Total number of tuples to generate (across both streams).
    pub tuples: usize,
    /// Key distribution.
    pub keys: KeyDist,
    /// RNG seed; equal seeds yield identical workloads.
    pub seed: u64,
    /// Stream interleaving.
    pub arrivals: ArrivalPattern,
    /// Out-of-order block size: tuples are emitted in a random order
    /// within consecutive blocks of this many tuples (`0` or `1` =
    /// strictly in order). See [`WorkloadSpec::with_disorder`].
    pub disorder: usize,
}

impl WorkloadSpec {
    /// Creates a spec with seed 42 and strict R/S alternation.
    pub fn new(tuples: usize, keys: KeyDist) -> Self {
        Self {
            tuples,
            keys,
            seed: 42,
            arrivals: ArrivalPattern::Alternating,
            disorder: 0,
        }
    }

    /// Replaces the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses random (rather than alternating) stream origins.
    pub fn with_random_origin(mut self) -> Self {
        self.arrivals = ArrivalPattern::RandomOrigin;
        self
    }

    /// Selects the arrival interleaving.
    ///
    /// # Panics
    ///
    /// Panics if a bursty pattern has a zero burst length.
    pub fn with_arrivals(mut self, arrivals: ArrivalPattern) -> Self {
        if let ArrivalPattern::Bursty { burst } = arrivals {
            assert!(burst > 0, "burst length must be positive");
        }
        self.arrivals = arrivals;
        self
    }

    /// Emits tuples out of order: each consecutive block of `block`
    /// tuples is shuffled (deterministically, from the spec's seed)
    /// before emission, so a tuple's displacement from its in-order
    /// position is bounded by `block - 1`. Payloads still carry the
    /// *generation* sequence number, so the disorder of a stream is
    /// observable downstream. `block <= 1` restores strict order.
    ///
    /// This models bounded network reordering between a sensor and the
    /// join: the same multiset of tuples, delivered within a bounded
    /// horizon of their true positions.
    pub fn with_disorder(mut self, block: usize) -> Self {
        self.disorder = block;
        self
    }

    /// Expected number of matches each probe finds in a full window of
    /// `window` tuples of the other stream (uniform keys only; a guide for
    /// sizing result buffers).
    pub fn expected_matches_per_probe(&self, window: usize) -> f64 {
        window as f64 / self.keys.domain() as f64
    }

    /// Returns the workload as an iterator of `(origin, tuple)` pairs.
    /// Payloads are sequence numbers, making every generated tuple unique
    /// and results traceable to their inputs.
    pub fn generate(&self) -> Generate {
        Generate {
            rng: StdRng::seed_from_u64(self.seed),
            zipf: match self.keys {
                KeyDist::Zipf { domain, s } => Some(ZipfSampler::new(domain, s)),
                KeyDist::Uniform { .. } => None,
            },
            keys: self.keys,
            remaining: self.tuples,
            seq: 0,
            arrivals: self.arrivals,
            disorder: self.disorder,
            // A separate RNG stream for shuffling keeps the generated
            // content byte-identical to the in-order workload: disorder
            // is purely a re-ordering.
            shuffle_rng: StdRng::seed_from_u64(self.seed ^ 0x5DEE_CE66_D5DE_ECE6),
            block: Vec::new(),
            block_pos: 0,
        }
    }
}

/// Iterator of workload tuples; created by [`WorkloadSpec::generate`].
#[derive(Debug, Clone)]
pub struct Generate {
    rng: StdRng,
    zipf: Option<ZipfSampler>,
    keys: KeyDist,
    remaining: usize,
    seq: u64,
    arrivals: ArrivalPattern,
    disorder: usize,
    shuffle_rng: StdRng,
    /// Shuffled block awaiting emission (disorder mode only).
    block: Vec<(StreamTag, Tuple)>,
    block_pos: usize,
}

impl Generate {
    /// Generates the next tuple in true arrival order.
    fn next_in_order(&mut self) -> Option<(StreamTag, Tuple)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let tag = match self.arrivals {
            ArrivalPattern::Alternating => {
                if self.seq.is_multiple_of(2) {
                    StreamTag::R
                } else {
                    StreamTag::S
                }
            }
            ArrivalPattern::RandomOrigin => {
                if self.rng.gen_bool(0.5) {
                    StreamTag::R
                } else {
                    StreamTag::S
                }
            }
            ArrivalPattern::Bursty { burst } => {
                if (self.seq as usize / burst).is_multiple_of(2) {
                    StreamTag::R
                } else {
                    StreamTag::S
                }
            }
        };
        let key = match self.keys {
            KeyDist::Uniform { domain } => self.rng.gen_range(0..domain),
            KeyDist::Zipf { .. } => {
                let z = self.zipf.as_mut().expect("zipf sampler present");
                z.sample(&mut self.rng)
            }
        };
        let t = Tuple::new(key, self.seq as u32);
        self.seq += 1;
        Some((tag, t))
    }
}

impl Iterator for Generate {
    type Item = (StreamTag, Tuple);

    fn next(&mut self) -> Option<Self::Item> {
        if self.disorder <= 1 {
            return self.next_in_order();
        }
        if self.block_pos == self.block.len() {
            // Refill: draw the next block in order, then Fisher–Yates
            // shuffle it with the dedicated (seeded) shuffle RNG.
            self.block.clear();
            self.block_pos = 0;
            for _ in 0..self.disorder {
                match self.next_in_order() {
                    Some(item) => self.block.push(item),
                    None => break,
                }
            }
            for i in (1..self.block.len()).rev() {
                let j = self.shuffle_rng.gen_range(0..i + 1);
                self.block.swap(i, j);
            }
        }
        let item = self.block.get(self.block_pos).copied();
        self.block_pos += 1;
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining + (self.block.len() - self.block_pos.min(self.block.len()));
        (n, Some(n))
    }
}

impl ExactSizeIterator for Generate {}

/// Inverse-CDF Zipf sampler over `0..domain`.
#[derive(Debug, Clone)]
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(domain: u32, s: f64) -> Self {
        assert!(domain > 0, "zipf domain must be positive");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(domain as usize);
        let mut acc = 0.0;
        for k in 1..=domain as u64 {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn sample<R: Rng>(&mut self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => (i as u32).min(self.cdf.len() as u32 - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::new(100, KeyDist::Uniform { domain: 10 }).with_seed(7);
        let a: Vec<_> = spec.generate().collect();
        let b: Vec<_> = spec.generate().collect();
        assert_eq!(a, b);
        let c: Vec<_> = spec.with_seed(8).generate().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn alternation_is_strict() {
        let spec = WorkloadSpec::new(10, KeyDist::Uniform { domain: 4 });
        let tags: Vec<_> = spec.generate().map(|(tag, _)| tag).collect();
        for (i, tag) in tags.iter().enumerate() {
            let expect = if i % 2 == 0 { StreamTag::R } else { StreamTag::S };
            assert_eq!(*tag, expect);
        }
    }

    #[test]
    fn payloads_are_sequence_numbers() {
        let spec = WorkloadSpec::new(5, KeyDist::Uniform { domain: 4 });
        let payloads: Vec<_> = spec.generate().map(|(_, t)| t.payload()).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn uniform_keys_stay_in_domain() {
        let spec = WorkloadSpec::new(1_000, KeyDist::Uniform { domain: 16 });
        assert!(spec.generate().all(|(_, t)| t.key() < 16));
    }

    #[test]
    fn uniform_selectivity_close_to_expectation() {
        // With domain 8, a probe against a 800-tuple window expects 100
        // matches.
        let spec = WorkloadSpec::new(10_000, KeyDist::Uniform { domain: 8 });
        assert!((spec.expected_matches_per_probe(800) - 100.0).abs() < 1e-9);
        // Empirically, key frequencies are near uniform.
        let mut counts = [0u32; 8];
        for (_, t) in spec.generate() {
            counts[t.key() as usize] += 1;
        }
        for c in counts {
            assert!((1_000..1_500).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn zipf_skews_towards_small_keys() {
        let spec = WorkloadSpec::new(
            10_000,
            KeyDist::Zipf {
                domain: 100,
                s: 1.2,
            },
        );
        let mut counts = vec![0u32; 100];
        for (_, t) in spec.generate() {
            counts[t.key() as usize] += 1;
        }
        assert!(
            counts[0] > 10 * counts[50].max(1),
            "zipf head {} should dominate tail {}",
            counts[0],
            counts[50]
        );
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniformish() {
        let spec = WorkloadSpec::new(8_000, KeyDist::Zipf { domain: 8, s: 0.0 });
        let mut counts = [0u32; 8];
        for (_, t) in spec.generate() {
            counts[t.key() as usize] += 1;
        }
        for c in counts {
            assert!((800..1_200).contains(&c), "count {c} far from uniform");
        }
    }

    #[test]
    fn random_origin_mixes_streams() {
        let spec = WorkloadSpec::new(2_000, KeyDist::Uniform { domain: 4 })
            .with_random_origin();
        let r = spec
            .generate()
            .filter(|(tag, _)| *tag == StreamTag::R)
            .count();
        assert!((800..1_200).contains(&r), "origin split {r} too skewed");
    }

    #[test]
    fn bursty_arrivals_alternate_runs() {
        let spec = WorkloadSpec::new(12, KeyDist::Uniform { domain: 4 })
            .with_arrivals(ArrivalPattern::Bursty { burst: 3 });
        let tags: Vec<_> = spec.generate().map(|(tag, _)| tag).collect();
        use StreamTag::{R, S};
        assert_eq!(tags, vec![R, R, R, S, S, S, R, R, R, S, S, S]);
    }

    #[test]
    #[should_panic(expected = "burst length must be positive")]
    fn zero_burst_rejected() {
        let _ = WorkloadSpec::new(4, KeyDist::Uniform { domain: 2 })
            .with_arrivals(ArrivalPattern::Bursty { burst: 0 });
    }

    #[test]
    fn exact_size_iterator() {
        let spec = WorkloadSpec::new(17, KeyDist::Uniform { domain: 2 });
        let mut it = spec.generate();
        assert_eq!(it.len(), 17);
        it.next();
        assert_eq!(it.len(), 16);
    }

    #[test]
    fn disorder_is_a_permutation_with_bounded_displacement() {
        let ordered = WorkloadSpec::new(1_000, KeyDist::Uniform { domain: 8 });
        let disordered = ordered.clone().with_disorder(16);
        let base: Vec<_> = ordered.generate().collect();
        let got: Vec<_> = disordered.generate().collect();
        assert_eq!(got.len(), base.len());
        // Same multiset of (tag, tuple) pairs…
        let mut a = base.clone();
        let mut b = got.clone();
        a.sort_unstable_by_key(|(_, t)| t.payload());
        b.sort_unstable_by_key(|(_, t)| t.payload());
        assert_eq!(a, b);
        // …and every tuple lands within its shuffle block: displacement
        // from the in-order position is bounded by block - 1.
        let mut shuffled = 0;
        for (pos, (_, t)) in got.iter().enumerate() {
            let home = t.payload() as usize;
            assert!(
                pos.abs_diff(home) < 16,
                "tuple {home} displaced to {pos}"
            );
            if pos != home {
                shuffled += 1;
            }
        }
        assert!(shuffled > 100, "only {shuffled} of 1000 tuples moved");
    }

    #[test]
    fn disorder_is_deterministic_and_exact_size() {
        let spec = WorkloadSpec::new(100, KeyDist::Uniform { domain: 4 })
            .with_seed(9)
            .with_disorder(7);
        let a: Vec<_> = spec.generate().collect();
        let b: Vec<_> = spec.generate().collect();
        assert_eq!(a, b);
        let mut it = spec.generate();
        assert_eq!(it.size_hint(), (100, Some(100)));
        it.next();
        assert_eq!(it.size_hint(), (99, Some(99)));
    }

    #[test]
    fn disorder_of_one_is_in_order() {
        let spec = WorkloadSpec::new(50, KeyDist::Uniform { domain: 4 });
        let base: Vec<_> = spec.generate().collect();
        let same: Vec<_> = spec.clone().with_disorder(1).generate().collect();
        assert_eq!(base, same);
    }
}
