//! Property-based equivalence battery for the blocked probe kernels.
//!
//! For every predicate, both probe orientations, and adversarial shapes
//! (empty windows, lengths with `len % 8 != 0`, tile-boundary sizes,
//! band edges at 0 / `u32::MAX`), the blocked counting and emitting
//! kernels must agree exactly with the scalar sweeps
//! ([`JoinPredicate::count_matches`]) and with a per-pair reference
//! evaluated one `(probe, key)` at a time.

use proptest::prelude::*;
use streamcore::kernel::{self, KernelStats};
use streamcore::JoinPredicate;

/// Join keys biased toward collisions (small domain) but salted with
/// the extremes where band arithmetic saturates.
fn arb_key() -> impl Strategy<Value = u32> {
    prop_oneof![
        0u32..48,
        Just(0u32),
        Just(u32::MAX),
        Just(u32::MAX - 1),
        any::<u32>(),
    ]
}

fn arb_predicate() -> impl Strategy<Value = JoinPredicate> {
    prop_oneof![
        Just(JoinPredicate::Equi),
        Just(JoinPredicate::LessThan),
        Just(JoinPredicate::All),
        Just(JoinPredicate::Band { delta: 0 }),
        (0u32..16).prop_map(|delta| JoinPredicate::Band { delta }),
        Just(JoinPredicate::Band { delta: u32::MAX }),
    ]
}

/// The per-pair reference: every `(probe, key)` lane evaluated with the
/// scalar oriented predicate, collected as ordered match coordinates.
fn reference_pairs(
    pred: JoinPredicate,
    probe_is_r: bool,
    probes: &[u32],
    keys: &[u32],
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for (pi, &p) in probes.iter().enumerate() {
        for (ki, &k) in keys.iter().enumerate() {
            if pred.matches_oriented(p, probe_is_r, k) {
                pairs.push((pi, ki));
            }
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `count_block` equals both the scalar sweep and the per-pair
    /// reference, for any shape.
    #[test]
    fn count_block_matches_scalar_and_reference(
        pred in arb_predicate(),
        probe_is_r in any::<bool>(),
        probes in prop::collection::vec(arb_key(), 0..40),
        keys in prop::collection::vec(arb_key(), 0..200),
    ) {
        let mut stats = KernelStats::default();
        let got = kernel::count_block(pred, probe_is_r, &probes, &keys, &mut stats);
        let scalar: u64 = probes
            .iter()
            .map(|&p| pred.count_matches(p, probe_is_r, &keys) as u64)
            .sum();
        prop_assert_eq!(got, scalar);
        let reference = reference_pairs(pred, probe_is_r, &probes, &keys);
        prop_assert_eq!(got, reference.len() as u64);
        prop_assert_eq!(stats.match_bits, got);
        if !probes.is_empty() {
            prop_assert_eq!(stats.lanes, (probes.len() * keys.len()) as u64);
        }
    }

    /// `emit_block` yields exactly the reference coordinate multiset,
    /// ascending per probe, and agrees with `count_block`.
    #[test]
    fn emit_block_matches_reference_pairs(
        pred in arb_predicate(),
        probe_is_r in any::<bool>(),
        probes in prop::collection::vec(arb_key(), 0..24),
        keys in prop::collection::vec(arb_key(), 0..150),
    ) {
        let mut cstats = KernelStats::default();
        let count = kernel::count_block(pred, probe_is_r, &probes, &keys, &mut cstats);
        let mut estats = KernelStats::default();
        let mut got = Vec::new();
        kernel::emit_block(pred, probe_is_r, &probes, &keys, &mut estats, |pi, ki| {
            got.push((pi, ki));
        });
        prop_assert_eq!(got.len() as u64, count);
        prop_assert_eq!(estats.match_bits, cstats.match_bits);
        // Per-probe key order must be ascending (the scalar path scans
        // the window oldest-first; downstream dedup relies on it).
        for w in got.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        let mut reference = reference_pairs(pred, probe_is_r, &probes, &keys);
        got.sort_unstable();
        reference.sort_unstable();
        prop_assert_eq!(got, reference);
    }

    /// The `LessThan` orientation hoist is an exact reflection: swapping
    /// the probe side mirrors the lane value for every pair.
    #[test]
    fn less_than_orientation_mirrors(
        probes in prop::collection::vec(arb_key(), 1..20),
        keys in prop::collection::vec(arb_key(), 1..100),
    ) {
        let pred = JoinPredicate::LessThan;
        let mut s1 = KernelStats::default();
        let mut s2 = KernelStats::default();
        let as_r = kernel::count_block(pred, true, &probes, &keys, &mut s1);
        let as_s = kernel::count_block(pred, false, &probes, &keys, &mut s2);
        let strict_pairs = probes
            .iter()
            .flat_map(|&p| keys.iter().map(move |&k| (p, k)))
            .filter(|&(p, k)| p != k)
            .count() as u64;
        // p<k and k<p partition the non-equal pairs.
        prop_assert_eq!(as_r + as_s, strict_pairs);
    }
}

/// Band deltas at the saturation edges: `abs_diff` never wraps, so a
/// `u32::MAX` delta matches everything and a zero delta collapses to
/// equi — at both ends of the key space.
#[test]
fn band_edges_collapse_to_all_and_equi() {
    let probes = [0u32, 1, u32::MAX - 1, u32::MAX];
    let keys: Vec<u32> = (0..17).map(|i| if i % 2 == 0 { i } else { u32::MAX - i }).collect();
    for probe_is_r in [true, false] {
        let mut s = KernelStats::default();
        let all = kernel::count_block(
            JoinPredicate::Band { delta: u32::MAX },
            probe_is_r,
            &probes,
            &keys,
            &mut s,
        );
        assert_eq!(all, (probes.len() * keys.len()) as u64);
        let mut s = KernelStats::default();
        let equi_band = kernel::count_block(
            JoinPredicate::Band { delta: 0 },
            probe_is_r,
            &probes,
            &keys,
            &mut s,
        );
        let mut s = KernelStats::default();
        let equi =
            kernel::count_block(JoinPredicate::Equi, probe_is_r, &probes, &keys, &mut s);
        assert_eq!(equi_band, equi);
    }
}
