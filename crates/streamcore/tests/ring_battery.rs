//! Concurrency battery for the lock-free SPSC ring and batch arena
//! (`streamcore::ring`) — the transport under the SplitJoin data path.
//!
//! The unit tests in the module prove single-threaded invariants; this
//! battery proves the *two-party* protocol: a real producer thread and a
//! real consumer thread, tiny capacities that force head/tail wraparound
//! under contention, and sequence checksums that would expose any lost,
//! duplicated, or reordered element. Sizes shrink under miri
//! (`cargo miri test -p streamcore ring`), which runs the same protocol
//! through the interpreter's data-race detector.

use std::thread;

use proptest::prelude::*;
use streamcore::ring::{self, PopError, PushError};

/// Elements pushed through each stress run: one million natively, a few
/// thousand under miri (the interpreter is ~1000x slower and the
/// wraparound count, not the element count, is what exercises the
/// protocol).
const STRESS_LEN: u64 = if cfg!(miri) { 4_096 } else { 1_000_000 };

/// Drives `n` sequential elements through a ring of the given capacity
/// with a dedicated producer thread, while the calling thread consumes.
/// Returns (count, sum, order_ok) as observed by the consumer.
fn stress_spsc(capacity: usize, n: u64) -> (u64, u64, bool) {
    let (mut tx, mut rx) = ring::spsc::<u64>(capacity);
    let producer = thread::spawn(move || {
        let mut next = 0u64;
        while next < n {
            match tx.try_push(next) {
                Ok(()) => next += 1,
                Err(PushError::Full(_)) => thread::yield_now(),
                Err(PushError::Disconnected(_)) => panic!("consumer vanished"),
            }
        }
    });
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut expected = 0u64;
    let mut in_order = true;
    loop {
        match rx.try_pop() {
            Ok(v) => {
                in_order &= v == expected;
                expected += 1;
                count += 1;
                sum = sum.wrapping_add(v);
            }
            Err(PopError::Empty) => thread::yield_now(),
            Err(PopError::Disconnected) => break,
        }
    }
    producer.join().unwrap();
    (count, sum, in_order)
}

#[test]
fn two_thread_stress_over_a_wrapping_ring() {
    // Capacity 7 (not a power of two) forces index arithmetic across
    // ~STRESS_LEN/7 wraparounds while both sides race.
    let n = STRESS_LEN;
    let (count, sum, in_order) = stress_spsc(7, n);
    assert_eq!(count, n, "elements lost or duplicated");
    assert_eq!(sum, n * (n - 1) / 2, "checksum mismatch: corrupt element");
    assert!(in_order, "elements reordered");
}

#[test]
fn capacity_one_ring_is_a_rendezvous_slot() {
    // Every element wraps: the tightest possible full/empty interleaving.
    let n = STRESS_LEN / 10;
    let (count, sum, in_order) = stress_spsc(1, n);
    assert_eq!(count, n);
    assert_eq!(sum, n * (n - 1) / 2);
    assert!(in_order);
}

#[test]
fn batch_claims_straddle_the_wrap_under_contention() {
    // Producer uses push_batch with sizes that never divide the
    // capacity, so claims regularly straddle the wrap point; consumer
    // uses pop_batch. The sequence must still arrive exactly once, in
    // order.
    let n = STRESS_LEN / 2;
    let (mut tx, mut rx) = ring::spsc::<u64>(13);
    let producer = thread::spawn(move || {
        let mut next = 0u64;
        let mut batch_len = 1usize;
        while next < n {
            let end = (next + batch_len as u64).min(n);
            let batch: Vec<u64> = (next..end).collect();
            let mut sent = 0usize;
            while sent < batch.len() {
                match tx.push_batch(&batch[sent..]) {
                    Ok(0) => thread::yield_now(),
                    Ok(k) => sent += k,
                    Err(_) => panic!("consumer vanished"),
                }
            }
            next = end;
            batch_len = batch_len % 9 + 1; // 1,2,...,9,1,...
        }
    });
    let mut got: Vec<u64> = Vec::new();
    let mut buf: Vec<u64> = Vec::new();
    loop {
        match rx.pop_batch(&mut buf, 5) {
            Ok(0) => thread::yield_now(),
            Ok(_) => got.append(&mut buf),
            Err(PopError::Disconnected) => break,
            Err(PopError::Empty) => unreachable!("pop_batch reports empty as Ok(0)"),
        }
    }
    producer.join().unwrap();
    assert_eq!(got.len() as u64, n);
    assert!(got.iter().copied().eq(0..n), "lost, duplicated, or reordered");
}

#[test]
fn non_copy_elements_survive_the_crossing() {
    // Boxed payloads: a double-drop, a skipped drop, or an uninitialized
    // read would crash or leak loudly under miri.
    let n: u64 = if cfg!(miri) { 512 } else { 100_000 };
    let (mut tx, mut rx) = ring::spsc::<Box<u64>>(5);
    let producer = thread::spawn(move || {
        for i in 0..n {
            let mut item = Box::new(i);
            loop {
                match tx.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        thread::yield_now();
                    }
                    Err(PushError::Disconnected(_)) => panic!("consumer vanished"),
                }
            }
        }
    });
    let mut sum = 0u64;
    let mut count = 0u64;
    loop {
        match rx.try_pop() {
            Ok(b) => {
                sum = sum.wrapping_add(*b);
                count += 1;
            }
            Err(PopError::Empty) => thread::yield_now(),
            Err(PopError::Disconnected) => break,
        }
    }
    producer.join().unwrap();
    assert_eq!(count, n);
    assert_eq!(sum, n * (n - 1) / 2);
}

#[test]
fn consumer_drop_mid_stream_disconnects_the_producer() {
    let (mut tx, rx) = ring::spsc::<u64>(4);
    let consumer = thread::spawn(move || {
        let mut rx = rx;
        // Take a few, then walk away.
        let mut taken = 0;
        while taken < 8 {
            if rx.try_pop().is_ok() {
                taken += 1;
            } else {
                thread::yield_now();
            }
        }
    });
    let mut pushed = 0u64;
    let disconnected = loop {
        match tx.try_push(pushed) {
            Ok(()) => pushed += 1,
            Err(PushError::Full(_)) => thread::yield_now(),
            Err(PushError::Disconnected(_)) => break true,
        }
    };
    consumer.join().unwrap();
    assert!(disconnected);
    assert!(pushed >= 8, "consumer took 8 before leaving");
}

#[test]
fn arena_watermark_protocol_under_concurrent_readers() {
    // One writer republishing into a small arena; R reader threads each
    // verify every batch's content in place and release it. The
    // watermark (min over released sequences) is what lets the writer
    // reuse slots — any premature reuse would corrupt a checksum.
    const READERS: usize = 3;
    let rounds: u64 = if cfg!(miri) { 64 } else { 20_000 };
    let (mut writer, readers) = ring::batch_arena::<u64>(4, READERS);
    let mut handles = Vec::new();
    for mut reader in readers {
        handles.push(thread::spawn(move || {
            for seq in 1..=rounds {
                // Wait for the writer to publish `seq`, then verify.
                loop {
                    if writer_published(&reader, seq) {
                        break;
                    }
                    thread::yield_now();
                }
                let batch = reader.read(seq);
                assert_eq!(batch.len(), (seq % 5 + 1) as usize);
                assert!(batch.iter().all(|&v| v == seq * 1_000_003));
                reader.release(seq);
            }
        }));
    }
    for seq in 1..=rounds {
        let batch: Vec<u64> = vec![seq * 1_000_003; (seq % 5 + 1) as usize];
        loop {
            match writer.try_publish(&batch) {
                Ok(got) => {
                    assert_eq!(got, seq);
                    break;
                }
                Err(ring::ArenaFull) => thread::yield_now(),
            }
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(writer.min_released(), rounds);
}

/// A reader knows `seq` is published once its own un-released cursor is
/// behind it and the writer has moved past it; the arena's `published`
/// tag check inside `read` does the authoritative verification. Here we
/// conservatively gate on the released cursor to sequence the loop.
fn writer_published<T: Send + Sync>(reader: &ring::ArenaReader<T>, seq: u64) -> bool {
    reader.released() >= seq - 1 && reader.peek_published(seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wrap-range decomposition covers exactly [pos, pos+len) mod
    /// cap: the two spans are disjoint, in-bounds, sized to `len`, and
    /// contiguous from `pos % cap`.
    #[test]
    fn wrap_ranges_partition_the_claim(
        pos in any::<u64>(),
        len in 0usize..512,
        cap in 1usize..512,
    ) {
        let len = len.min(cap); // a claim never exceeds capacity
        let [(a_start, a_len), (b_start, b_len)] = ring::wrap_ranges(pos, len, cap);
        prop_assert_eq!(a_len + b_len, len);
        prop_assert_eq!(a_start, (pos % cap as u64) as usize);
        prop_assert!(a_start + a_len <= cap, "first span overruns the buffer");
        if b_len > 0 {
            prop_assert_eq!(b_start, 0, "second span must restart at the base");
            prop_assert_eq!(a_start + a_len, cap, "wrap only after hitting the end");
            prop_assert!(b_len <= a_start, "wrapped span may not catch the first");
        }
    }

    /// Pushing then popping any sequence through any capacity is the
    /// identity, batch boundaries notwithstanding.
    #[test]
    fn single_thread_round_trip_is_identity(
        cap in 1usize..32,
        items in proptest::collection::vec(any::<u32>(), 0..200),
        chunk in 1usize..17,
    ) {
        let (mut tx, mut rx) = ring::spsc::<u32>(cap);
        let mut got = Vec::new();
        let mut buf = Vec::new();
        for batch in items.chunks(chunk) {
            let mut sent = 0usize;
            while sent < batch.len() {
                match tx.push_batch(&batch[sent..]) {
                    Ok(0) => {
                        // Full: drain everything available and retry.
                        let _ = rx.pop_batch(&mut buf, usize::MAX);
                        got.append(&mut buf);
                    }
                    Ok(k) => sent += k,
                    Err(_) => unreachable!("both halves live"),
                }
            }
        }
        drop(tx);
        while rx.pop_batch(&mut buf, usize::MAX).is_ok() {
            got.append(&mut buf);
        }
        prop_assert_eq!(got, items);
    }
}
