//! Property-based tests of the stream substrate.

use proptest::prelude::*;
use streamcore::workload::{ArrivalPattern, KeyDist, WorkloadSpec};
use streamcore::{Field, JoinPredicate, Record, Schema, SlidingWindow, StreamTag, Tuple};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tuple key/payload packing round-trips through the wire format.
    #[test]
    fn tuple_wire_round_trip(key in any::<u32>(), payload in any::<u32>()) {
        let t = Tuple::new(key, payload);
        prop_assert_eq!(t.key(), key);
        prop_assert_eq!(t.payload(), payload);
        prop_assert_eq!(Tuple::from_raw(t.raw()), t);
    }

    /// Band predicates are symmetric; equi implies band for any delta.
    #[test]
    fn predicate_relationships(a in any::<u32>(), b in any::<u32>(), delta in any::<u32>()) {
        let (r, s) = (Tuple::new(a, 0), Tuple::new(b, 1));
        let band = JoinPredicate::Band { delta };
        prop_assert_eq!(band.matches(r, s), band.matches(Tuple::new(b, 0), Tuple::new(a, 1)));
        if JoinPredicate::Equi.matches(r, s) {
            prop_assert!(band.matches(r, s));
        }
        prop_assert!(JoinPredicate::All.matches(r, s));
    }

    /// Sliding windows never exceed capacity and always contain a suffix
    /// of the inserted sequence.
    #[test]
    fn window_is_a_suffix(cap in 1usize..32, n in 0usize..200) {
        let mut w = SlidingWindow::new(cap);
        for i in 0..n {
            w.insert(i);
        }
        prop_assert!(w.len() <= cap);
        let kept: Vec<usize> = w.iter().copied().collect();
        let expect: Vec<usize> = (n.saturating_sub(cap)..n).collect();
        prop_assert_eq!(kept, expect);
    }

    /// Every arrival pattern yields exactly the requested tuple count with
    /// strictly increasing payloads.
    #[test]
    fn arrival_patterns_conserve_tuples(n in 0usize..300, burst in 1usize..40, seed in any::<u64>()) {
        for arrivals in [
            ArrivalPattern::Alternating,
            ArrivalPattern::RandomOrigin,
            ArrivalPattern::Bursty { burst },
        ] {
            let spec = WorkloadSpec::new(n, KeyDist::Uniform { domain: 16 })
                .with_seed(seed)
                .with_arrivals(arrivals);
            let tuples: Vec<(StreamTag, Tuple)> = spec.generate().collect();
            prop_assert_eq!(tuples.len(), n);
            for (i, (_, t)) in tuples.iter().enumerate() {
                prop_assert_eq!(t.payload() as usize, i);
            }
        }
    }

    /// Schema round trip: any record the schema validates fits each
    /// field's width.
    #[test]
    fn schema_check_is_width_accurate(widths in prop::collection::vec(1u8..64, 1..8), raw in prop::collection::vec(any::<u64>(), 1..8)) {
        let fields: Vec<Field> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| Field::new(format!("f{i}"), w).unwrap())
            .collect();
        let schema = Schema::new(fields).unwrap();
        if raw.len() != schema.arity() {
            prop_assert!(schema.check(&Record::new(raw)).is_err());
        } else {
            let clamped: Vec<u64> = raw
                .iter()
                .zip(&widths)
                .map(|(&v, &w)| v & ((1u64 << w) - 1))
                .collect();
            prop_assert!(schema.check(&Record::new(clamped)).is_ok());
        }
    }
}
