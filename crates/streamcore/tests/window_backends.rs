//! Randomized cross-checks of the flat window backends against the
//! `VecDeque` reference backend.
//!
//! `FlatWindow` and `HashIndexWindow` must implement exactly the
//! count-based sliding semantics of `SlidingWindow<Tuple>` — same
//! contents, same expiry order, same probe results — on arbitrary
//! interleavings of inserts, expiries (inserting past capacity), and
//! probes. These properties are what lets the software joins swap their
//! storage backend without moving any correctness contract.

use proptest::prelude::*;
use streamcore::{FlatWindow, HashIndexWindow, JoinPredicate, SlidingWindow, Tuple};

/// The reference probe: scan the whole reference window, oldest first.
fn reference_probe(w: &SlidingWindow<Tuple>, pred: JoinPredicate, probe: Tuple) -> Vec<Tuple> {
    w.iter()
        .copied()
        .filter(|&stored| pred.matches(probe, stored))
        .collect()
}

/// Scan a `FlatWindow` through its struct-of-arrays segments, the way the
/// nested-loop join core does: keys first, payloads only on a match.
fn flat_probe(w: &FlatWindow, pred: JoinPredicate, probe: Tuple) -> Vec<Tuple> {
    let mut hits = Vec::new();
    for (keys, payloads) in w.segments() {
        for (i, &key) in keys.iter().enumerate() {
            if pred.matches_keys(probe.key(), key) {
                hits.push(Tuple::new(key, payloads[i]));
            }
        }
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NestedLoop backend: after every insert in a randomized sequence,
    /// the flat window holds exactly the reference contents in the same
    /// order, reports the same expiry, and scans to the same probe hits.
    #[test]
    fn flat_window_matches_reference(
        cap in 1usize..48,
        keys in prop::collection::vec(0u32..24, 0..220),
    ) {
        let mut flat = FlatWindow::new(cap);
        let mut reference: SlidingWindow<Tuple> = SlidingWindow::new(cap);
        for (i, &key) in keys.iter().enumerate() {
            let t = Tuple::new(key, i as u32);
            // Probe before insert (Kang's ordering), for a couple of
            // predicates spanning key-equality and range shapes.
            for pred in [JoinPredicate::Equi, JoinPredicate::Band { delta: 2 }] {
                prop_assert_eq!(
                    flat_probe(&flat, pred, t),
                    reference_probe(&reference, pred, t),
                    "probe diverged at step {} (cap {})", i, cap
                );
            }
            let expired_flat = flat.insert(t);
            let expired_ref = reference.insert(t);
            prop_assert_eq!(expired_flat, expired_ref, "expiry diverged at step {}", i);
            prop_assert_eq!(flat.len(), reference.len());
            let got: Vec<Tuple> = flat.iter().collect();
            let want: Vec<Tuple> = reference.iter().copied().collect();
            prop_assert_eq!(got, want, "contents diverged at step {}", i);
        }
    }

    /// Hash backend: same cross-check, with `probe()` compared against
    /// the reference equi-scan (including hit order: oldest first).
    #[test]
    fn hash_index_window_matches_reference(
        cap in 1usize..48,
        keys in prop::collection::vec(0u32..16, 0..260),
    ) {
        let mut hash = HashIndexWindow::new(cap);
        let mut reference: SlidingWindow<Tuple> = SlidingWindow::new(cap);
        for (i, &key) in keys.iter().enumerate() {
            let t = Tuple::new(key, i as u32);
            let got: Vec<Tuple> = hash.probe(t.key()).collect();
            let want = reference_probe(&reference, JoinPredicate::Equi, t);
            prop_assert_eq!(got, want, "probe diverged at step {} (cap {})", i, cap);
            // Probing keys absent from the window finds nothing.
            prop_assert_eq!(hash.probe(1 << 30).count(), 0);
            let expired_hash = hash.insert(t);
            let expired_ref = reference.insert(t);
            prop_assert_eq!(expired_hash, expired_ref, "expiry diverged at step {}", i);
            prop_assert_eq!(hash.len(), reference.len());
            let contents: Vec<Tuple> = hash.iter().collect();
            let want_contents: Vec<Tuple> = reference.iter().copied().collect();
            prop_assert_eq!(contents, want_contents, "contents diverged at step {}", i);
        }
    }

    /// The hash index stays exact across many wrap-arounds of a tiny
    /// ring, where tombstone pressure and chain relinking are heaviest.
    #[test]
    fn hash_index_survives_heavy_churn(
        cap in 1usize..6,
        keys in prop::collection::vec(0u32..4, 100..400),
    ) {
        let mut hash = HashIndexWindow::new(cap);
        let mut reference: SlidingWindow<Tuple> = SlidingWindow::new(cap);
        for (i, &key) in keys.iter().enumerate() {
            let t = Tuple::new(key, i as u32);
            hash.insert(t);
            reference.insert(t);
        }
        for key in 0u32..4 {
            let got: Vec<Tuple> = hash.probe(key).collect();
            let want: Vec<Tuple> = reference
                .iter()
                .copied()
                .filter(|s| s.key() == key)
                .collect();
            prop_assert_eq!(got, want, "churned probe diverged for key {}", key);
        }
    }
}

#[test]
fn clear_resets_both_backends() {
    let mut flat = FlatWindow::new(4);
    let mut hash = HashIndexWindow::new(4);
    for i in 0..9u32 {
        flat.insert(Tuple::new(i % 3, i));
        hash.insert(Tuple::new(i % 3, i));
    }
    flat.clear();
    hash.clear();
    assert!(flat.is_empty());
    assert!(hash.is_empty());
    assert_eq!(hash.probe(0).count(), 0);
    flat.insert(Tuple::new(9, 9));
    hash.insert(Tuple::new(9, 9));
    assert_eq!(flat.iter().collect::<Vec<_>>(), vec![Tuple::new(9, 9)]);
    assert_eq!(hash.probe(9).collect::<Vec<_>>(), vec![Tuple::new(9, 9)]);
}
