//! The active data path (paper Section II): pushing computation toward
//! the data source. The same alert filter is placed at each stage of a
//! producer→switch→storage→memory→consumer path in turn, and the measured
//! per-link traffic shows why co-placement on the data path pays.
//!
//! ```sh
//! cargo run --example active_datapath
//! ```

use accel_landscape::fqp::datapath::canonical_path;
use accel_landscape::fqp::opblock::BlockProgram;
use accel_landscape::fqp::plan::BoundCondition;
use accel_landscape::fqp::query::CmpOp;
use accel_landscape::streamcore::Record;

fn main() {
    let filter = BlockProgram::Select {
        conditions: vec![BoundCondition {
            field: 0,
            op: CmpOp::Gt,
            value: 90,
        }],
    };
    let events = 10_000u64;

    println!("alert filter (value > 90) placed at each path stage in turn;");
    println!("{events} sensor events pushed through a 5-stage path\n");
    println!(
        "{:<22} {:>14} {:>12} {:>10}",
        "filter placement", "link traffic", "total hops", "delivered"
    );

    for stage in 0..5usize {
        let mut path = canonical_path();
        let (name, kind, _) = path.stages()[stage].clone();
        path.activate(stage, filter.clone()).expect("stage exists");
        for i in 0..events {
            path.push(Record::new(vec![i % 100]));
        }
        println!(
            "{:<22} {:>14} {:>12} {:>10}",
            format!("{name} ({kind})"),
            format!("{:?}", path.link_traffic()),
            path.total_traffic(),
            path.delivered().len()
        );
    }

    println!(
        "\nevery placement delivers the same results; at this selectivity the \
         source-side filter moves ~11x less data than the consumer-side one"
    );
    println!("(the co-placement system model of the paper's Section II)");
}
