//! Dynamic re-query: the property that motivates FQP (paper Fig. 6).
//! Queries are added, modified, and removed on a *live* fabric — no
//! synthesis, no halt, no dropped records.
//!
//! ```sh
//! cargo run --example dynamic_requery
//! ```

use std::time::Instant;

use accel_landscape::fqp::assign::{assign, remove};
use accel_landscape::fqp::fabric::Fabric;
use accel_landscape::fqp::opblock::BlockProgram;
use accel_landscape::fqp::plan::{bind, BoundCondition, Catalog};
use accel_landscape::fqp::query::{CmpOp, Query};
use accel_landscape::fqp::reconfig::{measure_fqp_reconfiguration, DeploymentPath};
use accel_landscape::streamcore::{Field, Record, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.register(
        "readings",
        Schema::new(vec![Field::new("sensor", 32)?, Field::new("value", 32)?])?,
    );
    let mut fabric = Fabric::new(8);

    // Deploy an alerting query.
    let plan = bind(
        &Query::parse("SELECT sensor FROM readings WHERE value > 90")?,
        &catalog,
    )?;
    let t0 = Instant::now();
    let handle = assign(&plan, &mut fabric)?;
    println!("deployed alert query in {:?}", t0.elapsed());

    let push_batch = |fabric: &mut Fabric, base: u64| {
        for i in 0..500u64 {
            fabric
                .push("readings", Record::new(vec![i % 16, (base + i) % 120]))
                .expect("stream bound");
        }
    };
    push_batch(&mut fabric, 0);
    println!(
        "alerts at threshold 90: {}",
        fabric.take_sink(handle.sink)?.len()
    );

    // Micro change: tighten the threshold on the LIVE block.
    let d = measure_fqp_reconfiguration(
        &mut fabric,
        handle.blocks[0],
        BlockProgram::Select {
            conditions: vec![BoundCondition {
                field: 1,
                op: CmpOp::Gt,
                value: 110,
            }],
        },
    )?;
    println!("\nreprogrammed threshold 90 -> 110 in {d:?} (no halt)");
    push_batch(&mut fabric, 0);
    println!(
        "alerts at threshold 110: {}",
        fabric.take_sink(handle.sink)?.len()
    );

    // Remove the query entirely; its blocks return to the pool.
    remove(&handle, &mut fabric)?;
    println!("\nquery removed; idle blocks: {}", fabric.idle_blocks());

    // Contrast with the synthesis-based deployment paths of Fig. 6.
    println!("\ndeployment-path comparison (modeled, Fig. 6):");
    for (name, path) in [
        ("hardware redesign", DeploymentPath::HardwareRedesign),
        ("re-synthesis     ", DeploymentPath::ReSynthesis),
        ("FQP remap        ", DeploymentPath::FqpRemap),
    ] {
        println!(
            "  {name}: {:?} .. {:?}  halt: {}",
            path.min_total(),
            path.max_total(),
            path.requires_halt()
        );
    }
    Ok(())
}
