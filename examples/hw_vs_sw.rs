//! Hardware vs software: the same windowed equi-join measured on the
//! cycle-accurate uni-flow FPGA design (Virtex-7, 300 MHz) and on the
//! software SplitJoin of this host — the comparison behind the paper's
//! "around 15x acceleration" observation (Figs. 14c vs 14d).
//!
//! ```sh
//! cargo run --release --example hw_vs_sw
//! ```

use accel_landscape::hwsim::devices;
use accel_landscape::joinhw::harness::{
    build, prefill_steady_state, run_throughput, uniflow_throughput_model,
};
use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};
use accel_landscape::joinsw::harness::{
    host_parallelism, measure_throughput, modeled_throughput,
};
use accel_landscape::joinsw::splitjoin::SplitJoinConfig;

fn main() {
    let window = 1 << 14; // keep the demo snappy; the paper uses 2^18
    let hw_cores = 512u32;
    let sw_cores = 28usize;

    // Hardware: 512 uni-flow cores at 300 MHz, cycle-accurate.
    let params = DesignParams::new(FlowModel::UniFlow, hw_cores, window)
        .with_network(NetworkKind::Scalable);
    let report = params
        .synthesize_at(&devices::XC7VX485T, 300.0)
        .expect("fits the VC707");
    let mut join = build(&params);
    prefill_steady_state(join.as_mut(), window);
    let run = run_throughput(join.as_mut(), 256, 1 << 20);
    let hw = run.at_clock(300.0).per_second();
    println!("hardware ({hw_cores} cores @ {}):", report.clock);
    println!("  measured {:.3} M tuples/s", hw / 1e6);
    println!(
        "  analytic {:.3} M tuples/s",
        uniflow_throughput_model(window, hw_cores, 300.0) / 1e6
    );
    println!("  {}", report.power);

    // Software: SplitJoin on this host.
    let single = measure_throughput(SplitJoinConfig::new(1, window), 2_048, 1 << 20)
        .expect("software run failed");
    let sw = if host_parallelism() >= sw_cores {
        measure_throughput(SplitJoinConfig::new(sw_cores, window), 16_384, 1 << 20)
            .expect("software run failed")
            .per_second()
    } else {
        println!(
            "\n(host has {} hardware thread(s); modeling {sw_cores}-core software rate)",
            host_parallelism()
        );
        modeled_throughput(single, sw_cores)
    };
    println!("software ({sw_cores} cores): {:.4} M tuples/s", sw / 1e6);

    println!("\nhardware / software speedup: {:.1}x", hw / sw);
    println!("(paper reports ~15x at window 2^18: 512 HW cores vs 28 SW cores)");
}
