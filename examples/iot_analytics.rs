//! IoT real-time analytics — the paper's motivating scenario: skewed
//! sensor feeds joined against a second stream in real time, on the
//! multithreaded software SplitJoin.
//!
//! Two streams: R carries temperature readings (keyed by sensor id,
//! Zipf-skewed: a few sensors dominate), S carries threshold updates from
//! the control plane. The equi-join pairs every reading with the current
//! window of threshold updates for the same sensor.
//!
//! ```sh
//! cargo run --release --example iot_analytics
//! ```

use std::time::Instant;

use accel_landscape::joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
use accel_landscape::streamcore::workload::{KeyDist, WorkloadSpec};
use accel_landscape::streamcore::StreamTag;

fn main() {
    let sensors = 4_096;
    let window = 1 << 12;
    let cores = 4;
    let events = 40_000;

    println!("IoT scenario: {sensors} sensors, window {window}, {cores} join cores");

    let workload = WorkloadSpec::new(
        events,
        KeyDist::Zipf {
            domain: sensors,
            s: 1.1,
        },
    )
    .with_seed(7);

    let join = SplitJoin::spawn(SplitJoinConfig::new(cores, window));
    let start = Instant::now();
    let batch: Vec<_> = workload.generate().collect();
    for chunk in batch.chunks(512) {
        join.process_batch(chunk).expect("join died");
    }
    join.flush().expect("join died");
    let elapsed = start.elapsed();
    let outcome = join.shutdown().expect("join died");

    let readings = batch
        .iter()
        .filter(|(tag, _)| *tag == StreamTag::R)
        .count();
    println!(
        "processed {events} events ({readings} readings) in {elapsed:?} \
         -> {:.3} M events/s",
        events as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "matched reading/threshold pairs: {}",
        outcome.result_count
    );

    // Skew: the hottest sensor should dominate the match count.
    let mut per_sensor = std::collections::HashMap::new();
    for m in &outcome.results {
        *per_sensor.entry(m.r.key()).or_insert(0u64) += 1;
    }
    let mut hot: Vec<_> = per_sensor.into_iter().collect();
    hot.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("hottest sensors by matched pairs:");
    for (sensor, n) in hot.into_iter().take(5) {
        println!("  sensor {sensor:>5}: {n} pairs");
    }
}
