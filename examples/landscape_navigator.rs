//! Navigating the acceleration landscape: the paper's open problems as
//! working code. Given a query workload, this example
//!
//! 1. sizes an FQP fabric for it and checks the estimate against both of
//!    the paper's FPGAs (open problem #3 — initial topology),
//! 2. deploys the queries with inter-query sharing (open problem #4 —
//!    multi-query optimization),
//! 3. re-optimizes a live selection from collected statistics (open
//!    problem #2), and
//! 4. places a heavy query across heterogeneous sites (open problem #5),
//!    classifying the result in the Section II taxonomy.
//!
//! ```sh
//! cargo run --example landscape_navigator
//! ```

use accel_landscape::fqp::landscape;
use accel_landscape::fqp::manager::QueryManager;
use accel_landscape::fqp::placement::{default_sites, place, Objective};
use accel_landscape::fqp::plan::{bind, Catalog, Plan};
use accel_landscape::fqp::provision::provision;
use accel_landscape::fqp::query::Query;
use accel_landscape::hwsim::devices;
use accel_landscape::streamcore::{Field, Record, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.register(
        "customers",
        Schema::new(vec![
            Field::new("product_id", 32)?,
            Field::new("age", 8)?,
            Field::new("gender", 1)?,
        ])?,
    );
    catalog.register(
        "products",
        Schema::new(vec![Field::new("product_id", 32)?, Field::new("price", 32)?])?,
    );

    let texts = [
        "SELECT * FROM customers WHERE age > 25 JOIN products ON product_id WINDOW 1536",
        "SELECT * FROM customers WHERE age > 25 JOIN products ON product_id WINDOW 2048",
        "SELECT COUNT(*) FROM customers WHERE age > 25 WINDOW 4096",
    ];
    let plans: Vec<Plan> = texts
        .iter()
        .map(|t| bind(&Query::parse(t).expect("valid query"), &catalog).expect("binds"))
        .collect();

    // 1. Provision.
    println!("-- provisioning ({} queries) --", plans.len());
    for device in [&devices::XC5VLX50T, &devices::XC7VX485T] {
        match provision(&plans, 64, device) {
            Ok(spec) => println!(
                "{}: {} blocks shared ({} unshared, {} saved), LUT {:.1}% BRAM {:.1}%",
                device,
                spec.blocks_shared,
                spec.blocks_unshared,
                spec.blocks_saved(),
                spec.utilization.lut_percent(),
                spec.utilization.bram_percent()
            ),
            Err(e) => println!("{device}: does not fit ({e})"),
        }
    }

    // 2. Deploy with sharing.
    let mut mgr = QueryManager::new(8);
    let ids: Vec<_> = plans
        .iter()
        .map(|p| mgr.deploy(p).expect("fits the pool"))
        .collect();
    let report = mgr.sharing_report();
    println!(
        "\n-- deployed: {} queries on {} blocks ({} saved by sharing) --",
        report.queries,
        report.blocks_in_use,
        report.blocks_saved()
    );
    mgr.push("products", Record::new(vec![7, 100]))?;
    for age in [20u64, 30, 40, 52] {
        mgr.push("customers", Record::new(vec![7, age, age % 2]))?;
    }
    for (id, text) in ids.iter().zip(texts) {
        println!("  {} -> {} results   [{text}]", id, mgr.take_results(*id)?.len());
    }

    // 3. Statistics-driven re-optimization on a fresh fabric.
    println!("\n-- statistics-driven select re-optimization --");
    use accel_landscape::fqp::fabric::{Fabric, Target};
    use accel_landscape::fqp::opblock::{BlockId, BlockProgram, Port};
    use accel_landscape::fqp::plan::BoundCondition;
    use accel_landscape::fqp::query::CmpOp;
    let mut fabric = Fabric::new(1);
    let sink = fabric.add_sink();
    fabric.reprogram(
        BlockId(0),
        BlockProgram::Select {
            conditions: vec![
                BoundCondition { field: 1, op: CmpOp::Ge, value: 0 },   // always true
                BoundCondition { field: 1, op: CmpOp::Gt, value: 95 }, // selective
            ],
        },
    )?;
    fabric.bind_stream("s", BlockId(0), Port::Left);
    fabric.connect(BlockId(0), Target::Sink(sink))?;
    for v in 0..1_000u64 {
        fabric.push("s", Record::new(vec![0, v % 100]))?;
    }
    let evals: u64 = fabric.block(BlockId(0))?.condition_stats().iter().map(|s| s.0).sum();
    println!("  before: {evals} condition evaluations / 1000 records");
    fabric.reoptimize_select(BlockId(0))?;
    for v in 0..1_000u64 {
        fabric.push("s", Record::new(vec![0, v % 100]))?;
    }
    let evals: u64 = fabric.block(BlockId(0))?.condition_stats().iter().map(|s| s.0).sum();
    println!("  after : {evals} condition evaluations / 1000 records");

    // 4. Heterogeneous placement.
    println!("\n-- heterogeneous placement of the window-1536 join --");
    let sites = default_sites();
    for objective in [Objective::MaxThroughput, Objective::MinLatency] {
        let p = place(&plans[0], &sites, objective);
        let names: Vec<&str> = p.sites.iter().map(|&s| sites[s].name.as_str()).collect();
        println!(
            "  {objective:?}: {names:?} -> {:.2} Mt/s, {:.1} us  ({:?} model)",
            p.throughput_tps / 1e6,
            p.latency_us,
            p.system_model(&sites)
        );
    }

    // The taxonomy itself.
    println!("\n-- Section II landscape catalog --");
    for s in landscape::catalog() {
        println!("  {s}");
    }
    Ok(())
}
