//! Quickstart: from a declarative query to a running stream join, twice —
//! on the FQP software fabric and as a synthesized hardware design.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use accel_landscape::fqp::assign::assign;
use accel_landscape::fqp::fabric::Fabric;
use accel_landscape::fqp::plan::{bind, Catalog};
use accel_landscape::fqp::query::Query;
use accel_landscape::hwsim::devices;
use accel_landscape::joinhw::{DesignParams, FlowModel};
use accel_landscape::streamcore::{Field, Record, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the streams.
    let mut catalog = Catalog::new();
    catalog.register(
        "customers",
        Schema::new(vec![
            Field::new("product_id", 32)?,
            Field::new("age", 8)?,
            Field::new("gender", 1)?,
        ])?,
    );
    catalog.register(
        "products",
        Schema::new(vec![Field::new("product_id", 32)?, Field::new("price", 32)?])?,
    );

    // 2. Parse and bind a continuous query (the paper's Fig. 7 example).
    let query = Query::parse(
        "SELECT age, price FROM customers WHERE age > 25 \
         JOIN products ON product_id WINDOW 1536",
    )?;
    let plan = bind(&query, &catalog)?;
    println!("query : {query}");
    println!("plan  : {} operator block(s)\n", plan.block_count());

    // 3. Deploy onto an FQP fabric and stream a few records.
    let mut fabric = Fabric::new(8);
    let handle = assign(&plan, &mut fabric)?;
    fabric.push("products", Record::new(vec![7, 249]))?;
    fabric.push("products", Record::new(vec![9, 999]))?;
    fabric.push("customers", Record::new(vec![7, 34, 1]))?; // matches
    fabric.push("customers", Record::new(vec![7, 19, 0]))?; // too young
    fabric.push("customers", Record::new(vec![9, 40, 0]))?; // matches
    for rec in fabric.take_sink(handle.sink)? {
        println!("result: age={} price={}", rec.values()[0], rec.values()[1]);
    }

    // 4. The same join as hardware: synthesize a 16-core uni-flow design
    //    for the Virtex-5 and read the report.
    let params = DesignParams::new(FlowModel::UniFlow, 16, 1536);
    let report = params.synthesize(&devices::XC5VLX50T)?;
    println!("\n{report}");
    Ok(())
}
