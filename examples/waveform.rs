//! Waveform capture: run the cycle-accurate uni-flow join and dump a VCD
//! trace viewable in GTKWave — per-core busy signals, input acceptance,
//! and result arrivals.
//!
//! ```sh
//! cargo run --release --example waveform
//! # then: gtkwave target/uniflow.vcd
//! ```

use accel_landscape::hwsim::{Simulator, TraceRecorder};
use accel_landscape::joinhw::uniflow::{ProcessingState, UniFlowJoin};
use accel_landscape::joinhw::{DesignParams, FlowModel, JoinOperator};
use accel_landscape::streamcore::workload::{KeyDist, WorkloadSpec};

fn main() -> std::io::Result<()> {
    let cores = 4u32;
    let params = DesignParams::new(FlowModel::UniFlow, cores, 64);
    let mut join = UniFlowJoin::new(&params);
    join.program(JoinOperator::equi(cores));

    let mut trace = TraceRecorder::new();
    let accepted = trace.signal("input_accepted", 1);
    let results = trace.signal("results_total", 16);
    let busy: Vec<_> = (0..cores)
        .map(|i| trace.signal(format!("core{i}_busy"), 1))
        .collect();

    let inputs: Vec<_> = WorkloadSpec::new(64, KeyDist::Uniform { domain: 8 })
        .generate()
        .collect();
    let mut sim = Simulator::new();
    let mut idx = 0;
    let mut total_results = 0u64;
    let mut last_accepted = 0;
    while idx < inputs.len() || !join.quiescent() {
        if idx < inputs.len() {
            let (tag, tuple) = inputs[idx];
            if join.offer(tag, tuple) {
                idx += 1;
            }
        }
        sim.step(&mut join);
        total_results += join.drain_results().len() as u64;

        trace.set_cycle(sim.cycle());
        trace.sample(accepted, u64::from(join.accepted_tuples() != last_accepted));
        last_accepted = join.accepted_tuples();
        trace.sample(results, total_results);
        for (i, &sig) in busy.iter().enumerate() {
            let is_busy =
                join.core_mut(i).processing_state() == ProcessingState::JoinProcessing;
            trace.sample(sig, u64::from(is_busy));
        }
    }

    let path = std::path::Path::new("target/uniflow.vcd");
    std::fs::create_dir_all("target")?;
    let file = std::fs::File::create(path)?;
    trace.write_vcd(file)?;
    println!(
        "traced {} cycles, {} value changes, {} results -> {}",
        sim.cycle(),
        trace.change_count(),
        total_results,
        path.display()
    );
    Ok(())
}
