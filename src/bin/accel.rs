//! `accel` — command-line front end to the acceleration-landscape
//! reproduction.
//!
//! ```text
//! accel landscape
//! accel synthesize --flow uni --cores 16 --window 8192 --device v5
//! accel throughput --cores 512 --window 262144 --device v7 --network scalable --clock 300
//! accel explain "SELECT * FROM s WHERE v > 9" --schema s=v:32
//! accel deploy "SELECT * FROM a JOIN b ON k WINDOW 1024" \
//!       --schema a=k:32,x:32 --schema b=k:32,y:32 --cores 8 --device v7
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use accel_landscape::fqp::hwbridge::deploy_to_hardware;
use accel_landscape::fqp::landscape;
use accel_landscape::fqp::plan::{bind, Catalog};
use accel_landscape::fqp::query::Query;
use accel_landscape::hwsim::{devices, Device};
use accel_landscape::joinhw::harness::{
    build, prefill_steady_state, run_throughput,
};
use accel_landscape::joinhw::{DesignParams, FlowModel, JoinAlgorithm, NetworkKind};

const USAGE: &str = "\
accel — flow-based stream joins in simulated hardware

USAGE:
  accel landscape
      Print the Section II acceleration-landscape catalog.

  accel synthesize --cores N --window W --device v5|v7
        [--flow uni|bi] [--network lightweight|scalable] [--fanout K]
        [--algorithm nested|hash] [--tuple-bits B]
      Run the synthesis-report model: utilization, clock, power.

  accel throughput --cores N --window W --device v5|v7
        [--flow uni|bi] [--network ...] [--clock MHZ] [--tuples N]
      Cycle-accurate saturation throughput of the design.

  accel explain <query> --schema name=field:width[,field:width...] ...
      Parse and bind a query, print the EXPLAIN plan.

  accel deploy <query> --schema ... --cores N --device v5|v7
      Map a join query onto the hardware fabric; print the synthesis
      report and the sustainable-throughput estimate.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".to_string());
    };
    let (positional, flags) = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "landscape" => {
            for s in landscape::catalog() {
                println!("{s}");
            }
            Ok(())
        }
        "synthesize" => synthesize(&flags),
        "throughput" => throughput(&flags),
        "explain" => explain(&positional, &flags),
        "deploy" => deploy(&positional, &flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Flag map: name -> values (repeatable flags accumulate).
type Flags = HashMap<String, Vec<String>>;

/// Splits arguments into positionals and `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut positional = Vec::new();
    let mut flags: HashMap<String, Vec<String>> = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.entry(name.to_string()).or_default().push(value.clone());
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn one<'a>(
    flags: &'a HashMap<String, Vec<String>>,
    name: &str,
) -> Result<&'a str, String> {
    flags
        .get(name)
        .and_then(|v| v.first())
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn opt<'a>(flags: &'a HashMap<String, Vec<String>>, name: &str) -> Option<&'a str> {
    flags.get(name).and_then(|v| v.first()).map(String::as_str)
}

fn parse_device(s: &str) -> Result<Device, String> {
    match s.to_ascii_lowercase().as_str() {
        "v5" | "xc5vlx50t" | "virtex-5" => Ok(devices::XC5VLX50T),
        "v7" | "xc7vx485t" | "virtex-7" => Ok(devices::XC7VX485T),
        other => Err(format!("unknown device {other:?} (use v5 or v7)")),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("invalid {what}: {s:?}"))
}

fn design_from_flags(flags: &HashMap<String, Vec<String>>) -> Result<DesignParams, String> {
    let cores: u32 = parse_num(one(flags, "cores")?, "core count")?;
    let window: usize = parse_num(one(flags, "window")?, "window size")?;
    let flow = match opt(flags, "flow").unwrap_or("uni") {
        "uni" | "uniflow" => FlowModel::UniFlow,
        "bi" | "biflow" => FlowModel::BiFlow,
        other => return Err(format!("unknown flow model {other:?}")),
    };
    let mut params = DesignParams::new(flow, cores, window);
    if let Some(network) = opt(flags, "network") {
        params = params.with_network(match network {
            "lightweight" => NetworkKind::Lightweight,
            "scalable" => NetworkKind::Scalable,
            other => return Err(format!("unknown network {other:?}")),
        });
    }
    if let Some(fanout) = opt(flags, "fanout") {
        params = params.with_fanout(parse_num(fanout, "fan-out")?);
    }
    if let Some(algorithm) = opt(flags, "algorithm") {
        params = params.with_algorithm(match algorithm {
            "nested" | "nested-loop" => JoinAlgorithm::NestedLoop,
            "hash" => JoinAlgorithm::Hash,
            other => return Err(format!("unknown algorithm {other:?}")),
        });
    }
    if let Some(bits) = opt(flags, "tuple-bits") {
        params = params.with_tuple_bits(parse_num(bits, "tuple width")?);
    }
    Ok(params)
}

fn synthesize(flags: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let device = parse_device(one(flags, "device")?)?;
    let params = design_from_flags(flags)?;
    let report = params.synthesize(&device).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

fn throughput(flags: &HashMap<String, Vec<String>>) -> Result<(), String> {
    let device = parse_device(one(flags, "device")?)?;
    let params = design_from_flags(flags)?;
    let report = match opt(flags, "clock") {
        Some(mhz) => params
            .synthesize_at(&device, parse_num(mhz, "clock")?)
            .map_err(|e| e.to_string())?,
        None => params.synthesize(&device).map_err(|e| e.to_string())?,
    };
    let tuples: u64 = match opt(flags, "tuples") {
        Some(t) => parse_num(t, "tuple count")?,
        None => 256,
    };
    let mut join = build(&params);
    prefill_steady_state(join.as_mut(), params.window_size);
    let run = run_throughput(join.as_mut(), tuples, 1 << 20);
    println!("{report}");
    println!(
        "measured: {} over {} cycles ({} results)",
        run.at_clock(report.clock.mhz()),
        run.cycles,
        run.results
    );
    Ok(())
}

fn catalog_from_flags(flags: &HashMap<String, Vec<String>>) -> Result<Catalog, String> {
    let mut catalog = Catalog::new();
    let specs = flags
        .get("schema")
        .ok_or("missing --schema (name=field:width,...)")?;
    for spec in specs {
        catalog.register_spec(spec)?;
    }
    Ok(catalog)
}

fn explain(
    positional: &[String],
    flags: &HashMap<String, Vec<String>>,
) -> Result<(), String> {
    let text = positional.first().ok_or("missing query text")?;
    let catalog = catalog_from_flags(flags)?;
    let query = Query::parse(text).map_err(|e| e.to_string())?;
    let plan = bind(&query, &catalog).map_err(|e| e.to_string())?;
    print!("{}", plan.explain());
    Ok(())
}

fn deploy(
    positional: &[String],
    flags: &HashMap<String, Vec<String>>,
) -> Result<(), String> {
    let text = positional.first().ok_or("missing query text")?;
    let catalog = catalog_from_flags(flags)?;
    let device = parse_device(one(flags, "device")?)?;
    let cores: u32 = parse_num(one(flags, "cores")?, "core count")?;
    let query = Query::parse(text).map_err(|e| e.to_string())?;
    let plan = bind(&query, &catalog).map_err(|e| e.to_string())?;
    print!("{}", plan.explain());
    let hw = deploy_to_hardware(&plan, cores, &device).map_err(|e| e.to_string())?;
    println!("{}", hw.report());
    println!(
        "sustainable input throughput: {:.3} M tuples/s",
        hw.throughput_estimate() / 1e6
    );
    Ok(())
}
