//! # accel-landscape
//!
//! A reproduction of *"Hardware Acceleration Landscape for Distributed
//! Real-time Analytics: Virtues and Limitations"* (Najafi, Zhang, Jacobsen,
//! Sadoghi — ICDCS 2017) as a Rust workspace.
//!
//! This facade crate re-exports the public API of every subsystem:
//!
//! * [`hwsim`] — cycle-level FPGA simulation kernel plus device, resource,
//!   timing, and power models (the substitute for the paper's Virtex-5/7
//!   boards and the Xilinx tool chain);
//! * [`streamcore`] — tuples, schemas, sliding windows, workload
//!   generators, and metrics shared by the hardware and software paths;
//! * [`joinhw`] — the paper's case study in "hardware": uni-flow
//!   (SplitJoin) and bi-flow (handshake join) parallel stream joins as
//!   clocked component designs;
//! * [`joinsw`] — multithreaded software realizations of the same two flow
//!   models;
//! * [`fqp`] — the Flexible Query Processor: runtime-programmable operator
//!   blocks, parametrized topologies, query assignment, and the
//!   acceleration-landscape taxonomy of the paper's Section II;
//! * [`obs`] — the observability layer: counters, log2 latency
//!   histograms, registries, and JSON run manifests. Feature-gated: the
//!   workspace's default `obs` feature enables collection; building with
//!   `--no-default-features` compiles every counter to a no-op.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results
//! of every evaluation figure.
//!
//! # Quickstart
//!
//! Run a parallel stream join in simulated hardware and read its synthesis
//! report:
//!
//! ```
//! use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};
//! use accel_landscape::hwsim::devices;
//!
//! let params = DesignParams::new(FlowModel::UniFlow, 4, 1 << 8)
//!     .with_network(NetworkKind::Lightweight);
//! let report = params.synthesize(&devices::XC5VLX50T)?;
//! assert!(report.clock.mhz() > 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use fqp;
pub use hwsim;
pub use obs;
pub use joinhw;
pub use joinsw;
pub use query;
pub use streamcore;

/// The workspace-wide single import: the software-join surface
/// ([`joinsw::prelude`]) together with the standing-query front end
/// ([`query::prelude`]), which is all most programs driving the fabric
/// need.
///
/// ```
/// use accel_landscape::prelude::*;
/// use accel_landscape::streamcore::Tuple;
///
/// let mut catalog = Catalog::new();
/// catalog.register_spec("trades=sym:32,qty:32").unwrap();
/// catalog.register_spec("quotes=sym:32,px:32").unwrap();
/// let mut runtime = QueryRuntime::new(catalog, RuntimeConfig::new(2));
/// let plan = LogicalPlan::source("trades")
///     .join(LogicalPlan::source("quotes"), "sym", 8);
/// runtime.admit("ticks", &plan).unwrap();
/// runtime.push("trades", Tuple::new(1, 0)).unwrap();
/// runtime.push("quotes", Tuple::new(1, 1)).unwrap();
/// assert_eq!(runtime.finish().unwrap()[0].rows.len(), 1);
/// ```
pub mod prelude {
    pub use joinsw::prelude::*;
    pub use query::prelude::*;
}
