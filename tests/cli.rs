//! End-to-end tests of the `accel` command-line tool.

use std::process::{Command, Output};

fn accel(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_accel"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn landscape_lists_the_catalog() {
    let out = accel(&["landscape"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("FQP"));
    assert!(text.contains("SplitJoin"));
    assert!(text.contains("Handshake join"));
}

#[test]
fn synthesize_prints_a_report() {
    let out = accel(&[
        "synthesize", "--cores", "16", "--window", "8192", "--device", "v5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("uni-flow join, 16 cores"));
    assert!(text.contains("clock"));
    assert!(text.contains("power"));
}

#[test]
fn synthesize_reports_infeasible_designs() {
    let out = accel(&[
        "synthesize", "--cores", "64", "--window", "8192", "--device", "v5",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("BRAM18"));
}

#[test]
fn throughput_measures_a_small_design() {
    let out = accel(&[
        "throughput", "--cores", "4", "--window", "256", "--device", "v5",
        "--clock", "100", "--tuples", "64",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("measured:"), "{text}");
    assert!(text.contains("M tuples/s"), "{text}");
}

#[test]
fn explain_binds_against_cli_schemas() {
    let out = accel(&[
        "explain",
        "SELECT v FROM s WHERE v > 9",
        "--schema",
        "s=v:32,w:8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Source: s"), "{text}");
    assert!(text.contains("Select [v > 9]"), "{text}");
    assert!(text.contains("Output: (v:32)"), "{text}");
}

#[test]
fn deploy_runs_the_hardware_bridge() {
    let out = accel(&[
        "deploy",
        "SELECT * FROM a JOIN b ON k WINDOW 1024",
        "--schema",
        "a=k:32,x:32",
        "--schema",
        "b=k:32,y:32",
        "--cores",
        "8",
        "--device",
        "v7",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Join b ON k WINDOW 1024"), "{text}");
    assert!(text.contains("sustainable input throughput"), "{text}");
}

#[test]
fn explain_handles_boolean_where_clauses() {
    let out = accel(&[
        "explain",
        "SELECT * FROM s WHERE (v > 9 OR w < 2) AND NOT v = 5",
        "--schema",
        "s=v:32,w:8",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("truth table"), "{text}");
}

#[test]
fn bad_invocations_print_usage() {
    for args in [
        &[][..],
        &["frobnicate"][..],
        &["synthesize", "--cores", "four"][..],
        &["explain", "SELECT *"][..],
    ] {
        let out = accel(args);
        assert!(!out.status.success(), "{args:?} should fail");
        assert!(stderr(&out).contains("USAGE"), "{args:?}");
    }
}

#[test]
fn help_prints_usage() {
    let out = accel(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}
