//! Golden regression fixtures: exact cycle counts of the paper-figure
//! anchor configurations, snapshotted from the cycle-accurate simulation.
//!
//! These pin the *simulated machine*, not the paper's numbers: any change
//! to the FSMs, FIFOs, networks, or the scheduling layer that shifts a
//! single cycle shows up here. If a change is intentional, regenerate the
//! values with the corresponding harness calls (the configurations are
//! spelled out field by field below) and update them in the same commit
//! that changes the behavior.

/// Fig. 14a anchors — uni-flow, lightweight networks, window 2^11,
/// saturation run of 128 tuples with key domain 2^20:
/// `(cores, accepted_tuples, cycles, results)`.
pub const FIG14A_THROUGHPUT: &[(u32, u64, u64, u64)] = &[
    (2, 128, 123_911, 2),
    (4, 128, 61_959, 2),
    (8, 128, 30_983, 2),
    (16, 128, 15_495, 2),
];

/// Fig. 14b anchors — bi-flow chain, saturation run of 24 tuples with key
/// domain 2^20: `(cores, window, accepted_tuples, cycles, results)`.
pub const FIG14B_BIFLOW_THROUGHPUT: &[(u32, usize, u64, u64, u64)] = &[
    (4, 64, 24, 1_598, 0),
    (16, 128, 24, 3_698, 0),
];

/// Fig. 15 anchors — uni-flow latency probe, window 2^13, one planted
/// match per core (probe key 7): `(cores, scalable, cycles_to_last_result,
/// cycles_to_quiescent, results)`.
pub const FIG15_LATENCY: &[(u32, bool, u64, u64, u64)] = &[
    (2, false, 4_101, 4_101, 2),
    (8, false, 1_035, 1_035, 8),
    (8, true, 1_041, 1_041, 8),
];
