//! Shared helpers for the workspace integration tests.

#[allow(dead_code)]
pub mod golden;

use std::collections::HashMap;

use accel_landscape::streamcore::workload::{KeyDist, WorkloadSpec};
use accel_landscape::streamcore::{MatchPair, StreamTag, Tuple};

/// Multiset view of join results (order is realization-specific).
#[allow(dead_code)]
pub fn as_multiset(results: &[MatchPair]) -> HashMap<(u64, u64), u32> {
    let mut m = HashMap::new();
    for p in results {
        *m.entry((p.r.raw(), p.s.raw())).or_insert(0) += 1;
    }
    m
}

/// A deterministic alternating R/S workload.
#[allow(dead_code)]
pub fn workload(tuples: usize, domain: u32, seed: u64) -> Vec<(StreamTag, Tuple)> {
    WorkloadSpec::new(tuples, KeyDist::Uniform { domain })
        .with_seed(seed)
        .generate()
        .collect()
}
