//! Cross-implementation equivalence: every realization of the windowed
//! equi-join — uni-flow hardware (both network variants), bi-flow
//! hardware, multithreaded software SplitJoin, software handshake join
//! (serialized), and the single-threaded reference — produces the same
//! result multiset on the same workload.

mod common;

use accel_landscape::hwsim::Simulator;
use accel_landscape::joinhw::biflow::BiFlowJoin;
use accel_landscape::joinhw::uniflow::UniFlowJoin;
use accel_landscape::joinhw::{DesignParams, FlowModel, JoinOperator, NetworkKind};
use accel_landscape::joinsw::baseline::reference_join;
use accel_landscape::joinsw::handshake::{HandshakeConfig, HandshakeJoin};
use accel_landscape::joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
use accel_landscape::streamcore::{JoinPredicate, MatchPair, StreamTag, Tuple};

use common::{as_multiset, workload};

const CORES: u32 = 4;
const WINDOW: usize = 32;

fn run_uniflow(inputs: &[(StreamTag, Tuple)], network: NetworkKind) -> Vec<MatchPair> {
    let params =
        DesignParams::new(FlowModel::UniFlow, CORES, WINDOW).with_network(network);
    let mut join = UniFlowJoin::new(&params);
    join.program(JoinOperator::equi(CORES));
    drive_hw(&mut join, inputs)
}

fn run_biflow(inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let params = DesignParams::new(FlowModel::BiFlow, CORES, WINDOW);
    let mut join = BiFlowJoin::new(&params);
    join.program(JoinOperator::equi(CORES));
    let mut sim = Simulator::new();
    let mut idx = 0;
    while idx < inputs.len() {
        let (tag, t) = inputs[idx];
        if join.offer(tag, t) {
            idx += 1;
        }
        sim.step(&mut join);
        assert!(sim.cycle() < 50_000_000, "bi-flow stalled");
    }
    assert!(sim.run_until(&mut join, 50_000_000, |j| j.quiescent()));
    join.drain_results()
}

fn drive_hw(join: &mut UniFlowJoin, inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let mut sim = Simulator::new();
    let mut idx = 0;
    while idx < inputs.len() {
        let (tag, t) = inputs[idx];
        if join.offer(tag, t) {
            idx += 1;
        }
        sim.step(join);
        assert!(sim.cycle() < 10_000_000, "uni-flow stalled");
    }
    assert!(sim.run_until(join, 10_000_000, |j| j.quiescent()));
    join.drain_results()
}

fn run_splitjoin_sw(inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let join = SplitJoin::spawn(SplitJoinConfig::new(CORES as usize, WINDOW));
    for &(tag, t) in inputs {
        join.process(tag, t).unwrap();
    }
    join.flush().unwrap();
    join.shutdown().unwrap().results
}

fn run_handshake_sw(inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let join = HandshakeJoin::spawn(HandshakeConfig::new(CORES as usize, WINDOW));
    for &(tag, t) in inputs {
        join.process(tag, t).unwrap();
        join.flush().unwrap(); // serialize waves: strict semantics
    }
    join.shutdown().unwrap().results
}

#[test]
fn all_five_realizations_agree_with_the_reference() {
    let inputs = workload(600, 8, 99);
    let want = as_multiset(&reference_join(&inputs, WINDOW, JoinPredicate::Equi));
    assert!(!want.is_empty(), "workload must produce matches");

    assert_eq!(
        as_multiset(&run_uniflow(&inputs, NetworkKind::Lightweight)),
        want,
        "uni-flow hardware (lightweight)"
    );
    assert_eq!(
        as_multiset(&run_uniflow(&inputs, NetworkKind::Scalable)),
        want,
        "uni-flow hardware (scalable)"
    );
    assert_eq!(as_multiset(&run_biflow(&inputs)), want, "bi-flow hardware");
    assert_eq!(
        as_multiset(&run_splitjoin_sw(&inputs)),
        want,
        "software SplitJoin"
    );
    assert_eq!(
        as_multiset(&run_handshake_sw(&inputs)),
        want,
        "software handshake join"
    );
}

#[test]
fn equivalence_holds_across_seeds_and_selectivities() {
    for (seed, domain) in [(1u64, 4u32), (2, 16), (3, 64)] {
        let inputs = workload(300, domain, seed);
        let want = as_multiset(&reference_join(&inputs, WINDOW, JoinPredicate::Equi));
        assert_eq!(
            as_multiset(&run_uniflow(&inputs, NetworkKind::Lightweight)),
            want,
            "seed {seed} domain {domain} (hw)"
        );
        assert_eq!(
            as_multiset(&run_splitjoin_sw(&inputs)),
            want,
            "seed {seed} domain {domain} (sw)"
        );
    }
}

#[test]
fn equivalence_holds_under_bursty_arrivals() {
    // Batched sensors: long same-stream runs stress the round-robin
    // storage and the bi-flow chain's arrival ordering.
    use accel_landscape::streamcore::workload::{ArrivalPattern, KeyDist, WorkloadSpec};
    for burst in [5usize, 23, 150] {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 8 })
            .with_arrivals(ArrivalPattern::Bursty { burst })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, WINDOW, JoinPredicate::Equi));
        assert!(!want.is_empty());
        assert_eq!(
            as_multiset(&run_uniflow(&inputs, NetworkKind::Scalable)),
            want,
            "burst {burst} (uni-flow hw)"
        );
        assert_eq!(as_multiset(&run_biflow(&inputs)), want, "burst {burst} (bi-flow hw)");
        assert_eq!(
            as_multiset(&run_splitjoin_sw(&inputs)),
            want,
            "burst {burst} (sw)"
        );
    }
}
