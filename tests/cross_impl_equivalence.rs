//! Cross-implementation equivalence: every realization of the windowed
//! equi-join — uni-flow hardware (both network variants), bi-flow
//! hardware, multithreaded software SplitJoin, software handshake join
//! (serialized), and the single-threaded reference — produces the same
//! result multiset on the same workload.
//!
//! The second half of the file pins *cross-transport* equivalence: the
//! SplitJoin channel and ring transports must agree — results, counts,
//! per-worker statistics, and (under a scripted [`FaultPlan`]) the
//! exact damage report — at every worker count, because batch message
//! boundaries are identical on both paths.
//!
//! The next section pins *cross-dispatch* equivalence: hash-partitioned
//! dispatch (PanJoin mode) must produce the same result multiset as
//! broadcast dispatch — and both the single-threaded reference — on
//! uniform and zipf-skewed workloads at every worker count, including
//! when a scripted kill takes out a partition owner mid-run.
//!
//! The final section pins *cross-kernel* equivalence: the blocked probe
//! kernel must be observationally identical to the scalar kernel —
//! results and per-worker statistics — across the full
//! kernel × transport × dispatch matrix.

mod common;

use accel_landscape::hwsim::Simulator;
use accel_landscape::joinhw::biflow::BiFlowJoin;
use accel_landscape::joinhw::uniflow::UniFlowJoin;
use accel_landscape::joinhw::{DesignParams, FlowModel, JoinOperator, NetworkKind};
use accel_landscape::joinsw::baseline::reference_join;
use accel_landscape::joinsw::config::{Kernel, Partitioning, Transport};
use accel_landscape::joinsw::handshake::{HandshakeConfig, HandshakeJoin};
use accel_landscape::joinsw::splitjoin::{JoinOutcome, SplitJoin, SplitJoinConfig};
use accel_landscape::joinsw::{FaultEvent, FaultPlan};
use accel_landscape::streamcore::{JoinPredicate, MatchPair, StreamTag, Tuple};
use proptest::prelude::*;

use common::{as_multiset, workload};

const CORES: u32 = 4;
const WINDOW: usize = 32;

fn run_uniflow(inputs: &[(StreamTag, Tuple)], network: NetworkKind) -> Vec<MatchPair> {
    let params =
        DesignParams::new(FlowModel::UniFlow, CORES, WINDOW).with_network(network);
    let mut join = UniFlowJoin::new(&params);
    join.program(JoinOperator::equi(CORES));
    drive_hw(&mut join, inputs)
}

fn run_biflow(inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let params = DesignParams::new(FlowModel::BiFlow, CORES, WINDOW);
    let mut join = BiFlowJoin::new(&params);
    join.program(JoinOperator::equi(CORES));
    let mut sim = Simulator::new();
    let mut idx = 0;
    while idx < inputs.len() {
        let (tag, t) = inputs[idx];
        if join.offer(tag, t) {
            idx += 1;
        }
        sim.step(&mut join);
        assert!(sim.cycle() < 50_000_000, "bi-flow stalled");
    }
    assert!(sim.run_until(&mut join, 50_000_000, |j| j.quiescent()));
    join.drain_results()
}

fn drive_hw(join: &mut UniFlowJoin, inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let mut sim = Simulator::new();
    let mut idx = 0;
    while idx < inputs.len() {
        let (tag, t) = inputs[idx];
        if join.offer(tag, t) {
            idx += 1;
        }
        sim.step(join);
        assert!(sim.cycle() < 10_000_000, "uni-flow stalled");
    }
    assert!(sim.run_until(join, 10_000_000, |j| j.quiescent()));
    join.drain_results()
}

fn run_splitjoin_sw(inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let join = SplitJoin::spawn(SplitJoinConfig::new(CORES as usize, WINDOW));
    for &(tag, t) in inputs {
        join.process(tag, t).unwrap();
    }
    join.flush().unwrap();
    join.shutdown().unwrap().results
}

fn run_handshake_sw(inputs: &[(StreamTag, Tuple)]) -> Vec<MatchPair> {
    let join = HandshakeJoin::spawn(HandshakeConfig::new(CORES as usize, WINDOW));
    for &(tag, t) in inputs {
        join.process(tag, t).unwrap();
        join.flush().unwrap(); // serialize waves: strict semantics
    }
    join.shutdown().unwrap().results
}

#[test]
fn all_five_realizations_agree_with_the_reference() {
    let inputs = workload(600, 8, 99);
    let want = as_multiset(&reference_join(&inputs, WINDOW, JoinPredicate::Equi));
    assert!(!want.is_empty(), "workload must produce matches");

    assert_eq!(
        as_multiset(&run_uniflow(&inputs, NetworkKind::Lightweight)),
        want,
        "uni-flow hardware (lightweight)"
    );
    assert_eq!(
        as_multiset(&run_uniflow(&inputs, NetworkKind::Scalable)),
        want,
        "uni-flow hardware (scalable)"
    );
    assert_eq!(as_multiset(&run_biflow(&inputs)), want, "bi-flow hardware");
    assert_eq!(
        as_multiset(&run_splitjoin_sw(&inputs)),
        want,
        "software SplitJoin"
    );
    assert_eq!(
        as_multiset(&run_handshake_sw(&inputs)),
        want,
        "software handshake join"
    );
}

#[test]
fn equivalence_holds_across_seeds_and_selectivities() {
    for (seed, domain) in [(1u64, 4u32), (2, 16), (3, 64)] {
        let inputs = workload(300, domain, seed);
        let want = as_multiset(&reference_join(&inputs, WINDOW, JoinPredicate::Equi));
        assert_eq!(
            as_multiset(&run_uniflow(&inputs, NetworkKind::Lightweight)),
            want,
            "seed {seed} domain {domain} (hw)"
        );
        assert_eq!(
            as_multiset(&run_splitjoin_sw(&inputs)),
            want,
            "seed {seed} domain {domain} (sw)"
        );
    }
}

/// Runs a SplitJoin to completion on one transport. `batch_size` is
/// pinned explicitly so the comparison is immune to the `ACCEL_SW_BATCH`
/// CI legs — identical batch boundaries are exactly what makes the two
/// transports comparable bit-for-bit under a fault plan.
fn run_transport(
    transport: Transport,
    cores: usize,
    batch_size: usize,
    plan: Option<&FaultPlan>,
    inputs: &[(StreamTag, Tuple)],
) -> JoinOutcome {
    let mut config = SplitJoinConfig::new(cores, WINDOW)
        .with_batch_size(batch_size)
        .with_transport(transport);
    if let Some(plan) = plan {
        config = config.with_fault_plan(plan.clone());
    }
    let join = SplitJoin::spawn(config);
    for &(tag, t) in inputs {
        join.process(tag, t).unwrap();
    }
    join.flush().unwrap();
    join.shutdown().unwrap()
}

/// Everything that must match across transports. Recovery latency is
/// wall-clock and ring telemetry is per-transport, so neither is
/// compared; all logical outputs are.
fn assert_outcomes_agree(ring: &JoinOutcome, channel: &JoinOutcome, label: &str) {
    assert_eq!(
        as_multiset(&ring.results),
        as_multiset(&channel.results),
        "{label}: result multisets diverge"
    );
    assert_eq!(ring.result_count, channel.result_count, "{label}: counts");
    assert_eq!(
        ring.worker_stats, channel.worker_stats,
        "{label}: per-worker statistics"
    );
    assert_eq!(
        ring.batch_sizes.total(),
        channel.batch_sizes.total(),
        "{label}: batch message count"
    );
    assert_eq!(
        ring.fault.workers_lost, channel.fault.workers_lost,
        "{label}: lost workers"
    );
    assert_eq!(
        ring.fault.orphaned_tuples, channel.fault.orphaned_tuples,
        "{label}: orphan accounting"
    );
    assert_eq!(
        ring.fault.injected_stalls, channel.fault.injected_stalls,
        "{label}: stall count"
    );
    assert_eq!(
        ring.fault.injected_drops, channel.fault.injected_drops,
        "{label}: drop count"
    );
    assert_eq!(
        ring.fault.results_dropped, channel.fault.results_dropped,
        "{label}: results dropped at kill"
    );
}

#[test]
fn ring_and_channel_transports_agree_at_every_worker_count() {
    let inputs = workload(600, 8, 42);
    for cores in [1usize, 2, 4, 8] {
        let ring = run_transport(Transport::Ring, cores, 16, None, &inputs);
        let channel = run_transport(Transport::Channel, cores, 16, None, &inputs);
        assert_outcomes_agree(&ring, &channel, &format!("{cores} cores healthy"));
        assert!(
            ring.ring_stats.is_some() && channel.ring_stats.is_none(),
            "ring telemetry belongs to the ring transport only"
        );
        assert!(!ring.fault.degraded());
    }
}

#[test]
fn transports_agree_under_kill_and_stall_faults() {
    let inputs = workload(600, 8, 7);
    for cores in [1usize, 2, 4, 8] {
        // A stall early, then (with a sibling to survive) a kill at a
        // later batch boundary — the orphan accounting and the
        // results_dropped tally must come out identical because both
        // transports deliver identical batch boundaries.
        let mut plan = FaultPlan::none().with(FaultEvent::Stall {
            worker: 0,
            at_batch: 2,
            millis: 5,
        });
        if cores > 1 {
            plan = plan.with(FaultEvent::Kill { worker: cores - 1, after_batch: 4 });
        }
        let ring = run_transport(Transport::Ring, cores, 16, Some(&plan), &inputs);
        let channel = run_transport(Transport::Channel, cores, 16, Some(&plan), &inputs);
        assert_outcomes_agree(&ring, &channel, &format!("{cores} cores faulted"));
        assert_eq!(ring.fault.injected_stalls, 1);
        if cores > 1 {
            assert_eq!(ring.fault.workers_lost, vec![cores - 1]);
            assert!(ring.fault.degraded());
        }
    }
}

#[test]
fn transports_agree_on_drop_corruption() {
    // A scripted message drop corrupts the round-robin discipline on
    // one worker — deliberately. Both transports must corrupt the same
    // way (same dropped batch boundary), so outcomes still agree.
    let inputs = workload(400, 8, 21);
    let plan = FaultPlan::none().with(FaultEvent::Drop { worker: 1, at_batch: 3 });
    let ring = run_transport(Transport::Ring, 4, 16, Some(&plan), &inputs);
    let channel = run_transport(Transport::Channel, 4, 16, Some(&plan), &inputs);
    assert_outcomes_agree(&ring, &channel, "scripted drop");
    assert_eq!(ring.fault.injected_drops, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized cross-transport equivalence: any workload, any core
    /// count, any batch size — the ring transport is observationally
    /// identical to the channel transport (and both match the
    /// single-threaded reference).
    #[test]
    fn transports_agree_on_random_workloads(
        n in 100usize..400,
        domain in 2u32..32,
        seed in any::<u64>(),
        cores in 1usize..5,
        batch in 1usize..64,
    ) {
        let inputs = workload(n, domain, seed);
        let ring = run_transport(Transport::Ring, cores, batch, None, &inputs);
        let channel = run_transport(Transport::Channel, cores, batch, None, &inputs);
        prop_assert_eq!(as_multiset(&ring.results), as_multiset(&channel.results));
        prop_assert_eq!(&ring.worker_stats, &channel.worker_stats);
        let window = SplitJoinConfig::new(cores, WINDOW).effective_window();
        let want = as_multiset(&reference_join(&inputs, window, JoinPredicate::Equi));
        prop_assert_eq!(as_multiset(&ring.results), want);
    }
}

/// Runs a SplitJoin to completion in the given dispatch mode. Batch
/// size is pinned for the same reason as [`run_transport`]: identical
/// batch boundaries make the broadcast and hash-partitioned runs
/// comparable point-for-point under a fault plan.
fn run_dispatch(
    partitioning: Partitioning,
    cores: usize,
    batch_size: usize,
    plan: Option<&FaultPlan>,
    inputs: &[(StreamTag, Tuple)],
) -> JoinOutcome {
    let mut config = SplitJoinConfig::new(cores, WINDOW)
        .with_batch_size(batch_size)
        .with_partitioning(partitioning);
    if let Some(plan) = plan {
        config = config.with_fault_plan(plan.clone());
    }
    let join = SplitJoin::spawn(config);
    for &(tag, t) in inputs {
        join.process(tag, t).unwrap();
    }
    join.flush().unwrap();
    join.shutdown().unwrap()
}

/// A keyed workload with tunable skew: `s == 0.0` is uniform, larger
/// exponents concentrate the key mass (classic Zipf at `s == 1.0`).
fn keyed_workload(
    tuples: usize,
    domain: u32,
    seed: u64,
    s: f64,
) -> Vec<(StreamTag, Tuple)> {
    use accel_landscape::streamcore::workload::{KeyDist, WorkloadSpec};
    let keys = if s == 0.0 {
        KeyDist::Uniform { domain }
    } else {
        KeyDist::Zipf { domain, s }
    };
    WorkloadSpec::new(tuples, keys).with_seed(seed).generate().collect()
}

#[test]
fn partitioned_dispatch_matches_broadcast_at_every_worker_count() {
    for s in [0.0, 1.0] {
        let inputs = keyed_workload(600, 8, 42, s);
        for cores in [1usize, 2, 4, 8] {
            let broadcast = run_dispatch(Partitioning::Broadcast, cores, 16, None, &inputs);
            let partitioned = run_dispatch(Partitioning::Hash, cores, 16, None, &inputs);
            assert_eq!(
                as_multiset(&partitioned.results),
                as_multiset(&broadcast.results),
                "s={s} cores={cores}: dispatch modes diverge"
            );
            assert_eq!(partitioned.result_count, broadcast.result_count);
            assert!(
                partitioned.partition_stats.is_some() && broadcast.partition_stats.is_none(),
                "partition telemetry belongs to hash dispatch only"
            );
            assert!(!partitioned.fault.degraded());
            let window = SplitJoinConfig::new(cores, WINDOW).effective_window();
            assert_eq!(
                as_multiset(&partitioned.results),
                as_multiset(&reference_join(&inputs, window, JoinPredicate::Equi)),
                "s={s} cores={cores}: partitioned vs reference"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized cross-dispatch equivalence: any keyed workload —
    /// uniform or zipf-skewed — at any worker count and batch size
    /// joins identically under broadcast and hash-partitioned dispatch,
    /// and both match the single-threaded reference.
    #[test]
    fn partitioned_dispatch_agrees_on_random_workloads(
        n in 100usize..400,
        domain in 2u32..32,
        seed in any::<u64>(),
        cores in prop::sample::select(vec![1usize, 2, 4, 8]),
        batch in 1usize..64,
        skew in prop::sample::select(vec![0.0f64, 0.7, 1.3]),
    ) {
        let inputs = keyed_workload(n, domain, seed, skew);
        let broadcast = run_dispatch(Partitioning::Broadcast, cores, batch, None, &inputs);
        let partitioned = run_dispatch(Partitioning::Hash, cores, batch, None, &inputs);
        prop_assert_eq!(
            as_multiset(&partitioned.results),
            as_multiset(&broadcast.results)
        );
        prop_assert_eq!(partitioned.result_count, broadcast.result_count);
        let window = SplitJoinConfig::new(cores, WINDOW).effective_window();
        let want = as_multiset(&reference_join(&inputs, window, JoinPredicate::Equi));
        prop_assert_eq!(as_multiset(&partitioned.results), want);
    }
}

#[test]
fn partitioned_kill_of_a_partition_owner_degrades_cleanly() {
    // Killing a partition owner orphans exactly the tuples its ledgers
    // held (plus any in-flight sub-batches); the survivors re-home the
    // dead worker's keys and the run completes with a lossy subset of
    // the healthy results — never an invented match.
    let inputs = keyed_workload(600, 8, 7, 1.0);
    let victim = 1usize;
    let plan = FaultPlan::none().with(FaultEvent::Kill { worker: victim, after_batch: 4 });
    let healthy = run_dispatch(Partitioning::Hash, 4, 16, None, &inputs);
    let lossy = run_dispatch(Partitioning::Hash, 4, 16, Some(&plan), &inputs);
    assert!(lossy.fault.degraded());
    assert_eq!(lossy.fault.workers_lost, vec![victim]);
    assert!(lossy.fault.orphaned_tuples > 0, "owner kill must orphan stored tuples");
    let healthy_set = as_multiset(&healthy.results);
    let lossy_set = as_multiset(&lossy.results);
    for (pair, &count) in &lossy_set {
        assert!(
            healthy_set.get(pair).copied().unwrap_or(0) >= count,
            "lossy run invented a match: {pair:?}"
        );
    }
    let stats = lossy.partition_stats.expect("hash dispatch reports stats");
    assert_eq!(stats.occupancy[victim], 0, "dead owner's ledger must be cleared");
    assert!(!stats.live.contains(&victim), "victim must leave the live set");
}

/// Runs a SplitJoin to completion at one point of the
/// kernel × transport × dispatch matrix.
fn run_matrix(
    kernel: Kernel,
    transport: Transport,
    partitioning: Partitioning,
    batch_size: usize,
    inputs: &[(StreamTag, Tuple)],
) -> JoinOutcome {
    let config = SplitJoinConfig::new(CORES as usize, WINDOW)
        .with_batch_size(batch_size)
        .with_kernel(kernel)
        .with_transport(transport)
        .with_partitioning(partitioning);
    let join = SplitJoin::spawn(config);
    for &(tag, t) in inputs {
        join.process(tag, t).unwrap();
    }
    join.flush().unwrap();
    join.shutdown().unwrap()
}

#[test]
fn kernels_agree_across_transports_and_dispatch_modes() {
    let inputs = workload(600, 8, 123);
    let want = as_multiset(&reference_join(&inputs, WINDOW, JoinPredicate::Equi));
    assert!(!want.is_empty());
    for transport in [Transport::Ring, Transport::Channel] {
        for partitioning in [Partitioning::Broadcast, Partitioning::Hash] {
            for batch in [16usize, 64] {
                let scalar =
                    run_matrix(Kernel::Scalar, transport, partitioning, batch, &inputs);
                let blocked =
                    run_matrix(Kernel::Blocked, transport, partitioning, batch, &inputs);
                let label = format!("{transport:?}/{partitioning:?}/batch {batch}");
                assert_eq!(
                    as_multiset(&scalar.results),
                    as_multiset(&blocked.results),
                    "{label}: kernels diverge"
                );
                assert_eq!(
                    scalar.worker_stats, blocked.worker_stats,
                    "{label}: per-worker statistics diverge"
                );
                assert_eq!(as_multiset(&blocked.results), want, "{label}: vs reference");
                assert!(
                    scalar.kernel_stats.is_none() && blocked.kernel_stats.is_some(),
                    "{label}: kernel telemetry belongs to the blocked kernel only"
                );
            }
        }
    }
}

#[test]
fn equivalence_holds_under_bursty_arrivals() {
    // Batched sensors: long same-stream runs stress the round-robin
    // storage and the bi-flow chain's arrival ordering.
    use accel_landscape::streamcore::workload::{ArrivalPattern, KeyDist, WorkloadSpec};
    for burst in [5usize, 23, 150] {
        let inputs: Vec<_> = WorkloadSpec::new(400, KeyDist::Uniform { domain: 8 })
            .with_arrivals(ArrivalPattern::Bursty { burst })
            .generate()
            .collect();
        let want = as_multiset(&reference_join(&inputs, WINDOW, JoinPredicate::Equi));
        assert!(!want.is_empty());
        assert_eq!(
            as_multiset(&run_uniflow(&inputs, NetworkKind::Scalable)),
            want,
            "burst {burst} (uni-flow hw)"
        );
        assert_eq!(as_multiset(&run_biflow(&inputs)), want, "burst {burst} (bi-flow hw)");
        assert_eq!(
            as_multiset(&run_splitjoin_sw(&inputs)),
            want,
            "burst {burst} (sw)"
        );
    }
}
