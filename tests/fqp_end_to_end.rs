//! End-to-end FQP pipeline: parse → bind → assign → stream → reconfigure
//! → remove, including the paper's Fig. 7 multi-query scenario.

use accel_landscape::fqp::assign::{assign, remove, AssignError};
use accel_landscape::fqp::fabric::Fabric;
use accel_landscape::fqp::landscape::{self, RepresentationalModel};
use accel_landscape::fqp::opblock::BlockProgram;
use accel_landscape::fqp::plan::{bind, BoundCondition, Catalog};
use accel_landscape::fqp::query::{CmpOp, Query};
use accel_landscape::streamcore::{Field, Record, Schema};

fn fig7_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        "customers",
        Schema::new(vec![
            Field::new("product_id", 32).unwrap(),
            Field::new("age", 8).unwrap(),
            Field::new("gender", 1).unwrap(),
        ])
        .unwrap(),
    );
    c.register(
        "products",
        Schema::new(vec![
            Field::new("product_id", 32).unwrap(),
            Field::new("price", 32).unwrap(),
        ])
        .unwrap(),
    );
    c
}

#[test]
fn fig7_multi_query_lifecycle() {
    let catalog = fig7_catalog();
    let q1 = bind(
        &Query::parse(
            "SELECT * FROM customers WHERE age > 25 \
             JOIN products ON product_id WINDOW 1536",
        )
        .unwrap(),
        &catalog,
    )
    .unwrap();
    let q2 = bind(
        &Query::parse(
            "SELECT * FROM customers WHERE age > 25 AND gender = 1 \
             JOIN products ON product_id WINDOW 2048",
        )
        .unwrap(),
        &catalog,
    )
    .unwrap();

    // Four OP-Blocks suffice for both queries — the Fig. 7 layout.
    let mut fabric = Fabric::new(4);
    let h1 = assign(&q1, &mut fabric).unwrap();
    let h2 = assign(&q2, &mut fabric).unwrap();
    assert_eq!(fabric.idle_blocks(), 0);

    // A fifth query cannot fit…
    let q3 = bind(&Query::parse("SELECT * FROM customers").unwrap(), &catalog).unwrap();
    assert!(matches!(
        assign(&q3, &mut fabric),
        Err(AssignError::InsufficientBlocks { .. })
    ));

    // …until query 1 is removed at runtime.
    remove(&h1, &mut fabric).unwrap();
    let h3 = assign(&q3, &mut fabric).unwrap();

    // The surviving queries keep processing.
    fabric.push("products", Record::new(vec![5, 100])).unwrap();
    fabric
        .push("customers", Record::new(vec![5, 40, 1]))
        .unwrap();
    assert_eq!(fabric.take_sink(h2.sink).unwrap().len(), 1);
    assert_eq!(fabric.take_sink(h3.sink).unwrap().len(), 1);
}

#[test]
fn micro_change_rebinds_conditions_without_redeployment() {
    let catalog = fig7_catalog();
    let plan = bind(
        &Query::parse("SELECT * FROM customers WHERE age > 25").unwrap(),
        &catalog,
    )
    .unwrap();
    let mut fabric = Fabric::new(2);
    let handle = assign(&plan, &mut fabric).unwrap();

    fabric
        .push("customers", Record::new(vec![1, 30, 0]))
        .unwrap();
    assert_eq!(fabric.take_sink(handle.sink).unwrap().len(), 1);

    // Tighten the selection on the live block (micro change).
    fabric
        .reprogram(
            handle.blocks[0],
            BlockProgram::Select {
                conditions: vec![BoundCondition {
                    field: 1,
                    op: CmpOp::Gt,
                    value: 60,
                }],
            },
        )
        .unwrap();
    fabric
        .push("customers", Record::new(vec![1, 30, 0]))
        .unwrap();
    fabric
        .push("customers", Record::new(vec![1, 70, 0]))
        .unwrap();
    let out = fabric.take_sink(handle.sink).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].values()[1], 70);
}

#[test]
fn aggregate_query_runs_end_to_end() {
    let catalog = fig7_catalog();
    let plan = bind(
        &Query::parse("SELECT AVG(age) FROM customers WHERE gender = 1 WINDOW 4").unwrap(),
        &catalog,
    )
    .unwrap();
    let mut fabric = Fabric::new(2);
    let handle = assign(&plan, &mut fabric).unwrap();
    // Mixed genders: only gender=1 records reach the aggregate.
    for (age, gender) in [(20u64, 1u64), (40, 0), (30, 1), (40, 1), (90, 0)] {
        fabric
            .push("customers", Record::new(vec![0, age, gender]))
            .unwrap();
    }
    let out = fabric.take_sink(handle.sink).unwrap();
    let avgs: Vec<u64> = out.iter().map(|r| r.values()[0]).collect();
    // Running averages over gender=1 ages: [20], [20,30], [20,30,40].
    assert_eq!(avgs, vec![20, 25, 30]);
}

#[test]
fn boolean_where_runs_on_the_fabric_and_the_hardware_bridge() {
    let catalog = fig7_catalog();
    // Ibex-style: "seniors or women who bought product 7".
    let plan = bind(
        &Query::parse(
            "SELECT * FROM customers WHERE age > 60 OR gender = 1 \
             JOIN products ON product_id WINDOW 16",
        )
        .unwrap(),
        &catalog,
    )
    .unwrap();

    let mut fabric = Fabric::new(2);
    let handle = assign(&plan, &mut fabric).unwrap();
    let mut hw =
        accel_landscape::fqp::hwbridge::deploy_to_hardware(&plan, 2, &accel_landscape::hwsim::devices::XC7VX485T)
            .unwrap();

    let product = Record::new(vec![7, 100]);
    fabric.push("products", product.clone()).unwrap();
    hw.push("products", product).unwrap();
    // (age, gender): senior male ✓, young female ✓, young male ✗.
    for (age, gender) in [(70u64, 0u64), (20, 1), (20, 0)] {
        let c = Record::new(vec![7, age, gender]);
        fabric.push("customers", c.clone()).unwrap();
        hw.push("customers", c).unwrap();
    }
    let sw = fabric.take_sink(handle.sink).unwrap();
    let hw_out = hw.finish();
    assert_eq!(sw.len(), 2);
    assert_eq!(hw_out.len(), 2);
    assert_eq!(hw.filtered(), 1);
}

#[test]
fn landscape_places_fqp_at_maximum_dynamism() {
    let fqp = landscape::find("FQP").expect("FQP in catalog");
    assert_eq!(
        fqp.representation,
        RepresentationalModel::ParametrizedTopology
    );
    // Everything this integration test just exercised — runtime operator
    // changes (micro) and topology changes (macro) — is exactly what that
    // classification asserts.
}

#[test]
fn join_windows_slide_inside_the_fabric() {
    let catalog = fig7_catalog();
    let plan = bind(
        &Query::parse("SELECT * FROM customers JOIN products ON product_id WINDOW 2")
            .unwrap(),
        &catalog,
    )
    .unwrap();
    let mut fabric = Fabric::new(1);
    let handle = assign(&plan, &mut fabric).unwrap();
    for pid in [1u64, 2, 3] {
        fabric
            .push("products", Record::new(vec![pid, pid * 10]))
            .unwrap();
    }
    // Product 1 has expired from the window (capacity 2).
    fabric
        .push("customers", Record::new(vec![1, 30, 0]))
        .unwrap();
    assert!(fabric.take_sink(handle.sink).unwrap().is_empty());
    fabric
        .push("customers", Record::new(vec![3, 30, 0]))
        .unwrap();
    assert_eq!(fabric.take_sink(handle.sink).unwrap().len(), 1);
}
