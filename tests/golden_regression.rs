//! Golden regression: the paper-figure anchor configurations must
//! reproduce the exact cycle counts snapshotted in
//! `tests/common/golden.rs` — on the sequential engine *and* on the
//! parallel engine, which pins both the simulated machine and the
//! parallel layer's cycle-exactness on real designs (Figs. 14a, 14b, 15).

mod common;

use accel_landscape::hwsim::{ParSimulator, Simulator};
use accel_landscape::joinhw::harness::{
    build, prefill_planted, prefill_steady_state, run_latency_with, run_throughput_with,
    LatencyRun, ThroughputRun,
};
use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};
use accel_landscape::streamcore::{StreamTag, Tuple};
use common::golden;

const PAR_THREADS: usize = 4;

fn throughput_both(params: &DesignParams, tuples: u64) -> (ThroughputRun, ThroughputRun) {
    let mut join = build(params);
    prefill_steady_state(join.as_mut(), params.window_size);
    let seq = run_throughput_with(&mut Simulator::new(), join.as_mut(), tuples, 1 << 20);
    let mut join = build(params);
    prefill_steady_state(join.as_mut(), params.window_size);
    let par = run_throughput_with(
        &mut ParSimulator::new(PAR_THREADS),
        join.as_mut(),
        tuples,
        1 << 20,
    );
    (seq, par)
}

#[test]
fn fig14a_throughput_cycles_match_golden() {
    for &(cores, tuples, cycles, results) in golden::FIG14A_THROUGHPUT {
        let params = DesignParams::new(FlowModel::UniFlow, cores, 1 << 11);
        let want = ThroughputRun { tuples, cycles, results };
        let (seq, par) = throughput_both(&params, 128);
        assert_eq!(seq, want, "sequential drifted at {cores} cores");
        assert_eq!(par, want, "parallel drifted at {cores} cores");
    }
}

#[test]
fn fig14b_biflow_throughput_cycles_match_golden() {
    for &(cores, window, tuples, cycles, results) in golden::FIG14B_BIFLOW_THROUGHPUT {
        let params = DesignParams::new(FlowModel::BiFlow, cores, window);
        let want = ThroughputRun { tuples, cycles, results };
        let (seq, par) = throughput_both(&params, 24);
        assert_eq!(seq, want, "sequential drifted at {cores} cores");
        assert_eq!(par, want, "parallel drifted at {cores} cores");
    }
}

#[test]
fn golden_cycles_are_identical_with_tracing_on() {
    // Span tracing and provenance sampling must be behavior-neutral:
    // re-run a pin from each golden table with tracing at its most
    // intrusive setting (every tuple sampled) and demand the exact
    // cycle counts. Under --no-default-features `enable` is a no-op
    // and this degenerates to a plain golden re-run — which is the
    // point: the pins hold in every build configuration.
    use accel_landscape::obs::trace;
    trace::enable(1);

    let &(cores, tuples, cycles, results) = &golden::FIG14A_THROUGHPUT[0];
    let params = DesignParams::new(FlowModel::UniFlow, cores, 1 << 11);
    let (seq, par) = throughput_both(&params, 128);
    assert_eq!(seq, ThroughputRun { tuples, cycles, results }, "traced fig14a seq drifted");
    assert_eq!(par, ThroughputRun { tuples, cycles, results }, "traced fig14a par drifted");

    let &(cores, window, tuples, cycles, results) = &golden::FIG14B_BIFLOW_THROUGHPUT[0];
    let params = DesignParams::new(FlowModel::BiFlow, cores, window);
    let (seq, _) = throughput_both(&params, 24);
    assert_eq!(seq, ThroughputRun { tuples, cycles, results }, "traced fig14b drifted");

    let &(cores, scalable, last, quiescent, results) = &golden::FIG15_LATENCY[0];
    let network = if scalable { NetworkKind::Scalable } else { NetworkKind::Lightweight };
    let params = DesignParams::new(FlowModel::UniFlow, cores, 1 << 13).with_network(network);
    let mut join = build(&params);
    prefill_planted(join.as_mut(), &params, 7);
    let probe = (StreamTag::R, Tuple::new(7, u32::MAX));
    let seq = run_latency_with(&mut Simulator::new(), join.as_mut(), probe, 10_000_000)
        .expect("quiesces");
    let want = LatencyRun { cycles_to_last_result: last, cycles_to_quiescent: quiescent, results };
    assert_eq!(seq, want, "traced fig15 drifted");

    trace::disable();
}

#[test]
fn fig15_latency_cycles_match_golden() {
    for &(cores, scalable, last, quiescent, results) in golden::FIG15_LATENCY {
        let network = if scalable { NetworkKind::Scalable } else { NetworkKind::Lightweight };
        let params =
            DesignParams::new(FlowModel::UniFlow, cores, 1 << 13).with_network(network);
        let probe = (StreamTag::R, Tuple::new(7, u32::MAX));
        let want = LatencyRun {
            cycles_to_last_result: last,
            cycles_to_quiescent: quiescent,
            results,
        };

        let mut join = build(&params);
        prefill_planted(join.as_mut(), &params, 7);
        let seq = run_latency_with(&mut Simulator::new(), join.as_mut(), probe, 10_000_000)
            .expect("quiesces");
        assert_eq!(seq, want, "sequential drifted at {cores} cores ({network:?})");

        let mut join = build(&params);
        prefill_planted(join.as_mut(), &params, 7);
        let par = run_latency_with(
            &mut ParSimulator::new(PAR_THREADS),
            join.as_mut(),
            probe,
            10_000_000,
        )
        .expect("quiesces");
        assert_eq!(par, want, "parallel drifted at {cores} cores ({network:?})");
    }
}
