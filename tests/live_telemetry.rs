//! End-to-end check of the live telemetry plane: an armed SplitJoin run
//! is observable *while it is running* — through a Prometheus-style
//! scrape of every `splitjoin.*` live gauge — and leaves behind a
//! parseable `*.series.jsonl` time-series artifact with health-derivable
//! samples.
//!
//! Only built with the `obs` feature: without it the plane compiles to
//! no-ops by design (`obs::live::active()` is `const false`), which
//! `tests/golden_regression.rs` covers in the `--no-default-features` CI
//! leg.
#![cfg(feature = "obs")]

use std::time::Duration;

use joinsw::config::Transport;
use joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
use streamcore::workload::{KeyDist, WorkloadSpec};

/// Every router- and worker-side live key a 2-core SplitJoin must
/// register at spawn, in dotted (registry) form.
fn expected_splitjoin_keys() -> Vec<String> {
    let mut keys: Vec<String> = [
        "splitjoin.batches",
        "splitjoin.tuples",
        "splitjoin.matches",
        "splitjoin.partition.routed",
        "splitjoin.ring.occupancy",
        "splitjoin.ring.capacity",
        "splitjoin.arena.lag",
        "splitjoin.workers.live",
    ]
    .map(String::from)
    .to_vec();
    for w in 0..2 {
        for suffix in ["batches", "tuples", "matches", "busy_ns", "wait_ns", "heartbeat_age_ns"] {
            keys.push(format!("splitjoin.worker.{w}.{suffix}"));
        }
    }
    keys
}

/// The exposition endpoint replaces everything outside `[a-zA-Z0-9_:]`
/// with `_`.
fn sanitized(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

#[test]
fn scrape_during_a_live_run_returns_every_splitjoin_gauge() {
    // Arm the plane before spawn — registration happens at spawn time.
    obs::live::set_active(true);
    let reg = obs::live::global().clone();

    let dir = std::env::temp_dir().join(format!("live-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut header = obs::series::SeriesHeader::new("live-e2e", 5);
    header.config("transport", "ring");
    let writer = obs::series::SeriesWriter::create(&dir, header).unwrap();
    let sampler = obs::live::Sampler::start_with_series(
        reg.clone(),
        obs::live::SamplerConfig {
            interval: Duration::from_millis(5),
            ..Default::default()
        },
        writer,
    );
    let server = obs::scrape::serve(reg, 0).expect("bind ephemeral scrape port");
    let addr = server.addr().to_string();

    let inputs: Vec<_> = WorkloadSpec::new(2_000, KeyDist::Uniform { domain: 16 })
        .generate()
        .collect();
    let join = SplitJoin::spawn(
        SplitJoinConfig::new(2, 64)
            .with_batch_size(32)
            .with_transport(Transport::Ring),
    );
    // Feed half the stream, then scrape mid-run: the run is still live
    // (workers spawned, not yet shut down) when the endpoint answers.
    let (first, second) = inputs.split_at(inputs.len() / 2);
    for &(tag, t) in first {
        join.process(tag, t).unwrap();
    }
    let body = obs::scrape::scrape_once(&addr).expect("mid-run scrape");
    for key in expected_splitjoin_keys() {
        assert!(
            body.lines().any(|l| l.starts_with(&sanitized(&key))),
            "scrape is missing live key {key}:\n{body}"
        );
    }
    for &(tag, t) in second {
        join.process(tag, t).unwrap();
    }
    join.flush().unwrap();
    let outcome = join.shutdown().unwrap();
    obs::live::set_active(false);
    assert!(!outcome.results.is_empty());

    assert!(server.scrapes() >= 1);
    server.stop();

    // The series artifact parses strictly and carries the splitjoin keys
    // with a sane trajectory (tuples monotone, ending >= the stream).
    let report = sampler.stop();
    assert!(report.series_error.is_none(), "{:?}", report.series_error);
    let path = report.series_path.expect("series file attached");
    let doc = obs::series::SeriesDoc::parse(&std::fs::read_to_string(&path).unwrap())
        .expect("series artifact validates");
    assert!(!doc.samples.is_empty());
    assert!(doc.keys().contains(&"splitjoin.tuples"));
    let tuples = doc.series_of("splitjoin.tuples");
    assert!(tuples.windows(2).all(|w| w[0].1 <= w[1].1), "counter must be monotone");
    assert!(tuples.last().unwrap().1 >= 2_000);

    // Health derivation works over the retained ring.
    if report.snapshots.len() >= 2 {
        let h = obs::health::Health::derive(
            &report.snapshots[report.snapshots.len() - 2],
            &report.snapshots[report.snapshots.len() - 1],
        );
        assert!(h.interval_ns > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}
