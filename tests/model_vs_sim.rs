//! Cross-validation of the analytic throughput/latency models against the
//! cycle-accurate simulation — the ablation DESIGN.md calls out. If these
//! drift apart, either the simulator or the closed-form model (which the
//! figure tables print side by side) has regressed.

use accel_landscape::joinhw::harness::{
    biflow_service_cycles, build, prefill_planted, prefill_steady_state, run_latency,
    run_throughput, uniflow_latency_cycles, uniflow_service_cycles,
};
use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};
use accel_landscape::streamcore::{StreamTag, Tuple};

const KEY_DOMAIN: u32 = 1 << 20;

#[test]
fn uniflow_throughput_model_tracks_simulation_across_grid() {
    for &cores in &[2u32, 4, 8, 16] {
        for &window in &[1usize << 8, 1 << 10, 1 << 12] {
            let params = DesignParams::new(FlowModel::UniFlow, cores, window);
            let mut join = build(&params);
            prefill_steady_state(join.as_mut(), window);
            let run = run_throughput(join.as_mut(), 128, KEY_DOMAIN);
            let measured = 1.0 / run.tuples_per_cycle();
            let model = uniflow_service_cycles(window, cores);
            let err = (measured - model).abs() / model;
            assert!(
                err < 0.10,
                "uni-flow {cores}x2^{}: measured {measured:.1} vs model {model:.1}",
                window.ilog2()
            );
        }
    }
}

#[test]
fn biflow_throughput_model_tracks_simulation() {
    for &cores in &[2u32, 4, 8] {
        let window = 1usize << 8;
        let params = DesignParams::new(FlowModel::BiFlow, cores, window);
        let mut join = build(&params);
        prefill_steady_state(join.as_mut(), window);
        let run = run_throughput(join.as_mut(), 32, KEY_DOMAIN);
        let measured = 1.0 / run.tuples_per_cycle();
        let model = biflow_service_cycles(window, cores);
        let err = (measured - model).abs() / model;
        assert!(
            err < 0.15,
            "bi-flow {cores} cores: measured {measured:.1} vs model {model:.1}"
        );
    }
}

#[test]
fn uniflow_latency_model_tracks_simulation_for_both_networks() {
    for network in [NetworkKind::Lightweight, NetworkKind::Scalable] {
        for &cores in &[4u32, 16] {
            let window = 1usize << 12;
            let params =
                DesignParams::new(FlowModel::UniFlow, cores, window).with_network(network);
            let mut join = build(&params);
            prefill_planted(join.as_mut(), &params, 3);
            let run = run_latency(
                join.as_mut(),
                (StreamTag::R, Tuple::new(3, u32::MAX)),
                10_000_000,
            )
            .expect("probe quiesces");
            assert_eq!(run.results, cores as u64, "one planted match per core");
            let measured = run.cycles_to_last_result as f64;
            let model = uniflow_latency_cycles(&params);
            let err = (measured - model).abs() / model;
            assert!(
                err < 0.25,
                "{network:?} {cores} cores: measured {measured} vs model {model:.0}"
            );
        }
    }
}

#[test]
fn simulated_speedup_matches_model_prediction() {
    // The headline linear-scaling claim, checked end to end: quadrupling
    // cores should quadruple simulated throughput (full windows).
    let window = 1usize << 10;
    let mut rates = Vec::new();
    for &cores in &[2u32, 8] {
        let params = DesignParams::new(FlowModel::UniFlow, cores, window);
        let mut join = build(&params);
        prefill_steady_state(join.as_mut(), window);
        let run = run_throughput(join.as_mut(), 128, KEY_DOMAIN);
        rates.push(run.tuples_per_cycle());
    }
    let speedup = rates[1] / rates[0];
    assert!(
        (3.4..4.6).contains(&speedup),
        "expected ~4x from 2 to 8 cores, got {speedup:.2}"
    );
}
