//! The paper's quantitative claims (Section V), asserted end to end
//! against the models and the cycle-accurate simulation. Each test quotes
//! the claim it checks.

use accel_landscape::hwsim::devices::{XC5VLX50T, XC7VX485T};
use accel_landscape::hwsim::{estimate_fmax, Frequency, PowerModel};
use accel_landscape::joinhw::harness::{
    biflow_throughput_model, build, prefill_steady_state, run_throughput,
    uniflow_throughput_model,
};
use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};

/// "We were able to instantiate 16 join cores on our platform with up to
/// W: 2^13 window size (per stream) … We were not able to realize window
/// sizes larger than 2^11 when instantiating 32 and 64 join cores."
#[test]
fn v5_feasibility_matrix() {
    let fits = |cores, window| {
        DesignParams::new(FlowModel::UniFlow, cores, window)
            .synthesize(&XC5VLX50T)
            .is_ok()
    };
    for cores in [2, 4, 8, 16] {
        assert!(fits(cores, 1 << 13), "{cores} cores @ 2^13 should fit");
    }
    for cores in [32, 64] {
        assert!(fits(cores, 1 << 11), "{cores} cores @ 2^11 should fit");
        assert!(!fits(cores, 1 << 12), "{cores} cores @ 2^12 must not fit");
    }
}

/// "We were not able to instantiate 16 join cores with 2^13 in bi-flow
/// hardware, unlike the uni-flow one, because each join core is more
/// complex and requires a greater amount of resources."
#[test]
fn biflow_is_the_one_that_does_not_fit() {
    let uni = DesignParams::new(FlowModel::UniFlow, 16, 1 << 13);
    let bi = DesignParams::new(FlowModel::BiFlow, 16, 1 << 13);
    assert!(uni.synthesize(&XC5VLX50T).is_ok());
    assert!(bi.synthesize(&XC5VLX50T).is_err());
}

/// "We observe a linear speedup with respects to the number of join cores
/// as expected." (Fig. 14a)
#[test]
fn linear_speedup_with_cores() {
    let window = 1usize << 11;
    let mut prev = 0.0;
    for cores in [2u32, 4, 8, 16] {
        let params = DesignParams::new(FlowModel::UniFlow, cores, window);
        let mut join = build(&params);
        prefill_steady_state(join.as_mut(), window);
        let rate = run_throughput(join.as_mut(), 128, 1 << 20).tuples_per_cycle();
        if prev > 0.0 {
            let ratio = rate / prev;
            assert!(
                (1.8..2.2).contains(&ratio),
                "{cores} cores: speedup ratio {ratio:.2}"
            );
        }
        prev = rate;
    }
}

/// "We observe nearly an order of magnitude speedup when using a uni-flow
/// compared to a bi-flow model." (Fig. 14b)
#[test]
fn uniflow_beats_biflow_by_an_order_of_magnitude() {
    for exp in [8u32, 10, 12] {
        let w = 1usize << exp;
        let ratio = uniflow_throughput_model(w, 16, 100.0)
            / biflow_throughput_model(w, 16, 100.0);
        assert!(
            ratio >= 8.0,
            "window 2^{exp}: uni/bi ratio {ratio:.1} below an order of magnitude"
        );
    }
}

/// "We were able to realize a uni-flow parallel stream join with as many
/// as 512 join cores and window sizes as large as 2^18." (Fig. 14c)
#[test]
fn v7_ceiling_is_512_cores_at_2_18() {
    let max = DesignParams::new(FlowModel::UniFlow, 512, 1 << 18)
        .with_network(NetworkKind::Scalable);
    assert!(max.synthesize(&XC7VX485T).is_ok());
    let beyond_window = DesignParams::new(FlowModel::UniFlow, 512, 1 << 19)
        .with_network(NetworkKind::Scalable);
    assert!(beyond_window.synthesize(&XC7VX485T).is_err());
    // Every window of Fig. 14c's sweep is realizable.
    for exp in 11..=18u32 {
        let p = DesignParams::new(FlowModel::UniFlow, 512, 1usize << exp)
            .with_network(NetworkKind::Scalable);
        assert!(p.synthesize(&XC7VX485T).is_ok(), "512 cores @ 2^{exp}");
    }
}

/// "As a result of having more join cores and a higher clock frequency, we
/// see acceleration of around two orders of magnitude when we utilize a
/// window size of 2^13 compared to the realization on Virtex-5."
#[test]
fn v7_is_two_orders_over_v5_at_2_13() {
    let v5 = uniflow_throughput_model(1 << 13, 16, 100.0);
    let v7 = uniflow_throughput_model(1 << 13, 512, 300.0);
    let ratio = v7 / v5;
    assert!(
        (50.0..200.0).contains(&ratio),
        "V7/V5 ratio {ratio:.0} not ~two orders of magnitude"
    );
}

/// "…consumed 1647.53 mW and 800.35 mW power for parallel stream join
/// based on bi-flow and uni-flow, respectively … more than 50% power
/// saving."
#[test]
fn power_claim() {
    let clock = Frequency::from_mhz(100.0);
    let model = PowerModel::calibrated();
    let uni = DesignParams::new(FlowModel::UniFlow, 16, 1 << 13);
    let bi = DesignParams::new(FlowModel::BiFlow, 16, 1 << 13);
    let p_uni = model
        .report(&XC5VLX50T, uni.resources(&XC5VLX50T), clock, uni.activity())
        .total_mw();
    let p_bi = model
        .report(&XC5VLX50T, bi.resources(&XC5VLX50T), clock, bi.activity())
        .total_mw();
    assert!((p_uni - 800.35).abs() < 4.0, "uni-flow power {p_uni:.2}");
    assert!((p_bi - 1647.53).abs() < 8.0, "bi-flow power {p_bi:.2}");
    assert!(p_uni < 0.5 * p_bi, "saving must exceed 50%");
}

/// "For the realization on our Virtex-5 FPGA, we do not see any
/// significant drop … we even see an increase in the clock frequency when
/// utilizing 16 join cores." / "the clock frequency of the lightweight
/// version drops as we increase the number of join cores … For the
/// scalable … no significant variations." (Fig. 17)
#[test]
fn clock_frequency_claims() {
    let fmax = |device, params: DesignParams| {
        estimate_fmax(device, &params.timing_profile()).mhz()
    };
    // V5: flat with a bump at 16.
    let v5 = |n| fmax(&XC5VLX50T, DesignParams::new(FlowModel::UniFlow, n, 1 << 13));
    assert!(v5(16) > v5(8), "V5 bump at 16 cores");
    assert!((v5(2) - v5(8)).abs() / v5(2) < 0.10, "V5 flat 2..8");
    // V7 lightweight: monotone-ish decline, ~200 MHz at 512.
    let v7 = |n| fmax(&XC7VX485T, DesignParams::new(FlowModel::UniFlow, n, 1 << 18));
    assert!(v7(512) < 0.7 * v7(2), "V7 lightweight must drop substantially");
    assert!((180.0..230.0).contains(&v7(512)));
    // V7 scalable: flat at ~300 for every size.
    for exp in 1..=9u32 {
        let p = DesignParams::new(FlowModel::UniFlow, 1 << exp, 1 << 18)
            .with_network(NetworkKind::Scalable);
        let f = fmax(&XC7VX485T, p);
        assert!((295.0..310.0).contains(&f), "V7s at 2^{exp} cores: {f:.1}");
    }
}
