//! Determinism: a measurement is a pure function of its configuration and
//! seed. Repeating a run — on the same engine, on engines with different
//! thread counts, or on a host-sized pool — must reproduce the exact same
//! `ThroughputRun` / `LatencyRun`, field for field. Parallel scheduling
//! must not leak nondeterminism into the simulated machine.

mod common;

use accel_landscape::hwsim::{ParSimulator, Simulator};
use accel_landscape::joinhw::harness::{
    build, prefill_planted, prefill_steady_state, run_latency_with, run_throughput_with,
    LatencyRun, ThroughputRun,
};
use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};
use accel_landscape::streamcore::{StreamTag, Tuple};

fn throughput_on(params: &DesignParams, threads: Option<usize>) -> ThroughputRun {
    let mut join = build(params);
    prefill_steady_state(join.as_mut(), params.window_size);
    match threads {
        None => run_throughput_with(&mut Simulator::new(), join.as_mut(), 96, 1 << 20),
        Some(t) => run_throughput_with(
            &mut ParSimulator::new(t),
            join.as_mut(),
            96,
            1 << 20,
        ),
    }
}

fn latency_on(params: &DesignParams, threads: Option<usize>) -> LatencyRun {
    let mut join = build(params);
    prefill_planted(join.as_mut(), params, 5);
    let probe = (StreamTag::R, Tuple::new(5, u32::MAX));
    let run = match threads {
        None => run_latency_with(&mut Simulator::new(), join.as_mut(), probe, 1_000_000),
        Some(t) => run_latency_with(
            &mut ParSimulator::new(t),
            join.as_mut(),
            probe,
            1_000_000,
        ),
    };
    run.expect("probe quiesces")
}

#[test]
fn throughput_runs_are_deterministic_across_repeats_and_threads() {
    for flow in [FlowModel::UniFlow, FlowModel::BiFlow] {
        let params = DesignParams::new(flow, 4, 1 << 6);
        let reference = throughput_on(&params, None);
        // Repeats on the same engine.
        for _ in 0..3 {
            assert_eq!(reference, throughput_on(&params, None), "{flow:?} repeat");
        }
        // Every thread count, including 0 = auto (honors ACCEL_THREADS,
        // the CI matrix knob) — each run twice.
        for threads in [1usize, 2, 4, 8, 0] {
            assert_eq!(
                reference,
                throughput_on(&params, Some(threads)),
                "{flow:?} at {threads} threads"
            );
            assert_eq!(
                reference,
                throughput_on(&params, Some(threads)),
                "{flow:?} at {threads} threads, repeat"
            );
        }
    }
}

#[test]
fn latency_runs_are_deterministic_across_repeats_and_threads() {
    let params = DesignParams::new(FlowModel::UniFlow, 8, 1 << 7)
        .with_network(NetworkKind::Scalable);
    let reference = latency_on(&params, None);
    for _ in 0..3 {
        assert_eq!(reference, latency_on(&params, None), "sequential repeat");
    }
    for threads in [1usize, 2, 4, 8, 0] {
        assert_eq!(reference, latency_on(&params, Some(threads)), "{threads} threads");
        assert_eq!(
            reference,
            latency_on(&params, Some(threads)),
            "{threads} threads, repeat"
        );
    }
}

#[test]
fn full_result_streams_are_reproducible() {
    // Beyond the summary structs: the exact drained result sequence of a
    // randomized workload is identical run over run at mixed thread
    // counts.
    let params = DesignParams::new(FlowModel::UniFlow, 4, 1 << 5);
    let inputs = common::workload(80, 8, 0xFEED_FACE);
    let run = |threads: usize| -> Vec<_> {
        let mut join = build(&params);
        let mut engine = ParSimulator::new(threads);
        let mut idx = 0usize;
        let mut out = Vec::new();
        use accel_landscape::hwsim::{Control, Engine};
        engine.run_driven(join.as_mut(), 1_000_000, &mut |join, _| {
            out.extend(join.drain_results());
            if idx == inputs.len() {
                if join.quiescent() {
                    return Control::Stop;
                }
            } else {
                let (tag, tuple) = inputs[idx];
                if join.offer(tag, tuple) {
                    idx += 1;
                }
            }
            Control::Continue
        });
        out.extend(join.drain_results());
        out
    };
    let reference = run(1);
    assert!(!reference.is_empty(), "workload should produce matches");
    for threads in [1, 2, 4, 8] {
        assert_eq!(reference, run(threads), "{threads} threads");
    }
}
