//! Cross-engine equivalence: the parallel simulation layer must be
//! *cycle-exact* — for any design configuration and workload, driving the
//! design with `hwsim::ParSimulator` at any thread count produces the
//! same cycle counts, the same accepted-tuple counts, and the same result
//! stream (order included) as the sequential `hwsim::Simulator`.
//!
//! Randomized configurations sweep both flow models, both network kinds,
//! core counts, window sizes, and workload seeds; every configuration is
//! run at 1, 2, 4, and 8 threads.

mod common;

use accel_landscape::hwsim::{Control, Engine, ParSimulator, Simulator};
use accel_landscape::joinhw::harness::{
    build, prefill_planted, prefill_steady_state, run_latency_with, run_throughput_with,
    StreamJoin,
};
use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};
use accel_landscape::streamcore::{MatchPair, StreamTag, Tuple};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Drives `inputs` through the design until quiescence, collecting every
/// drained result in drain order — the full observable behavior of a run.
fn drive_collect<E: Engine>(
    engine: &mut E,
    join: &mut dyn StreamJoin,
    inputs: &[(StreamTag, Tuple)],
) -> (u64, u64, Vec<MatchPair>) {
    let mut idx = 0usize;
    let mut out = Vec::new();
    let stopped = engine.run_driven(join, 1_000_000, &mut |join, _| {
        out.extend(join.drain_results());
        if idx == inputs.len() {
            if join.quiescent() {
                return Control::Stop;
            }
        } else {
            let (tag, tuple) = inputs[idx];
            if join.offer(tag, tuple) {
                idx += 1;
            }
        }
        Control::Continue
    });
    assert!(stopped, "design failed to quiesce within the cycle budget");
    out.extend(join.drain_results());
    (engine.cycle(), join.accepted_tuples(), out)
}

fn params_for(
    flow: FlowModel,
    cores: u32,
    window: usize,
    scalable: bool,
) -> DesignParams {
    // Scalable (tree) networks require the core count to be a power of
    // the fan-out; other configurations use the lightweight network.
    let network = if scalable && cores.is_power_of_two() {
        NetworkKind::Scalable
    } else {
        NetworkKind::Lightweight
    };
    DesignParams::new(flow, cores, window).with_network(network)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    /// Full-run observable equivalence on a randomized workload: cycles,
    /// accepted tuples, and the exact result stream all match the
    /// sequential engine at every thread count.
    fn workload_runs_are_engine_invariant(
        uni in any::<bool>(),
        cores in prop::sample::select(vec![1u32, 2, 3, 4, 8]),
        wexp in prop::sample::select(vec![4u32, 5, 6]),
        scalable in any::<bool>(),
        tuples in 20usize..100,
        domain in prop::sample::select(vec![4u32, 16, 64]),
        seed in 0u64..1 << 32,
    ) {
        let flow = if uni { FlowModel::UniFlow } else { FlowModel::BiFlow };
        let params = params_for(flow, cores, 1 << wexp, scalable);
        let inputs = common::workload(tuples, domain, seed);

        let mut join = build(&params);
        let reference = drive_collect(&mut Simulator::new(), join.as_mut(), &inputs);

        for threads in THREAD_COUNTS {
            let mut join = build(&params);
            let got =
                drive_collect(&mut ParSimulator::new(threads), join.as_mut(), &inputs);
            prop_assert_eq!(
                &reference, &got,
                "engine divergence at {} threads ({:?})", threads, &params
            );
        }
    }

    #[test]
    /// The saturation-throughput harness reports identical runs on every
    /// engine.
    fn throughput_runs_are_engine_invariant(
        uni in any::<bool>(),
        cores in prop::sample::select(vec![1u32, 2, 4, 8]),
        wexp in prop::sample::select(vec![4u32, 6]),
        tuples in 16u64..80,
    ) {
        let flow = if uni { FlowModel::UniFlow } else { FlowModel::BiFlow };
        let params = params_for(flow, cores, 1 << wexp, false);

        let mut join = build(&params);
        prefill_steady_state(join.as_mut(), params.window_size);
        let reference =
            run_throughput_with(&mut Simulator::new(), join.as_mut(), tuples, 1 << 20);

        for threads in THREAD_COUNTS {
            let mut join = build(&params);
            prefill_steady_state(join.as_mut(), params.window_size);
            let got = run_throughput_with(
                &mut ParSimulator::new(threads),
                join.as_mut(),
                tuples,
                1 << 20,
            );
            prop_assert_eq!(reference, got, "threads {}", threads);
        }
    }

    #[test]
    /// The latency harness (planted matches, one probe) reports identical
    /// runs on every engine.
    fn latency_runs_are_engine_invariant(
        cores in prop::sample::select(vec![1u32, 2, 4, 8]),
        wexp in prop::sample::select(vec![5u32, 6, 7]),
        scalable in any::<bool>(),
    ) {
        let params = params_for(FlowModel::UniFlow, cores, 1 << wexp, scalable);
        let probe = (StreamTag::R, Tuple::new(7, u32::MAX));

        let mut join = build(&params);
        prefill_planted(join.as_mut(), &params, 7);
        let reference =
            run_latency_with(&mut Simulator::new(), join.as_mut(), probe, 1_000_000);
        prop_assert!(reference.is_some());

        for threads in THREAD_COUNTS {
            let mut join = build(&params);
            prefill_planted(join.as_mut(), &params, 7);
            let got = run_latency_with(
                &mut ParSimulator::new(threads),
                join.as_mut(),
                probe,
                1_000_000,
            );
            prop_assert_eq!(reference, got, "threads {}", threads);
        }
    }
}
