//! Per-shard utilization accounting of the parallel simulation engine on
//! a real join design: after any run, every worker's cycle ledger must
//! balance — `busy_cycles + wait_cycles == ParStats::cycles` — at every
//! thread count, and the report must publish cleanly into a registry.

use accel_landscape::hwsim::{ParSimulator, ParStats};
use accel_landscape::joinhw::harness::{build, prefill_steady_state, run_throughput_with};
use accel_landscape::joinhw::{DesignParams, FlowModel, NetworkKind};
use accel_landscape::obs;

fn run_and_take_stats(threads: usize) -> ParStats {
    let params = DesignParams::new(FlowModel::UniFlow, 8, 1 << 6)
        .with_network(NetworkKind::Scalable);
    let mut join = build(&params);
    prefill_steady_state(join.as_mut(), params.window_size);
    let mut sim = ParSimulator::new(threads);
    run_throughput_with(&mut sim, join.as_mut(), 64, 1 << 20);
    sim.take_stats().expect("run records stats")
}

#[test]
fn busy_and_wait_cycles_sum_to_run_cycles_at_every_thread_count() {
    for threads in [1usize, 2, 4] {
        let stats = run_and_take_stats(threads);
        assert_eq!(stats.threads, threads, "engine honors its thread budget");
        assert!(stats.cycles > 0, "throughput run advances the clock");
        assert_eq!(
            stats.workers.len(),
            threads,
            "one ledger per worker (the driving thread included)"
        );
        for (i, w) in stats.workers.iter().enumerate() {
            assert_eq!(
                w.busy_cycles + w.wait_cycles,
                stats.cycles,
                "worker {i} of {threads}: every cycle is busy or waiting"
            );
        }
        if threads > 1 {
            // The design decomposes into shards; a saturated run keeps
            // every worker busy on most cycles.
            let executed: u64 = stats.workers.iter().map(|w| w.shards_executed).sum();
            assert!(executed > 0, "parallel run executed shard phases");
        }
    }
}

#[test]
fn stats_publish_per_worker_keys_into_a_registry() {
    let stats = run_and_take_stats(2);
    let mut reg = obs::Registry::new();
    stats.observe(&mut reg, "par.");
    assert_eq!(reg.get("par.threads"), Some(2));
    assert_eq!(reg.get("par.cycles"), Some(stats.cycles));
    for i in 0..2 {
        let busy = reg.get(&format!("par.worker.{i}.busy_cycles")).unwrap();
        let wait = reg.get(&format!("par.worker.{i}.wait_cycles")).unwrap();
        assert_eq!(busy + wait, stats.cycles);
    }
}
