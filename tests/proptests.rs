//! Property-based tests over the core data structures and the headline
//! correctness invariant: every join realization agrees with the strict
//! reference on arbitrary workloads.

mod common;

use accel_landscape::hwsim::{Fifo, Simulator};
use accel_landscape::joinhw::uniflow::UniFlowJoin;
use accel_landscape::joinhw::{DesignParams, FlowModel, JoinOperator, JoinPredicate};
use accel_landscape::joinsw::baseline::reference_join;
use accel_landscape::joinsw::splitjoin::{SplitJoin, SplitJoinConfig};
use accel_landscape::streamcore::{Field, Schema, SlidingWindow, StreamTag, Tuple};
use proptest::prelude::*;

use common::as_multiset;

fn arb_inputs(max_len: usize, domain: u32) -> impl Strategy<Value = Vec<(StreamTag, Tuple)>> {
    prop::collection::vec(
        (any::<bool>(), 0..domain, any::<u32>()).prop_map(|(is_r, key, payload)| {
            let tag = if is_r { StreamTag::R } else { StreamTag::S };
            (tag, Tuple::new(key, payload))
        }),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The hardware uni-flow design implements strict join semantics on
    /// arbitrary input interleavings, including expiry.
    #[test]
    fn uniflow_hw_matches_reference(inputs in arb_inputs(120, 6), cores in 1u32..5) {
        let window = 16usize;
        let params = DesignParams::new(FlowModel::UniFlow, cores, window);
        let mut join = UniFlowJoin::new(&params);
        join.program(JoinOperator::equi(cores));
        let mut sim = Simulator::new();
        let mut idx = 0;
        while idx < inputs.len() {
            let (tag, t) = inputs[idx];
            if join.offer(tag, t) {
                idx += 1;
            }
            sim.step(&mut join);
            prop_assert!(sim.cycle() < 2_000_000, "stalled");
        }
        prop_assert!(sim.run_until(&mut join, 2_000_000, |j| j.quiescent()));
        // Effective window: cores x ceil(window/cores).
        let effective = cores as usize * window.div_ceil(cores as usize);
        let want = reference_join(&inputs, effective, JoinPredicate::Equi);
        prop_assert_eq!(as_multiset(&join.drain_results()), as_multiset(&want));
    }

    /// The multithreaded software SplitJoin implements strict semantics.
    #[test]
    fn splitjoin_sw_matches_reference(inputs in arb_inputs(200, 8), cores in 1usize..5) {
        let window = 24usize;
        let join = SplitJoin::spawn(SplitJoinConfig::new(cores, window));
        for &(tag, t) in &inputs {
            join.process(tag, t).unwrap();
        }
        join.flush().unwrap();
        let got = join.shutdown().unwrap().results;
        let effective = cores * window.div_ceil(cores);
        let want = reference_join(&inputs, effective, JoinPredicate::Equi);
        prop_assert_eq!(as_multiset(&got), as_multiset(&want));
    }

    /// A sliding window always retains exactly the most recent `min(n, W)`
    /// inserts, in order.
    #[test]
    fn sliding_window_keeps_newest(cap in 1usize..20, values in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut w = SlidingWindow::new(cap);
        for &v in &values {
            w.insert(v);
        }
        let kept: Vec<u32> = w.iter().copied().collect();
        let start = values.len().saturating_sub(cap);
        prop_assert_eq!(&kept[..], &values[start..]);
        prop_assert!(w.len() <= cap);
    }

    /// FIFO elements come out exactly once, in push order, across random
    /// sequences of clocked pushes and pops.
    #[test]
    fn fifo_is_order_preserving_and_lossless(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut fifo: Fifo<u32> = Fifo::new(4);
        let mut pushed = Vec::new();
        let mut popped = Vec::new();
        let mut next = 0u32;
        for &do_push in &ops {
            fifo.begin_cycle();
            if do_push && fifo.can_push() {
                fifo.push(next).unwrap();
                pushed.push(next);
                next += 1;
            }
            if !do_push {
                if let Some(v) = fifo.pop() {
                    popped.push(v);
                }
            }
            fifo.commit();
        }
        // Drain the remainder.
        fifo.begin_cycle();
        while let Some(v) = fifo.pop() {
            popped.push(v);
        }
        prop_assert_eq!(popped, pushed);
    }

    /// Operator instructions decode back to what was encoded.
    #[test]
    fn operator_encoding_round_trips(cores in 1u32..1025, delta in any::<u32>(), kind in 0u8..4) {
        let predicate = match kind {
            0 => JoinPredicate::Equi,
            1 => JoinPredicate::Band { delta },
            2 => JoinPredicate::LessThan,
            _ => JoinPredicate::All,
        };
        let op = JoinOperator { num_cores: cores, predicate };
        prop_assert_eq!(JoinOperator::decode(op.encode()).unwrap(), op);
    }

    /// Schema vertical partitioning covers every field exactly once and
    /// respects the segment budget.
    #[test]
    fn schema_segments_partition_fields(widths in prop::collection::vec(1u8..33, 1..12), budget in 33u32..128) {
        let fields: Vec<Field> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| Field::new(format!("f{i}"), w).unwrap())
            .collect();
        let schema = Schema::new(fields).unwrap();
        let segments = schema.segments(budget).unwrap();
        // Coverage: the segments concatenate to 0..arity.
        let mut covered = Vec::new();
        for s in &segments {
            prop_assert!(!s.is_empty());
            let bits: u32 = schema.fields()[s.clone()]
                .iter()
                .map(|f| f.width_bits() as u32)
                .sum();
            prop_assert!(bits <= budget);
            covered.extend(s.clone());
        }
        prop_assert_eq!(covered, (0..schema.arity()).collect::<Vec<_>>());
    }

    /// Workload generation is a pure function of the spec.
    #[test]
    fn workload_is_deterministic(seed in any::<u64>(), n in 1usize..200) {
        use accel_landscape::streamcore::workload::{KeyDist, WorkloadSpec};
        let spec = WorkloadSpec::new(n, KeyDist::Uniform { domain: 32 }).with_seed(seed);
        let a: Vec<_> = spec.generate().collect();
        let b: Vec<_> = spec.generate().collect();
        prop_assert_eq!(a, b);
    }

    /// The query parser never panics, on any input string.
    #[test]
    fn query_parser_is_total(input in ".{0,200}") {
        use accel_landscape::fqp::query::Query;
        let _ = Query::parse(&input);
    }

    /// A precomputed truth table agrees with direct Boolean evaluation on
    /// every record — the Ibex-style compilation is semantics-preserving.
    #[test]
    fn truth_table_select_equals_direct_evaluation(
        records in prop::collection::vec((0u64..10, 0u64..10, 0u64..10), 1..60),
        thresholds in (0u64..10, 0u64..10, 0u64..10),
    ) {
        use accel_landscape::fqp::opblock::{BlockId, BlockProgram, OpBlock, Port};
        use accel_landscape::fqp::plan::{bind, Catalog, PlanOp};
        use accel_landscape::fqp::query::Query;
        use accel_landscape::streamcore::Record;

        let mut catalog = Catalog::new();
        catalog.register(
            "s",
            Schema::new(vec![
                Field::new("a", 8).unwrap(),
                Field::new("b", 8).unwrap(),
                Field::new("c", 8).unwrap(),
            ])
            .unwrap(),
        );
        let (ta, tb, tc) = thresholds;
        let text = format!(
            "SELECT * FROM s WHERE (a > {ta} OR NOT b > {tb}) AND NOT (c > {tc} AND a > {tb})"
        );
        let query = Query::parse(&text).unwrap();
        let expr = query.where_expr.clone().expect("non-conjunctive clause");
        let plan = bind(&query, &catalog).unwrap();
        let PlanOp::SelectTable { atoms, table } = &plan.ops[0] else {
            panic!("expected truth-table select");
        };

        let mut block = OpBlock::new(BlockId(0));
        block.reprogram(BlockProgram::TruthTableSelect {
            atoms: atoms.clone(),
            table: table.clone(),
        });
        for (a, b, c) in records {
            let rec = Record::new(vec![a, b, c]);
            // Direct evaluation of the expression on this record.
            let outcomes: Vec<bool> = expr
                .atoms()
                .iter()
                .map(|cond| {
                    let idx = ["a", "b", "c"]
                        .iter()
                        .position(|n| *n == cond.field)
                        .unwrap();
                    cond.op.eval(rec.values()[idx], cond.value)
                })
                .collect();
            let want = expr.eval_with(&outcomes);
            let got = !block.process(Port::Left, rec).is_empty();
            prop_assert_eq!(got, want, "record mismatch under {}", text);
        }
    }

    /// Queries that do parse render to text that re-parses to the same
    /// AST (display/parse round-trip on a generated query space).
    #[test]
    fn parsed_queries_round_trip(
        has_where in any::<bool>(),
        has_join in any::<bool>(),
        window in 1usize..10_000,
        value in any::<u32>(),
    ) {
        use accel_landscape::fqp::query::Query;
        let mut text = String::from("SELECT * FROM customers");
        if has_where {
            text.push_str(&format!(" WHERE age > {value}"));
        }
        if has_join {
            text.push_str(&format!(" JOIN products ON product_id WINDOW {window}"));
        }
        let q = Query::parse(&text).unwrap();
        prop_assert_eq!(Query::parse(&q.to_string()).unwrap(), q);
    }

    /// The hash window retains exactly the same tuples as the nested
    /// sub-window across arbitrary store sequences, and its buckets agree
    /// with a linear scan.
    #[test]
    fn hash_window_equals_subwindow(
        cap in 1usize..16,
        keys in prop::collection::vec(0u32..8, 0..80),
    ) {
        use accel_landscape::joinhw::{HashWindow, SubWindow};
        let mut hash = HashWindow::new(cap);
        let mut nested = SubWindow::new(cap);
        for (i, &k) in keys.iter().enumerate() {
            let t = Tuple::new(k, i as u32);
            hash.store(t);
            nested.begin_cycle();
            nested.store(t);
        }
        prop_assert_eq!(hash.snapshot(), nested.snapshot());
        for probe in 0u32..8 {
            let scan: Vec<Tuple> = nested
                .snapshot()
                .into_iter()
                .filter(|t| t.key() == probe)
                .collect();
            prop_assert_eq!(hash.bucket_len(probe), scan.len());
            for (i, want) in scan.iter().enumerate() {
                prop_assert_eq!(hash.bucket_read(probe, i), *want);
            }
        }
    }

    /// QueryManager deploy/undeploy sequences keep the fabric consistent:
    /// surviving queries keep producing correct results and fully
    /// undeploying returns every block to the pool.
    #[test]
    fn query_manager_lifecycle_is_consistent(ops in prop::collection::vec(any::<bool>(), 1..12)) {
        use accel_landscape::fqp::manager::QueryManager;
        use accel_landscape::fqp::plan::{bind, Catalog};
        use accel_landscape::fqp::query::Query;
        use accel_landscape::streamcore::{Field, Record, Schema};

        let mut catalog = Catalog::new();
        catalog
            .register("s", Schema::new(vec![Field::new("v", 32).unwrap()]).unwrap());
        // Two plans sharing a select prefix.
        let p1 = bind(&Query::parse("SELECT * FROM s WHERE v > 10").unwrap(), &catalog).unwrap();
        let p2 = bind(&Query::parse("SELECT v FROM s WHERE v > 10").unwrap(), &catalog).unwrap();

        let mut mgr = QueryManager::new(6);
        let mut live = Vec::new();
        let mut counter = 0u64;
        for &deploy in &ops {
            if deploy {
                let plan = if counter.is_multiple_of(2) { &p1 } else { &p2 };
                if let Ok(id) = mgr.deploy(plan) {
                    live.push(id);
                }
                counter += 1;
            } else if let Some(id) = live.pop() {
                mgr.undeploy(id).unwrap();
            }
            // Every surviving query still answers correctly.
            if !live.is_empty() {
                mgr.push("s", Record::new(vec![50])).unwrap();
                mgr.push("s", Record::new(vec![5])).unwrap();
                for &id in &live {
                    prop_assert_eq!(mgr.take_results(id).unwrap().len(), 1);
                }
            }
        }
        for id in live {
            mgr.undeploy(id).unwrap();
        }
        prop_assert_eq!(mgr.fabric().idle_blocks(), 6);
        prop_assert_eq!(mgr.sharing_report().queries, 0);
    }
}
