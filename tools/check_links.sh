#!/usr/bin/env bash
# Checks that every intra-repo markdown link in the given files points
# at something that exists. External links (http/https/mailto) and
# pure-anchor links are skipped; a `path#anchor` link is checked for the
# path only. Exits non-zero listing every broken link.
#
# Usage: tools/check_links.sh FILE.md [FILE.md ...]
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -eq 0 ]; then
    echo "usage: $0 FILE.md [FILE.md ...]" >&2
    exit 2
fi

status=0
for file in "$@"; do
    if [ ! -f "$file" ]; then
        echo "BROKEN: $file (file itself is missing)"
        status=1
        continue
    fi
    dir=$(dirname "$file")
    # Inline links only: [text](target). Reference-style links are not
    # used in this repo.
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "BROKEN: $file -> $target"
            status=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//; s/ .*//')
done

if [ "$status" -ne 0 ]; then
    echo "broken intra-repo links found" >&2
else
    echo "all intra-repo links resolve"
fi
exit "$status"
