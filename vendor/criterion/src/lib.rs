//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the authoring surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`](Criterion::benchmark_group),
//! [`Bencher::iter`], [`Bencher::iter_batched`], `criterion_group!`,
//! `criterion_main!` — but measures with a plain wall-clock loop and
//! prints median ns/iteration. No statistics engine, plots, or saved
//! baselines; the figure binaries in `crates/bench` are the repo's real
//! measurement path, and these micro-benches are smoke-level.
//!
//! Respects `--test` (run every routine once, as `cargo test --benches`
//! does) and treats the first free argument as a substring filter, like
//! the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped in [`Bencher::iter_batched`]; only the
/// granularity hint, timing ignores it beyond batch sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; batches of a few thousand iterations.
    SmallInput,
    /// Large setup output; one iteration per setup call.
    LargeInput,
    /// Exactly one iteration per setup call.
    PerIteration,
}

impl BatchSize {
    fn iters_per_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 256,
            BatchSize::LargeInput | BatchSize::PerIteration => 1,
        }
    }
}

/// Drives one benchmark routine's timing loop.
pub struct Bencher {
    test_mode: bool,
    measure: Duration,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine` in a repeat-until-deadline loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.ns_per_iter = 0.0;
            return;
        }
        // Calibrate a batch size that lasts ≳100µs so Instant overhead
        // stays below ~1%.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            if start.elapsed() >= Duration::from_micros(100) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let deadline = Instant::now() + self.measure;
        let mut samples = Vec::new();
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.ns_per_iter = median(&mut samples);
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            self.ns_per_iter = 0.0;
            return;
        }
        let per_batch = size.iters_per_batch();
        let deadline = Instant::now() + self.measure;
        let mut samples = Vec::new();
        while Instant::now() < deadline {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        self.ns_per_iter = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

/// The benchmark manager: registers and runs benchmark functions.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measure: Duration,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            measure: Duration::from_millis(200),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`--test`, a substring filter), as
    /// the real crate's `configure_from_args` does.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "--verbose" => {}
                "--measurement-time" => {
                    if let Some(secs) = args.next().and_then(|v| v.parse::<f64>().ok()) {
                        self.measure = Duration::from_secs_f64(secs);
                    }
                }
                other if !other.starts_with('-') && self.filter.is_none() => {
                    self.filter = Some(other.to_string());
                }
                _ => {}
            }
        }
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            measure: self.measure,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {id} ... ok");
        } else {
            println!("{id:<50} time: {:>12.1} ns/iter", bencher.ns_per_iter);
            self.results.push((id.to_string(), bencher.ns_per_iter));
        }
    }

    /// Measured `(id, median ns/iter)` pairs, in run order. Empty in test
    /// mode. The real crate persists these to `target/criterion/`; this
    /// stand-in exposes them so callers can archive them (the workspace's
    /// microbench writes them into a run manifest).
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }

    /// Benchmarks a single routine under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        self.run_one(&id, f);
    }

    /// Opens a named group; member benchmark ids are prefixed with the
    /// group name.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks a routine under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&id, f);
    }

    /// Ends the group (kept for API parity; nothing to flush here).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            measure: Duration::from_millis(5),
            results: Vec::new(),
        };
        let mut captured = 0.0;
        c.bench_function("spin", |b| {
            b.iter(|| std::hint::black_box((0..100u64).sum::<u64>()));
            captured = b.ns_per_iter;
        });
        assert!(captured > 0.0, "got {captured}");
    }

    #[test]
    fn batched_runs_setup_per_input() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            measure: Duration::from_millis(1),
            results: Vec::new(),
        };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("absent-name".into()),
            measure: Duration::from_millis(1),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("member", |_b| ran = true);
        group.finish();
        assert!(!ran, "filter should have excluded the benchmark");
    }
}
