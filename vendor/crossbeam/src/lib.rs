//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset of `crossbeam::channel` the software join
//! implementations use: bounded/unbounded MPMC channels with disconnect
//! semantics and a blocking `select!` over `recv` arms. Built on
//! `std::sync::{Mutex, Condvar}` rather than crossbeam's lock-free
//! internals — the software baselines here measure algorithmic costs
//! (comparisons, window maintenance), not channel microarchitecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer channels, mirroring
/// `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like the real crate: don't require `T: Debug`.
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Sender::send_timeout`]; carries the unsent
    /// message either way.
    #[derive(PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The channel stayed full for the whole timeout.
        Timeout(T),
        /// Every receiver was dropped.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "SendTimeoutError::Timeout(..)"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "SendTimeoutError::Disconnected(..)")
                }
            }
        }
    }

    impl<T> std::fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => write!(f, "timed out sending on a full channel"),
                SendTimeoutError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The channel stayed empty for the whole timeout.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out receiving on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }

    /// Creates a channel holding at most `capacity` in-flight messages;
    /// `send` blocks when full (back-pressure).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(capacity))
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender { shared: Arc::clone(&shared) },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, or returns it in
        /// [`SendError`] if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = state
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .expect("channel poisoned");
            }
        }

        /// Like [`Sender::send`], but gives up once `timeout` has elapsed
        /// with the channel still full, returning the message in
        /// [`SendTimeoutError::Timeout`] so the caller can retry (the
        /// supervised-send/backoff path of the software joins).
        pub fn send_timeout(
            &self,
            value: T,
            timeout: std::time::Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                let full = state
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()).filter(|d| !d.is_zero()) else {
                    return Err(SendTimeoutError::Timeout(value));
                };
                let (guard, result) = self
                    .shared
                    .not_full
                    .wait_timeout(state, remaining)
                    .expect("channel poisoned");
                state = guard;
                if result.timed_out() {
                    // Re-check once under the lock, then give up.
                    if state.receivers == 0 {
                        return Err(SendTimeoutError::Disconnected(value));
                    }
                    let full = state
                        .capacity
                        .is_some_and(|cap| state.queue.len() >= cap);
                    if !full {
                        state.queue.push_back(value);
                        self.shared.not_empty.notify_one();
                        return Ok(());
                    }
                    return Err(SendTimeoutError::Timeout(value));
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, or returns [`RecvError`] once
        /// the channel is empty with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .expect("channel poisoned");
            }
        }

        /// Like [`Receiver::recv`], but gives up once `timeout` has
        /// elapsed with the channel still empty (used by flush-ack loops
        /// that must keep checking peer liveness instead of blocking
        /// forever).
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()).filter(|d| !d.is_zero()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel poisoned");
                state = guard;
                if result.timed_out() {
                    if let Some(value) = state.queue.pop_front() {
                        self.shared.not_full.notify_one();
                        return Ok(value);
                    }
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    pub use crate::select;
}

/// Blocks until one of the `recv(receiver) -> pattern => arm` clauses can
/// run: a message (`Ok`) or a disconnect (`Err`) on that receiver.
///
/// Implemented by fair polling over the listed receivers with a
/// yield-then-sleep backoff, which preserves crossbeam's semantics (the
/// software joins only rely on "block until any lane has input or closes",
/// not on wakeup ordering).
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $res:pat => $arm:expr),+ $(,)?) => {{
        let mut __spins: u32 = 0;
        loop {
            $(
                match ($rx).try_recv() {
                    ::std::result::Result::Ok(__v) => {
                        let $res = ::std::result::Result::<_, $crate::channel::RecvError>::Ok(__v);
                        break $arm;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                        let $res = ::std::result::Result::<_, $crate::channel::RecvError>::Err(
                            $crate::channel::RecvError,
                        );
                        break $arm;
                    }
                    ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
            )+
            __spins += 1;
            if __spins < 64 {
                ::std::thread::yield_now();
            } else {
                ::std::thread::sleep(::std::time::Duration::from_micros(50));
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{
        bounded, unbounded, RecvError, RecvTimeoutError, SendError, SendTimeoutError,
    };
    use std::time::Duration;

    #[test]
    fn round_trip_and_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_applies_backpressure() {
        let (tx, rx) = bounded(4);
        let producer = std::thread::spawn(move || {
            for i in 0..1_000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got.len(), 1_000);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn send_timeout_returns_the_message_on_a_full_channel() {
        let (tx, _rx) = bounded(1);
        tx.send(1).unwrap();
        match tx.send_timeout(2, Duration::from_millis(10)) {
            Err(SendTimeoutError::Timeout(v)) => assert_eq!(v, 2),
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn send_timeout_succeeds_once_a_slot_frees_up() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            // Keep `rx` alive past the recv: dropping it immediately would
            // race the woken sender into observing a disconnect instead.
            let first = rx.recv().unwrap();
            (first, rx)
        });
        tx.send_timeout(2, Duration::from_secs(5)).unwrap();
        let (first, rx) = drainer.join().unwrap();
        assert_eq!(first, 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn send_timeout_reports_disconnect() {
        let (tx, rx) = bounded(1);
        drop(rx);
        match tx.send_timeout(9, Duration::from_millis(10)) {
            Err(SendTimeoutError::Disconnected(v)) => assert_eq!(v, 9),
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn select_reads_whichever_lane_is_ready() {
        let (atx, arx) = unbounded::<u32>();
        let (btx, brx) = unbounded::<u32>();
        let pick = || crate::channel::select! {
            recv(arx) -> m => (m.ok(), true),
            recv(brx) -> m => (m.ok(), false),
        };
        // A empty but open, B has a message: select must not block on A.
        btx.send(2).unwrap();
        assert_eq!(pick(), (Some(2), false));
        atx.send(1).unwrap();
        assert_eq!(pick(), (Some(1), true));
        // Both disconnected: the first listed lane reports it (select
        // polls arms in order; callers track per-lane open flags).
        drop(atx);
        drop(btx);
        assert_eq!(pick(), (None, true));
    }
}
