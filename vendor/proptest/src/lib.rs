//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds hermetically, so the property-testing surface the
//! test suite actually uses is vendored here: the [`strategy::Strategy`]
//! trait with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! `collection::vec`, `sample::select`, `any`, the `proptest!` /
//! `prop_assert*` / `prop_oneof!` macros, and `ProptestConfig::with_cases`.
//!
//! Two deliberate departures from the real crate:
//!
//! * **No shrinking.** A failing case reports its inputs via the assertion
//!   message (every `prop_assert*` site in this repo formats the relevant
//!   values) instead of minimizing them.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so a failure reproduces exactly on every run
//!   and host — which the golden-fixture and CI workflows rely on.

#![forbid(unsafe_code)]

/// Test-runner plumbing: the RNG handed to strategies, the per-block
/// configuration, and the error type assertion macros return.
pub mod test_runner {
    use rand::{Rng, SeedableRng, StdRng};

    /// Source of randomness for strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: StdRng,
    }

    impl TestRng {
        /// Derives a generator from an arbitrary label (the macro passes
        /// the test's module path and name), so every test has a stable,
        /// independent stream.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { rng: StdRng::seed_from_u64(h) }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.next_u64()
        }

        /// Uniform draw from `0..n`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.rng.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.rng.gen()
        }
    }

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed with the given message.
        Fail(String),
        /// The case asked to be discarded (unused here, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection carrying `reason`.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and its combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases this strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps an inner strategy one level deeper. Nesting is
        /// capped at `depth`; at each level a coin decides between leaf
        /// and recursive case, so generated structures vary in depth.
        /// (`_desired_size` / `_expected_branch_size` are accepted for
        /// signature parity with the real crate and ignored.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                let leaf = base.clone();
                current = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64() & 1 == 0 {
                        leaf.generate(rng)
                    } else {
                        deeper.generate(rng)
                    }
                }));
            }
            current
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (backs the `prop_oneof!` macro).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms`; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut TestRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// `&str` patterns act as string strategies, like the real crate's
    /// regex support. A small regex subset is implemented — literals,
    /// `.`, `[a-z0-9_]`-style classes, and the `{m}`, `{m,n}`, `*`, `+`,
    /// `?` quantifiers — which covers the patterns used in this
    /// workspace's tests. `.` draws mostly printable ASCII with
    /// occasional multi-byte characters to exercise UTF-8 handling.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string_regex::generate(self, rng)
        }
    }
}

/// Generator for the `&str`-as-regex strategy; see the `Strategy`
/// impl for `&str` in [`strategy`].
mod string_regex {
    use crate::test_runner::TestRng;

    enum Atom {
        /// `.` — any character.
        Any,
        /// A literal character.
        Literal(char),
        /// A character class, expanded to its member set.
        Class(Vec<char>),
    }

    const MULTIBYTE: &[char] = &['é', 'λ', '中', '☃', '🦀'];

    fn draw(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Any => {
                // Mostly printable ASCII, occasionally multi-byte.
                if rng.below(16) == 0 {
                    MULTIBYTE[rng.below(MULTIBYTE.len() as u64) as usize]
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            }
            Atom::Literal(c) => *c,
            Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut set = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                    let lo = prev.take().expect("checked above");
                    let hi = chars.next().expect("checked above");
                    for v in (lo as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                }
                _ => {
                    if let Some(p) = prev.replace(c) {
                        set.push(p);
                    }
                }
            }
        }
        if let Some(p) = prev {
            set.push(p);
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (u32, u32) {
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().expect("bad repeat lower bound"),
                hi.parse().expect("bad repeat upper bound"),
            ),
            None => {
                let n = spec.parse().expect("bad repeat count");
                (n, n)
            }
        }
    }

    pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                _ => Atom::Literal(c),
            };
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    parse_repeat(&mut chars)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            let n = lo + rng.below(u64::from(hi - lo + 1)) as u32;
            for _ in 0..n {
                out.push(draw(&atom, rng));
            }
        }
        out
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn
    /// from a half-open range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `len` (half-open) and whose
    /// elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of values.
    #[derive(Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly from `options`; must be non-empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty set");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// `any::<T>()` — the standard strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($ty:ty),*) => {$(
            impl ArbitraryValue for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T` (uniform over its domain).
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. Assertion failures (via `prop_assert*`) abort the case with a
/// message; the harness panics with that message and the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, __e,
                    );
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a proptest body, failing the case (not the
/// whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for proptest bodies; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
                    __l, __r, format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// `assert_ne!` for proptest bodies; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    __l,
                ),
            ));
        }
    }};
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(x in 3u32..17, v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((3..17).contains(&x), "x out of range: {}", x);
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn maps_and_unions(s in prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v + 1),
        ]) {
            prop_assert!(s % 2 == 0 || (101..111).contains(&s));
        }

        #[test]
        fn recursive_terminates(text in crate::sample::select(vec!["x", "y"])
            .prop_map(String::from)
            .prop_recursive(3, 12, 3, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| format!("({a} {b})"))
            }))
        {
            prop_assert!(text.len() < 200, "bounded depth: {}", text);
        }
    }

    #[test]
    fn deterministic_across_instances() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1_000, 5..6);
        let mut r1 = crate::test_runner::TestRng::deterministic("label");
        let mut r2 = crate::test_runner::TestRng::deterministic("label");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
