//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in a hermetic environment with no registry access,
//! so the handful of `rand 0.8` APIs actually used here (`StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`) are
//! vendored as a minimal path dependency. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for workload synthesis
//! and fully deterministic for a given seed, which is all the test suite
//! and the figure harness require. It makes no cryptographic claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator, mirroring the subset of `rand::Rng` the
/// workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of a 64-bit
    /// draw, which are the strongest bits of xoshiro256++).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Samples a value of type `T` from its standard distribution
    /// (uniform bits for integers, uniform `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// Panics if the range is empty, like the real crate.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample(self) < p
    }
}

/// Types sampleable via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the generator.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Sized {
    /// Draws uniformly from `range`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformInt for $ty {
            fn sample_range<R: Rng + ?Sized>(
                rng: &mut R,
                range: core::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Multiply-shift range reduction (Lemire); the slight bias
                // for spans approaching 2^64 is irrelevant at these sizes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as Self
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `state` via
    /// SplitMix64, as the real crate does for small seeds.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// The real `rand::rngs::StdRng` is a ChaCha variant; the exact
    /// algorithm is unspecified and callers only rely on determinism per
    /// seed, which this type provides.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn unit_float_and_bool() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut heads = 0u32;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((4_000..6_000).contains(&heads), "fair coin: {heads}");
    }
}
